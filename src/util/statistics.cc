#include "util/statistics.h"

#include <cinttypes>
#include <cstdio>
#include <thread>

namespace shield {

namespace {

// Indexed by Tickers value. Keep in sync with the enum; the static
// assert below catches drift.
const char* const kTickerNames[] = {
    "io.wal.read.bytes",
    "io.wal.write.bytes",
    "io.wal.read.ops",
    "io.wal.write.ops",
    "io.sst.read.bytes",
    "io.sst.write.bytes",
    "io.sst.read.ops",
    "io.sst.write.ops",
    "io.manifest.read.bytes",
    "io.manifest.write.bytes",
    "io.manifest.read.ops",
    "io.manifest.write.ops",
    "io.other.read.bytes",
    "io.other.write.bytes",
    "io.other.read.ops",
    "io.other.write.ops",
    "io.readahead.bytes",
    "io.readahead.hit",
    "io.readahead.miss",
    "lsm.flush.bytes.written",
    "lsm.compaction.bytes.read",
    "lsm.compaction.bytes.written",
    "lsm.block.cache.hit",
    "lsm.block.cache.miss",
    "lsm.stall.micros",
    "lsm.multiget.keys",
    "lsm.multiget.batches",
    "crypto.bytes.encrypted",
    "crypto.bytes.decrypted",
    "crypto.aes.bytes",
    "crypto.chacha20.bytes",
    "crypto.hmac.computed",
    "crypto.hmac.verified",
    "crypto.hmac.failures",
    "shield.dek.created",
    "shield.dek.destroyed",
    "shield.dek.cache.hit",
    "shield.dek.cache.miss",
    "shield.chunk.encrypt.shards",
    "shield.wal.buffer.drains",
    "kds.requests",
    "kds.retries",
    "kds.failures",
    "ds.network.bytes",
    "ds.network.requests",
    "ds.network.wait.micros",
    "shield.events.emitted",
    "io.trace.spans",
    "io.trace.bytes",
    "io.trace.dropped",
    "shield.rotation.passes",
    "shield.rotation.files",
    "shield.rotation.bytes",
    "shield.rotation.skipped.stale",
    "shield.dek.delete.deferred",
    "shield.backup.files",
    "shield.backup.bytes",
    "lsm.write.groups",
    "lsm.write.group_size",
    "lsm.wal.pipeline_stall_micros",
    "shield.wal.keystream.bytes",
    "shield.wal.padding.records",
    "shield.wal.padding.bytes",
    "lsm.ingest.files",
    "lsm.ingest.bytes",
    "shield.dump.files",
    "shield.dump.bytes",
};

static_assert(sizeof(kTickerNames) / sizeof(kTickerNames[0]) == kNumTickers,
              "ticker name table out of sync with Tickers enum");

const char* const kHistogramNames[] = {
    "db.get.micros",      "db.multiget.micros",    "db.write.micros",
    "db.seek.micros",     "db.flush.micros",       "db.compactrange.micros",
    "lsm.flush.micros",   "lsm.compaction.micros", "sst.read.micros",
    "kds.latency.micros",
};

static_assert(sizeof(kHistogramNames) / sizeof(kHistogramNames[0]) ==
                  kNumHistograms,
              "histogram name table out of sync with Histograms enum");

}  // namespace

const char* TickerName(Tickers ticker) {
  return kTickerNames[static_cast<size_t>(ticker)];
}

const char* HistogramName(Histograms histogram) {
  return kHistogramNames[static_cast<size_t>(histogram)];
}

void Statistics::Reset() {
  for (auto& t : tickers_) t.store(0, std::memory_order_relaxed);
  for (auto& h : histograms_) h.Clear();
}

std::string Statistics::ToString() const {
  std::string out;
  char buf[256];
  for (size_t i = 0; i < kNumTickers; ++i) {
    std::snprintf(buf, sizeof(buf), "%-30s %" PRIu64 "\n", kTickerNames[i],
                  tickers_[i].load(std::memory_order_relaxed));
    out.append(buf);
  }
  for (size_t i = 0; i < kNumHistograms; ++i) {
    const Histogram& h = histograms_[i];
    if (h.Count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-30s count=%" PRIu64 " avg=%.1f p50=%.1f p99=%.1f max=%" PRIu64
                  "\n",
                  kHistogramNames[i], h.Count(), h.Average(),
                  h.Percentile(50.0), h.Percentile(99.0), h.Max());
    out.append(buf);
  }
  return out;
}

namespace {

/// "io.sst.read.bytes" -> "shield_io_sst_read_bytes".
std::string PrometheusMetricName(const char* dotted) {
  std::string out = "shield_";
  for (const char* p = dotted; *p != '\0'; ++p) {
    out.push_back(*p == '.' ? '_' : *p);
  }
  return out;
}

/// First dotted component ("io.sst.read.bytes" -> "io").
std::string SubsystemOf(const char* dotted) {
  std::string out;
  for (const char* p = dotted; *p != '\0' && *p != '.'; ++p) {
    out.push_back(*p);
  }
  return out;
}

/// "db.get.micros" -> "db.get" (the op label of the latency family).
std::string OpOf(const char* dotted) {
  std::string out(dotted);
  const std::string suffix = ".micros";
  if (out.size() > suffix.size() &&
      out.compare(out.size() - suffix.size(), suffix.size(), suffix) == 0) {
    out.resize(out.size() - suffix.size());
  }
  return out;
}

constexpr char kLatencyFamily[] = "shield_op_latency_micros";
constexpr char kLatencyHelp[] = "Operation latency in microseconds";

MetricLabels TickerLabels(const char* dotted, const std::string& node) {
  MetricLabels labels;
  labels.Set("subsystem", SubsystemOf(dotted));
  if (!node.empty()) {
    labels.Set("node", node);
  }
  return labels;
}

MetricLabels HistogramLabels(const char* dotted, const std::string& node) {
  MetricLabels labels;
  labels.Set("op", OpOf(dotted));
  if (!node.empty()) {
    labels.Set("node", node);
  }
  return labels;
}

}  // namespace

void Statistics::AttachRegistry(MetricsRegistry* registry,
                                const std::string& node) {
  if (registry == nullptr) {
    // Detach: publish the nulls first so no new reader can pick up a
    // registry-owned pointer, then wait for readers already inside an
    // adapter use to drain. Once this returns the registry (and every
    // instrument it owns) may be destroyed.
    for (auto& w : windowed_) {
      w.store(nullptr);
    }
    for (auto& c : ticker_counters_) {
      c.store(nullptr);
    }
    registry_.store(nullptr);
    while (adapter_inflight_.load() != 0) {
      std::this_thread::yield();
    }
    return;
  }
  // Attach: instruments before registry_, which gates SyncRegistry.
  for (size_t i = 0; i < kNumTickers; ++i) {
    ticker_counters_[i].store(
        registry->GetCounter(PrometheusMetricName(kTickerNames[i]), "",
                             TickerLabels(kTickerNames[i], node)),
        std::memory_order_release);
  }
  for (size_t i = 0; i < kNumHistograms; ++i) {
    windowed_[i].store(
        registry->GetHistogram(kLatencyFamily, kLatencyHelp,
                               HistogramLabels(kHistogramNames[i], node)),
        std::memory_order_release);
  }
  registry_.store(registry, std::memory_order_release);
}

void Statistics::SyncRegistry() const {
  adapter_inflight_.fetch_add(1);
  if (registry_.load() != nullptr) {
    for (size_t i = 0; i < kNumTickers; ++i) {
      Counter* c = ticker_counters_[i].load();
      if (c != nullptr) {
        c->Set(tickers_[i].load(std::memory_order_relaxed));
      }
    }
  }
  adapter_inflight_.fetch_sub(1);
}

std::string Statistics::ToPrometheusText() const {
  adapter_inflight_.fetch_add(1);
  MetricsRegistry* attached = registry_.load();
  if (attached != nullptr) {
    SyncRegistry();
    std::string out = attached->ToPrometheusText();
    adapter_inflight_.fetch_sub(1);
    return out;
  }
  adapter_inflight_.fetch_sub(1);

  // Standalone rendering: counters through an ephemeral registry (same
  // escaping/_total formatting), then the latency summary family from
  // the cumulative histograms directly (no windowed data exists
  // without an attached registry).
  MetricsRegistry reg;
  for (size_t i = 0; i < kNumTickers; ++i) {
    reg.GetCounter(PrometheusMetricName(kTickerNames[i]), "",
                   TickerLabels(kTickerNames[i], std::string()))
        ->Set(tickers_[i].load(std::memory_order_relaxed));
  }
  std::string out = reg.ToPrometheusText();

  char buf[256];
  out.append("# TYPE ").append(kLatencyFamily).append(" summary\n");
  for (size_t i = 0; i < kNumHistograms; ++i) {
    const Histogram& h = histograms_[i];
    const std::string op = OpOf(kHistogramNames[i]);
    static const struct {
      const char* label;
      double q;
    } kQuantiles[] = {{"0.5", 50.0}, {"0.99", 99.0}, {"0.999", 99.9}};
    for (const auto& q : kQuantiles) {
      std::snprintf(buf, sizeof(buf), "%s{op=\"%s\",quantile=\"%s\"} %.1f\n",
                    kLatencyFamily, op.c_str(), q.label,
                    h.Count() > 0 ? h.Percentile(q.q) : 0.0);
      out.append(buf);
    }
    std::snprintf(buf, sizeof(buf), "%s_sum{op=\"%s\"} %.0f\n", kLatencyFamily,
                  op.c_str(), h.Average() * static_cast<double>(h.Count()));
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "%s_count{op=\"%s\"} %" PRIu64 "\n",
                  kLatencyFamily, op.c_str(), h.Count());
    out.append(buf);
  }
  return out;
}

std::shared_ptr<Statistics> CreateDBStatistics() {
  return std::make_shared<Statistics>();
}

}  // namespace shield
