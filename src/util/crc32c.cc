#include "util/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SHIELD_CRC32C_X86_DISPATCH 1
#endif

namespace shield {
namespace crc32c {

namespace {

// Byte-wise table for the Castagnoli polynomial 0x1EDC6F41
// (reflected: 0x82F63B78), generated at static-init time into a
// constexpr array so the table itself is baked into the binary.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

uint32_t ExtendPortable(uint32_t crc, const char* data, size_t n) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if SHIELD_CRC32C_X86_DISPATCH

// SSE4.2 CRC32 instruction computes exactly this (reflected
// Castagnoli) polynomial, 8 bytes per instruction. Per-function target
// attribute + one-time runtime dispatch keeps the portable table as
// the fallback on CPUs without the instruction.
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc,
                                                    const char* data,
                                                    size_t n) {
  const char* p = data;
  uint64_t crc64 = crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc64 = __builtin_ia32_crc32qi(static_cast<uint32_t>(crc64),
                                   static_cast<uint8_t>(*p));
    p++;
    n--;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc64 = __builtin_ia32_crc32qi(static_cast<uint32_t>(crc64),
                                   static_cast<uint8_t>(*p));
    p++;
    n--;
  }
  return static_cast<uint32_t>(crc64);
}

bool HasSse42() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}

#endif  // SHIELD_CRC32C_X86_DISPATCH

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
#if SHIELD_CRC32C_X86_DISPATCH
  if (HasSse42()) {
    return ExtendHw(crc, data, n) ^ 0xFFFFFFFFu;
  }
#endif
  return ExtendPortable(crc, data, n) ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace shield
