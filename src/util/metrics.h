#ifndef SHIELD_UTIL_METRICS_H_
#define SHIELD_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace shield {

/// A sorted label set attached to one instrument of a metric family,
/// e.g. {node="writer", subsystem="io"}. Keys are sorted on
/// construction so equal sets encode identically regardless of the
/// order a call site lists them in.
class MetricLabels {
 public:
  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> labels);

  void Set(const std::string& key, const std::string& value);

  bool empty() const { return kv_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return kv_;
  }

  /// Canonical Prometheus form with escaped values:
  /// `{a="1",b="x\"y"}`; empty string for an empty set.
  std::string Encode() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;  // sorted by key
};

/// Escapes a label value for the Prometheus text format: backslash,
/// double quote and newline become \\, \" and \n.
std::string EscapeLabelValue(const std::string& value);

/// Escapes a HELP string: backslash and newline (quotes are legal in
/// help text).
std::string EscapeHelpText(const std::string& help);

/// Monotonic counter. Add() is the normal path; Set() exists for
/// adapters that mirror an external monotonic source (Statistics
/// tickers) into the registry.
class Counter {
 public:
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(uint64_t value) { v_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time gauge (level, backlog, lag, state).
class Gauge {
 public:
  void Set(double value) { v_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time percentile summary of a histogram (cumulative or one
/// sliding window).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// A histogram with sliding-window snapshots: samples land in 5-second
/// time slots (process clock — virtual under the simulator); slots
/// older than the ring are folded into an "ancient" accumulator, so
/// the merge of ancient + every slot is exactly the full history (the
/// cumulative snapshot loses nothing to windowing), while Snapshot()
/// over a 10 s or 60 s window yields real SLO p99/p999 over recent
/// traffic only. Thread safe.
class WindowedHistogram {
 public:
  static constexpr uint64_t kSlotMicros = 5ull * 1000 * 1000;
  static constexpr int kNumSlots = 13;  // covers 60 s + one spare slot
  static constexpr uint64_t kWindowShortMicros = 10ull * 1000 * 1000;
  static constexpr uint64_t kWindowLongMicros = 60ull * 1000 * 1000;
  /// Marks a ring slot with no live samples. Epoch 0 is legal (a clock
  /// starting near zero), so the sentinel must be a value NowMicros()
  /// can never reach.
  static constexpr uint64_t kUnusedSlotEpoch = ~0ull;

  WindowedHistogram() {
    for (auto& e : slot_epoch_) e = kUnusedSlotEpoch;
  }

  void Record(uint64_t value);

  /// Snapshot over the trailing `window_micros`; 0 = full history
  /// (ancient + every live slot — exact, not approximate).
  HistogramSnapshot Snapshot(uint64_t window_micros) const;

  /// Merges the selected window into `out` (cleared first); 0 = full
  /// history. Exposed so tests can compare full bucket contents.
  void MergeWindow(uint64_t window_micros, Histogram* out) const;

 private:
  void RotateLocked(uint64_t now_micros) const;

  mutable std::mutex mu_;
  mutable Histogram slots_[kNumSlots];
  mutable uint64_t slot_epoch_[kNumSlots];  // now / kSlotMicros, or kUnusedSlotEpoch
  mutable Histogram ancient_;
};

/// What kind of instrument a metric family holds.
enum class MetricType { kCounter, kGauge, kHistogram };

/// A labeled metrics registry: families keyed by metric name, each
/// holding one instrument per label set. Instruments are created on
/// first Get* and live as long as the registry (returned pointers are
/// stable). ToPrometheusText() renders every family as well-formed
/// Prometheus text exposition (format 0.0.4): escaped HELP, one TYPE
/// per family, `_total` on counters, summaries with cumulative
/// quantiles plus `<name>_window` gauges for the 10s/1m sliding
/// windows. Thread safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `name` is the full Prometheus family name without the `_total`
  /// suffix (the encoder appends it for counters). `help` is recorded
  /// on first registration; later calls may pass "".
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels);
  WindowedHistogram* GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels);

  std::string ToPrometheusText() const;

 private:
  struct Instrument {
    std::string encoded_labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<WindowedHistogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, std::unique_ptr<Instrument>> instruments;
  };

  Instrument* GetInstrument(const std::string& name, const std::string& help,
                            const MetricLabels& labels, MetricType type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_METRICS_H_
