#ifndef SHIELD_UTIL_CODING_H_
#define SHIELD_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace shield {

// Little-endian fixed-width and LEB128 varint encodings, used by the
// WAL, SST, and manifest file formats.

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint32 length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);

/// Parses a varint32 from [p, limit); returns pointer past the varint or
/// nullptr on malformed input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Slice-consuming variants: advance `input` past the parsed value.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed64(Slice* input, uint64_t* value);

int VarintLength(uint64_t v);

}  // namespace shield

#endif  // SHIELD_UTIL_CODING_H_
