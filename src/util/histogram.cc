#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace shield {

// Bucket upper bounds: 1,2,...,10, then +~12% geometric steps up to ~1e12.
const uint64_t Histogram::kBucketLimits[kNumBuckets] = {
    1,
    2,
    3,
    4,
    5,
    6,
    7,
    8,
    9,
    10,
    12,
    14,
    16,
    18,
    20,
    25,
    30,
    35,
    40,
    45,
    50,
    60,
    70,
    80,
    90,
    100,
    120,
    140,
    160,
    180,
    200,
    250,
    300,
    350,
    400,
    450,
    500,
    600,
    700,
    800,
    900,
    1000,
    1200,
    1400,
    1600,
    1800,
    2000,
    2500,
    3000,
    3500,
    4000,
    4500,
    5000,
    6000,
    7000,
    8000,
    9000,
    10000,
    12000,
    14000,
    16000,
    18000,
    20000,
    25000,
    30000,
    35000,
    40000,
    45000,
    50000,
    60000,
    70000,
    80000,
    90000,
    100000,
    120000,
    140000,
    160000,
    180000,
    200000,
    250000,
    300000,
    350000,
    400000,
    450000,
    500000,
    600000,
    700000,
    800000,
    900000,
    1000000,
    1200000,
    1400000,
    1600000,
    1800000,
    2000000,
    2500000,
    3000000,
    3500000,
    4000000,
    4500000,
    5000000,
    6000000,
    7000000,
    8000000,
    9000000,
    10000000,
    12000000,
    14000000,
    16000000,
    18000000,
    20000000,
    25000000,
    30000000,
    35000000,
    40000000,
    45000000,
    50000000,
    60000000,
    70000000,
    80000000,
    90000000,
    100000000,
    120000000,
    140000000,
    160000000,
    180000000,
    200000000,
    250000000,
    300000000,
    350000000,
    400000000,
    450000000,
    500000000,
    600000000,
    700000000,
    800000000,
    900000000,
    1000000000,
    1200000000,
    1400000000,
    1600000000,
    1800000000,
    2000000000,
    2500000000ull,
    3000000000ull,
    3500000000ull,
    4000000000ull,
    4500000000ull,
    5000000000ull,
    6000000000ull,
    7000000000ull,
    8000000000ull,
    9000000000ull,
    10000000000ull,
    100000000000ull,
    1000000000000ull,
};

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

int Histogram::BucketFor(uint64_t value) {
  // Binary search over static limits.
  int lo = 0, hi = kNumBuckets - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (kBucketLimits[mid] >= value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  uint64_t omin = other.Min();
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (omin < prev_min &&
         !min_.compare_exchange_weak(prev_min, omin,
                                     std::memory_order_relaxed)) {
  }
  uint64_t omax = other.Max();
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (omax > prev_max &&
         !max_.compare_exchange_weak(prev_max, omax,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Average() const {
  const uint64_t c = Count();
  if (c == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(c);
}

double Histogram::Percentile(double p) const {
  const uint64_t total = Count();
  if (total == 0) {
    return 0.0;
  }
  const double threshold = static_cast<double>(total) * (p / 100.0);
  double cumulative = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    const uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    cumulative += static_cast<double>(b);
    if (cumulative >= threshold) {
      // Linear interpolation inside the bucket.
      const double left = (i == 0) ? 0.0 : static_cast<double>(kBucketLimits[i - 1]);
      const double right = static_cast<double>(kBucketLimits[i]);
      const double left_count = cumulative - static_cast<double>(b);
      double pos = 0.0;
      if (b > 0) {
        pos = (threshold - left_count) / static_cast<double>(b);
      }
      double r = left + (right - left) * pos;
      const double mn = static_cast<double>(Min());
      const double mx = static_cast<double>(Max());
      if (r < mn) r = mn;
      if (r > mx) r = mx;
      return r;
    }
  }
  return static_cast<double>(Max());
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu avg=%.1f min=%llu max=%llu p50=%.1f p99=%.1f p999=%.1f",
           static_cast<unsigned long long>(Count()), Average(),
           static_cast<unsigned long long>(Count() ? Min() : 0),
           static_cast<unsigned long long>(Max()), Percentile(50),
           Percentile(99), Percentile(99.9));
  return buf;
}

}  // namespace shield
