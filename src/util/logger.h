#ifndef SHIELD_UTIL_LOGGER_H_
#define SHIELD_UTIL_LOGGER_H_

#include <cstdarg>
#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace shield {

class Env;

/// Severity of an info-LOG line. Lines below the logger's configured
/// level are dropped at the call site (the formatting cost is skipped
/// too).
enum class InfoLogLevel : int {
  kDebug = 0,
  kInfo,
  kWarn,
  kError,
  kFatal,
  kNumInfoLogLevels,  // not a level
};

const char* InfoLogLevelName(InfoLogLevel level);

/// Destination of the DB's human- and machine-readable info LOG
/// (Options::info_log). Thread safe. The default implementation
/// (NewFileLogger) writes timestamped lines to <dbname>/LOG through the
/// *physical* Env — the LOG is deliberately plaintext even when data
/// files are encrypted, so operators and bug reports can always read
/// it; it must therefore never contain keys or user data.
class Logger {
 public:
  explicit Logger(InfoLogLevel level = InfoLogLevel::kInfo)
      : level_(level) {}
  virtual ~Logger() = default;

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// printf-style write. The implementation adds timestamp/level
  /// framing and the trailing newline.
  virtual void Logv(InfoLogLevel level, const char* format, va_list ap) = 0;

  /// Writes one pre-formatted line verbatim (plus framing). Used by the
  /// EventLogger so JSON payloads never pass through printf parsing.
  virtual void LogRaw(InfoLogLevel level, const Slice& line) = 0;

  virtual Status Flush() { return Status::OK(); }

  /// Bytes written to the current log file (0 if not file backed).
  virtual uint64_t GetLogFileSize() const { return 0; }

  InfoLogLevel GetInfoLogLevel() const { return level_; }
  void SetInfoLogLevel(InfoLogLevel level) { level_ = level; }

 private:
  InfoLogLevel level_;
};

/// printf-style logging helpers; no-ops when `logger` is null or the
/// line is below its level.
void Log(InfoLogLevel level, Logger* logger, const char* format, ...)
    __attribute__((format(printf, 3, 4)));
void Log(Logger* logger, const char* format, ...)  // kInfo
    __attribute__((format(printf, 2, 3)));

/// File-backed logger with size-based rotation: when the current file
/// exceeds `max_log_file_size` (0 = never rotate), it is renamed to
/// `<fname>.old.<seq>` and a fresh file is started; at most
/// `keep_log_file_num` rotated files are kept (older ones are deleted).
/// The file is created (truncating any previous LOG is avoided by
/// rotating it first if present).
Status NewFileLogger(Env* env, const std::string& fname,
                     size_t max_log_file_size, size_t keep_log_file_num,
                     InfoLogLevel level, std::shared_ptr<Logger>* out);

/// Swallows everything; useful for tests and as a null-object.
std::shared_ptr<Logger> NewNullLogger();

}  // namespace shield

#endif  // SHIELD_UTIL_LOGGER_H_
