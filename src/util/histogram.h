#ifndef SHIELD_UTIL_HISTOGRAM_H_
#define SHIELD_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace shield {

/// A log-bucketed latency histogram (values in microseconds). Thread
/// safe: Add() takes a lightweight per-bucket atomic increment, so it
/// can be called from benchmark worker threads concurrently.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Average() const;
  uint64_t Min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  /// Percentile in [0, 100], e.g. Percentile(99.0) for p99.
  double Percentile(double p) const;

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 156;
  static const uint64_t kBucketLimits[kNumBuckets];

  static int BucketFor(uint64_t value);

  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
  std::atomic<uint64_t> buckets_[kNumBuckets];
};

}  // namespace shield

#endif  // SHIELD_UTIL_HISTOGRAM_H_
