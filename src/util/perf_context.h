#ifndef SHIELD_UTIL_PERF_CONTEXT_H_
#define SHIELD_UTIL_PERF_CONTEXT_H_

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace shield {

/// How much per-operation accounting the calling thread wants.
/// Counts (bytes, ops) are cheap thread-local adds and are kept at
/// kEnableCount and above; wall-clock timers cost two clock reads per
/// probe and only run at kEnableTime.
enum class PerfLevel : int {
  kDisable = 0,
  kEnableCount = 1,  // default: byte/op counters only
  kEnableTime = 2,   // counters + scoped timers
};

void SetPerfLevel(PerfLevel level);
PerfLevel GetPerfLevel();

/// Thread-local accumulator of per-operation micro-costs. A reader
/// thread calls GetPerfContext()->Reset() before an operation, then
/// inspects the fields after: a Get() decomposes into memtable probe,
/// block reads, decryption, HMAC verification, and (on a DEK-cache
/// miss) KDS wait. The same fields sum — across all threads — to the
/// matching global Statistics tickers, which is what statistics_test
/// cross-checks.
struct PerfContext {
  // Block reads (physical SST reads that missed the block cache).
  uint64_t block_read_count = 0;
  uint64_t block_read_bytes = 0;
  uint64_t block_read_micros = 0;
  uint64_t block_cache_hit_count = 0;

  // Read-path prefetching and MultiGet batching.
  uint64_t readahead_bytes = 0;      // speculatively fetched ahead
  uint64_t readahead_hit_count = 0;  // reads served from the buffer
  uint64_t multiget_keys = 0;        // keys asked via MultiGet
  uint64_t multiget_batches = 0;     // coalesced multi-block fetches

  // Crypto work done on behalf of this thread's operation.
  uint64_t encrypt_bytes = 0;
  uint64_t encrypt_micros = 0;
  uint64_t decrypt_bytes = 0;
  uint64_t decrypt_micros = 0;
  uint64_t hmac_compute_count = 0;
  uint64_t hmac_verify_count = 0;
  uint64_t hmac_micros = 0;

  // Iterator positioning (Seek/SeekToFirst/SeekToLast on DB iterators).
  uint64_t iter_seek_count = 0;
  uint64_t iter_seek_micros = 0;

  // Key plane.
  uint64_t kds_request_count = 0;
  uint64_t kds_wait_micros = 0;

  // Write path.
  uint64_t memtable_insert_micros = 0;
  uint64_t wal_write_micros = 0;
  uint64_t write_stall_micros = 0;
  // Group commit: size of the batch group this thread led (leaders
  // only; followers leave it 0).
  uint64_t write_group_size = 0;
  // Micros the WAL append spent waiting for the keystream-prefetch
  // pipeline to catch up (0 when the pipeline is disabled or ahead).
  uint64_t wal_keystream_stall_micros = 0;

  void Reset() { *this = PerfContext(); }
  std::string ToString() const;
};

/// The calling thread's context. Never null.
PerfContext* GetPerfContext();

/// When enabled (default off, thread-local), every public DB operation
/// resets the calling thread's PerfContext on entry, so the fields read
/// after an op describe exactly that op. Off, contexts accumulate until
/// the caller resets — the historical behaviour.
void SetPerfAutoReset(bool enabled);
bool GetPerfAutoReset();

/// Called at the top of each public DB op (Get/MultiGet/Write/Seek/
/// Flush/CompactRange): applies the auto-reset policy.
inline void PerfOpBoundary() {
  if (GetPerfAutoReset()) {
    GetPerfContext()->Reset();
  }
}

/// Scoped timer adding elapsed micros to `*field` of the calling
/// thread's PerfContext — but only when the perf level is
/// kEnableTime. `field` must point into GetPerfContext().
class PerfTimer {
 public:
  explicit PerfTimer(uint64_t* field)
      : field_(GetPerfLevel() >= PerfLevel::kEnableTime ? field : nullptr),
        start_(field_ != nullptr ? NowMicros() : 0) {}

  ~PerfTimer() {
    if (field_ != nullptr) *field_ += NowMicros() - start_;
  }

  PerfTimer(const PerfTimer&) = delete;
  PerfTimer& operator=(const PerfTimer&) = delete;

 private:
  uint64_t* field_;
  uint64_t start_;
};

/// Count-level add: active at kEnableCount and above.
inline void PerfAdd(uint64_t PerfContext::*field, uint64_t delta) {
  if (GetPerfLevel() >= PerfLevel::kEnableCount) {
    GetPerfContext()->*field += delta;
  }
}

}  // namespace shield

#endif  // SHIELD_UTIL_PERF_CONTEXT_H_
