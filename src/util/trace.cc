// Tracing core (declared in util/trace.h; compiled into shield_env
// because the trace file is written through an Env, which util must
// not depend on).

#include "util/trace.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "env/env.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {

namespace {

/// Process-local sequential thread ids (stable, small, and free of the
/// platform pitfalls of hashing std::thread::id into a u64).
uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open span ids for automatic parenting. A plain
/// vector: spans are strictly nested on one thread (RAII).
thread_local std::vector<uint64_t> t_span_stack;

/// Span ids are process-global (not per-tracer) so a parent id captured
/// on one node resolves unambiguously in another node's trace file —
/// the property --stitch relies on.
std::atomic<uint64_t> g_next_span_id{1};

/// Trace session ids, likewise process-global (TraceContext::trace_id).
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

struct Tracer::Core {
  Env* env = nullptr;
  TraceOptions options;
  Statistics* stats = nullptr;
  uint64_t trace_id = 0;

  std::atomic<bool> active{false};
  std::atomic<uint64_t> recorded{0};
  std::atomic<uint64_t> dropped{0};

  // Per-thread buffers live here (not in TLS) so Stop() can drain
  // buffers of threads that never record again. Each buffer has its
  // own mutex — uncontended on the hot path; Stop() and drains take it
  // briefly.
  struct ThreadBuffer {
    std::mutex mu;
    std::string encoded;  // pre-encoded records, appended back to back
    size_t count = 0;
  };
  std::mutex registry_mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  std::mutex file_mu;
  std::unique_ptr<WritableFile> file;  // null after Stop()
  Status write_status;                 // first error, sticky

  ThreadBuffer* RegisterThreadBuffer() {
    auto buf = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = buf.get();
    std::lock_guard<std::mutex> lock(registry_mu);
    buffers.push_back(std::move(buf));
    return raw;
  }

  // Appends `encoded` to the file; records the first failure.
  void WriteChunk(const std::string& encoded, size_t count) {
    std::lock_guard<std::mutex> lock(file_mu);
    if (file == nullptr) {
      dropped.fetch_add(count, std::memory_order_relaxed);
      return;
    }
    Status s = file->Append(Slice(encoded));
    if (!s.ok()) {
      if (write_status.ok()) {
        write_status = s;
      }
      dropped.fetch_add(count, std::memory_order_relaxed);
      return;
    }
    recorded.fetch_add(count, std::memory_order_relaxed);
    RecordTick(stats, Tickers::kIoTraceSpans, count);
    RecordTick(stats, Tickers::kIoTraceBytes, encoded.size());
  }

  void Record(SpanRecord* record, ThreadBuffer* buf) {
    if (record->span_id == 0) {
      record->span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    }
    if (record->label.size() > options.max_label_size) {
      record->label.resize(options.max_label_size);
    }
    std::string flush;
    size_t flush_count = 0;
    {
      std::lock_guard<std::mutex> lock(buf->mu);
      EncodeSpanRecord(*record, &buf->encoded);
      buf->count++;
      if (buf->count >= options.per_thread_buffer) {
        flush.swap(buf->encoded);
        flush_count = buf->count;
        buf->count = 0;
      }
    }
    if (flush_count > 0) {
      WriteChunk(flush, flush_count);
    }
  }

  // Drains every registered buffer and closes the file.
  Status Finish() {
    active.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(registry_mu);
      for (auto& buf : buffers) {
        std::string flush;
        size_t flush_count = 0;
        {
          std::lock_guard<std::mutex> buf_lock(buf->mu);
          flush.swap(buf->encoded);
          flush_count = buf->count;
          buf->count = 0;
        }
        if (flush_count > 0) {
          WriteChunk(flush, flush_count);
        }
      }
    }
    std::lock_guard<std::mutex> lock(file_mu);
    if (file != nullptr) {
      Status s = file->Flush();
      if (s.ok()) {
        s = file->Close();
      }
      if (write_status.ok() && !s.ok()) {
        write_status = s;
      }
      file.reset();
    }
    return write_status;
  }
};

namespace {

// Global active trace. `g_active_core` is the hot-path gate (one
// relaxed load when idle); `g_generation` invalidates the TLS-cached
// shared_ptr so late-arriving spans from a previous trace cannot touch
// a new one, and the shared_ptr itself keeps a stopping core alive
// until every thread has let go.
std::mutex g_trace_mu;
std::shared_ptr<Tracer::Core> g_core;  // guarded by g_trace_mu
std::atomic<Tracer::Core*> g_active_core{nullptr};
std::atomic<uint64_t> g_generation{0};

struct TlsTraceRef {
  uint64_t generation = 0;
  std::shared_ptr<Tracer::Core> core;
  Tracer::Core::ThreadBuffer* buffer = nullptr;
};
thread_local TlsTraceRef t_trace_ref;

/// The tracer this thread is bound to (ScopedTracerBinding), taking
/// precedence over the process-global slot. The shared_ptr keeps a
/// stopping core safe until the binding ends.
thread_local std::shared_ptr<Tracer::Core> t_bound_core;

/// Per-thread buffers for bound (non-exclusive) cores, keyed by core.
/// Bounded by the number of distinct tracers ever bound on this thread
/// (a handful of per-node tracers in the simulator).
thread_local std::vector<
    std::pair<std::shared_ptr<Tracer::Core>, Tracer::Core::ThreadBuffer*>>
    t_bound_buffers;

Tracer::Core::ThreadBuffer* ResolveBoundBuffer(
    const std::shared_ptr<Tracer::Core>& core) {
  for (auto& entry : t_bound_buffers) {
    if (entry.first == core) {
      return entry.second;
    }
  }
  Tracer::Core::ThreadBuffer* buf = core->RegisterThreadBuffer();
  t_bound_buffers.emplace_back(core, buf);
  return buf;
}

/// Resolves the active core for this thread — the bound core when a
/// ScopedTracerBinding is in effect, else the process-global slot
/// (refreshing the TLS cache when a new trace started). Returns
/// nullptr when tracing is off.
Tracer::Core* ResolveCore(Tracer::Core::ThreadBuffer** buffer) {
  if (t_bound_core != nullptr) {
    // A binding pins this thread's spans to its node's tracer; if that
    // tracer stopped mid-binding the spans are dropped, never leaked
    // into an unrelated global trace.
    if (!t_bound_core->active.load(std::memory_order_acquire)) {
      return nullptr;
    }
    *buffer = ResolveBoundBuffer(t_bound_core);
    return t_bound_core.get();
  }
  if (g_active_core.load(std::memory_order_acquire) == nullptr) {
    return nullptr;
  }
  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_trace_ref.generation != gen || t_trace_ref.core == nullptr) {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    t_trace_ref.core = g_core;
    t_trace_ref.generation = g_generation.load(std::memory_order_relaxed);
    t_trace_ref.buffer = t_trace_ref.core != nullptr
                             ? t_trace_ref.core->RegisterThreadBuffer()
                             : nullptr;
  }
  Tracer::Core* core = t_trace_ref.core.get();
  if (core == nullptr || !core->active.load(std::memory_order_acquire)) {
    return nullptr;
  }
  *buffer = t_trace_ref.buffer;
  return core;
}

}  // namespace

Tracer::Tracer() = default;

Tracer::~Tracer() { (void)Stop(); }

Status Tracer::Start(Env* env, const std::string& path,
                     const TraceOptions& options, Statistics* stats) {
  auto core = std::make_shared<Core>();
  core->env = env;
  core->options = options;
  core->stats = stats;
  if (core->options.per_thread_buffer == 0) {
    core->options.per_thread_buffer = 1;
  }

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(path, &file);
  if (!s.ok()) {
    return s;
  }
  std::string header;
  header.append(kTraceMagic, kTraceMagicSize);
  const bool node_header = !core->options.node_name.empty();
  PutFixed32(&header,
             node_header ? kTraceFormatVersionNode : kTraceFormatVersion);
  PutFixed64(&header, NowMicros());
  if (node_header) {
    PutVarint32(&header,
                static_cast<uint32_t>(core->options.node_name.size()));
    header.append(core->options.node_name);
  }
  s = file->Append(Slice(header));
  if (!s.ok()) {
    (void)file->Close();
    return s;
  }
  core->file = std::move(file);
  core->trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);

  if (!core->options.exclusive) {
    // Non-exclusive tracers never claim the global slot: they receive
    // spans only from threads bound via ScopedTracerBinding, so any
    // number can run concurrently (one per simulated node).
    core->active.store(true, std::memory_order_release);
    core_ = core;
    return Status::OK();
  }

  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_active_core.load(std::memory_order_acquire) != nullptr) {
    (void)core->file->Close();
    return Status::Busy("another trace is already active");
  }
  core->active.store(true, std::memory_order_release);
  core_ = core;
  g_core = core;
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  g_active_core.store(core.get(), std::memory_order_release);
  return Status::OK();
}

Status Tracer::Stop() {
  std::shared_ptr<Core> core;
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    // core_ is kept (not reset) so spans_recorded()/spans_dropped()
    // remain readable after Stop; Core::Finish is idempotent.
    core = core_;
    if (core != nullptr &&
        g_active_core.load(std::memory_order_acquire) == core.get()) {
      g_active_core.store(nullptr, std::memory_order_release);
      g_core.reset();
      g_generation.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  if (core == nullptr) {
    return Status::OK();
  }
  return core->Finish();
}

bool Tracer::active() const {
  return core_ != nullptr && core_->active.load(std::memory_order_acquire);
}

uint64_t Tracer::spans_recorded() const {
  return core_ != nullptr ? core_->recorded.load(std::memory_order_relaxed)
                          : 0;
}

uint64_t Tracer::spans_dropped() const {
  return core_ != nullptr ? core_->dropped.load(std::memory_order_relaxed) : 0;
}

bool Tracer::AnyActive() {
  return t_bound_core != nullptr ||
         g_active_core.load(std::memory_order_relaxed) != nullptr;
}

void Tracer::Record(SpanRecord* record) {
  Core::ThreadBuffer* buffer = nullptr;
  Core* core = ResolveCore(&buffer);
  if (core == nullptr) {
    return;
  }
  if (record->thread_id == 0) {
    record->thread_id = ThisThreadId();
  }
  core->Record(record, buffer);
}

uint64_t Tracer::NextSpanId() {
  Core::ThreadBuffer* buffer = nullptr;
  Core* core = ResolveCore(&buffer);
  if (core == nullptr) {
    return 0;
  }
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::CurrentSpanId() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

TraceContext Tracer::CurrentContext() {
  TraceContext ctx;
  Core::ThreadBuffer* buffer = nullptr;
  Core* core = ResolveCore(&buffer);
  if (core == nullptr) {
    return ctx;
  }
  ctx.trace_id = core->trace_id;
  ctx.parent_span_id = CurrentSpanId();
  return ctx;
}

uint64_t Tracer::trace_id() const {
  return core_ != nullptr ? core_->trace_id : 0;
}

ScopedTracerBinding::ScopedTracerBinding(Tracer* tracer) {
  if (tracer == nullptr || tracer->core_ == nullptr ||
      !tracer->core_->active.load(std::memory_order_acquire)) {
    return;
  }
  prev_ = std::move(t_bound_core);
  t_bound_core = tracer->core_;
  bound_ = true;
}

ScopedTracerBinding::~ScopedTracerBinding() {
  if (bound_) {
    t_bound_core = std::move(prev_);
  }
}

TraceSpan::TraceSpan(SpanType type, const Slice& label)
    : TraceSpan(type, Tracer::CurrentSpanId(), label) {}

TraceSpan::TraceSpan(SpanType type, uint64_t parent, const Slice& label)
    : active_(Tracer::AnyActive()) {
  if (!active_) {
    return;
  }
  record_.span_id = Tracer::NextSpanId();
  if (record_.span_id == 0) {
    // Trace raced to inactive between the gate check and id allocation.
    active_ = false;
    return;
  }
  record_.parent_id = parent;
  record_.type = type;
  record_.start_micros = NowMicros();
  record_.label.assign(label.data(), label.size());
  t_span_stack.push_back(record_.span_id);
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  // Pop our frame. Spans are strictly nested per thread, so ours is the
  // top — but be defensive if a caller leaked an order violation.
  if (!t_span_stack.empty() && t_span_stack.back() == record_.span_id) {
    t_span_stack.pop_back();
  }
  const uint64_t now = NowMicros();
  record_.duration_micros =
      now >= record_.start_micros ? now - record_.start_micros : 0;
  Tracer::Record(&record_);
}

const char* SpanTypeName(SpanType type) {
  static const char* const kNames[] = {
      "db.get",         "db.multiget",    "db.write",      "db.seek",
      "db.flush",       "db.compactrange",
      "job.flush",      "job.compaction", "job.scrub",     "job.recovery",
      "wal.append",     "wal.roll",       "block.read",
      "crypto.encrypt", "crypto.decrypt", "crypto.chunk",  "crypto.shard",
      "kds.rpc",
      "ds.transfer",    "ds.replica_fetch", "ds.offload_rpc",
      "ds.compaction_rpc",
      "io.read",        "io.write",       "io.sync",
      "job.rotation",   "job.backup",
      "wal.encrypt",
  };
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumSpanTypes,
                "span name table out of sync with SpanType");
  const size_t i = static_cast<size_t>(type);
  if (i >= kNumSpanTypes) {
    return "unknown";
  }
  return kNames[i];
}

void EncodeSpanRecord(const SpanRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(64 + record.label.size());
  payload.push_back(static_cast<char>(record.type));
  payload.push_back(static_cast<char>(record.flags));
  payload.push_back(static_cast<char>(record.aux));
  PutFixed64(&payload, record.span_id);
  PutFixed64(&payload, record.parent_id);
  PutFixed64(&payload, record.thread_id);
  PutFixed64(&payload, record.start_micros);
  PutFixed64(&payload, record.duration_micros);
  PutFixed64(&payload, record.a);
  PutFixed64(&payload, record.b);
  payload.append(record.label);

  PutVarint32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutFixed32(out, crc32c::Value(payload.data(), payload.size()));
}

namespace {
// Fixed part of the payload: type/flags/aux + 7 fixed64 fields.
constexpr size_t kSpanPayloadFixedSize = 3 + 7 * 8;
}  // namespace

Status TraceReader::Open(Env* env, const std::string& path,
                         std::unique_ptr<TraceReader>* out) {
  out->reset();
  std::string contents;
  Status s = ReadFileToString(env, path, &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.size() < kTraceMagicSize + 4 + 8 ||
      memcmp(contents.data(), kTraceMagic, kTraceMagicSize) != 0) {
    return Status::Corruption("not a SHIELD trace file: " + path);
  }
  const uint32_t version = DecodeFixed32(contents.data() + kTraceMagicSize);
  if (version != kTraceFormatVersion && version != kTraceFormatVersionNode) {
    return Status::NotSupported("unsupported trace format version");
  }
  std::unique_ptr<TraceReader> reader(new TraceReader());
  reader->trace_start_micros_ =
      DecodeFixed64(contents.data() + kTraceMagicSize + 4);
  size_t pos = kTraceMagicSize + 4 + 8;
  if (version == kTraceFormatVersionNode) {
    Slice input(contents.data() + pos, contents.size() - pos);
    uint32_t node_len = 0;
    if (!GetVarint32(&input, &node_len) || input.size() < node_len) {
      return Status::Corruption("truncated trace node header");
    }
    reader->node_.assign(input.data(), node_len);
    pos = static_cast<size_t>(input.data() + node_len - contents.data());
  }
  reader->pos_ = pos;
  reader->contents_ = std::move(contents);
  *out = std::move(reader);
  return Status::OK();
}

bool TraceReader::Next(SpanRecord* record) {
  if (truncated_ || pos_ >= contents_.size()) {
    return false;
  }
  Slice input(contents_.data() + pos_, contents_.size() - pos_);
  uint32_t payload_len = 0;
  if (!GetVarint32(&input, &payload_len)) {
    truncated_ = true;
    parse_status_ = Status::Corruption("truncated record length");
    return false;
  }
  if (payload_len < kSpanPayloadFixedSize ||
      input.size() < static_cast<size_t>(payload_len) + 4) {
    truncated_ = true;
    parse_status_ = Status::Corruption("truncated record payload");
    return false;
  }
  const char* payload = input.data();
  const uint32_t expected_crc = DecodeFixed32(payload + payload_len);
  if (crc32c::Value(payload, payload_len) != expected_crc) {
    truncated_ = true;
    parse_status_ = Status::Corruption("record checksum mismatch");
    return false;
  }

  const uint8_t type = static_cast<uint8_t>(payload[0]);
  record->type = type < static_cast<uint8_t>(SpanType::kMaxSpanType)
                     ? static_cast<SpanType>(type)
                     : SpanType::kMaxSpanType;
  record->flags = static_cast<uint8_t>(payload[1]);
  record->aux = static_cast<uint8_t>(payload[2]);
  record->span_id = DecodeFixed64(payload + 3);
  record->parent_id = DecodeFixed64(payload + 11);
  record->thread_id = DecodeFixed64(payload + 19);
  record->start_micros = DecodeFixed64(payload + 27);
  record->duration_micros = DecodeFixed64(payload + 35);
  record->a = DecodeFixed64(payload + 43);
  record->b = DecodeFixed64(payload + 51);
  record->label.assign(payload + kSpanPayloadFixedSize,
                       payload_len - kSpanPayloadFixedSize);

  pos_ = static_cast<size_t>(payload + payload_len + 4 - contents_.data());
  records_read_++;
  return true;
}

}  // namespace shield
