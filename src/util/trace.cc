// Tracing core (declared in util/trace.h; compiled into shield_env
// because the trace file is written through an Env, which util must
// not depend on).

#include "util/trace.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "env/env.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {

namespace {

/// Process-local sequential thread ids (stable, small, and free of the
/// platform pitfalls of hashing std::thread::id into a u64).
uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open span ids for automatic parenting. A plain
/// vector: spans are strictly nested on one thread (RAII).
thread_local std::vector<uint64_t> t_span_stack;

}  // namespace

struct Tracer::Core {
  Env* env = nullptr;
  TraceOptions options;
  Statistics* stats = nullptr;

  std::atomic<bool> active{false};
  std::atomic<uint64_t> next_span_id{1};
  std::atomic<uint64_t> recorded{0};
  std::atomic<uint64_t> dropped{0};

  // Per-thread buffers live here (not in TLS) so Stop() can drain
  // buffers of threads that never record again. Each buffer has its
  // own mutex — uncontended on the hot path; Stop() and drains take it
  // briefly.
  struct ThreadBuffer {
    std::mutex mu;
    std::string encoded;  // pre-encoded records, appended back to back
    size_t count = 0;
  };
  std::mutex registry_mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  std::mutex file_mu;
  std::unique_ptr<WritableFile> file;  // null after Stop()
  Status write_status;                 // first error, sticky

  ThreadBuffer* RegisterThreadBuffer() {
    auto buf = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = buf.get();
    std::lock_guard<std::mutex> lock(registry_mu);
    buffers.push_back(std::move(buf));
    return raw;
  }

  // Appends `encoded` to the file; records the first failure.
  void WriteChunk(const std::string& encoded, size_t count) {
    std::lock_guard<std::mutex> lock(file_mu);
    if (file == nullptr) {
      dropped.fetch_add(count, std::memory_order_relaxed);
      return;
    }
    Status s = file->Append(Slice(encoded));
    if (!s.ok()) {
      if (write_status.ok()) {
        write_status = s;
      }
      dropped.fetch_add(count, std::memory_order_relaxed);
      return;
    }
    recorded.fetch_add(count, std::memory_order_relaxed);
    RecordTick(stats, Tickers::kIoTraceSpans, count);
    RecordTick(stats, Tickers::kIoTraceBytes, encoded.size());
  }

  void Record(SpanRecord* record, ThreadBuffer* buf) {
    if (record->span_id == 0) {
      record->span_id = next_span_id.fetch_add(1, std::memory_order_relaxed);
    }
    if (record->label.size() > options.max_label_size) {
      record->label.resize(options.max_label_size);
    }
    std::string flush;
    size_t flush_count = 0;
    {
      std::lock_guard<std::mutex> lock(buf->mu);
      EncodeSpanRecord(*record, &buf->encoded);
      buf->count++;
      if (buf->count >= options.per_thread_buffer) {
        flush.swap(buf->encoded);
        flush_count = buf->count;
        buf->count = 0;
      }
    }
    if (flush_count > 0) {
      WriteChunk(flush, flush_count);
    }
  }

  // Drains every registered buffer and closes the file.
  Status Finish() {
    active.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(registry_mu);
      for (auto& buf : buffers) {
        std::string flush;
        size_t flush_count = 0;
        {
          std::lock_guard<std::mutex> buf_lock(buf->mu);
          flush.swap(buf->encoded);
          flush_count = buf->count;
          buf->count = 0;
        }
        if (flush_count > 0) {
          WriteChunk(flush, flush_count);
        }
      }
    }
    std::lock_guard<std::mutex> lock(file_mu);
    if (file != nullptr) {
      Status s = file->Flush();
      if (s.ok()) {
        s = file->Close();
      }
      if (write_status.ok() && !s.ok()) {
        write_status = s;
      }
      file.reset();
    }
    return write_status;
  }
};

namespace {

// Global active trace. `g_active_core` is the hot-path gate (one
// relaxed load when idle); `g_generation` invalidates the TLS-cached
// shared_ptr so late-arriving spans from a previous trace cannot touch
// a new one, and the shared_ptr itself keeps a stopping core alive
// until every thread has let go.
std::mutex g_trace_mu;
std::shared_ptr<Tracer::Core> g_core;  // guarded by g_trace_mu
std::atomic<Tracer::Core*> g_active_core{nullptr};
std::atomic<uint64_t> g_generation{0};

struct TlsTraceRef {
  uint64_t generation = 0;
  std::shared_ptr<Tracer::Core> core;
  Tracer::Core::ThreadBuffer* buffer = nullptr;
};
thread_local TlsTraceRef t_trace_ref;

/// Resolves the active core for this thread, refreshing the TLS cache
/// when a new trace started. Returns nullptr when tracing is off.
Tracer::Core* ResolveCore(Tracer::Core::ThreadBuffer** buffer) {
  if (g_active_core.load(std::memory_order_acquire) == nullptr) {
    return nullptr;
  }
  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_trace_ref.generation != gen || t_trace_ref.core == nullptr) {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    t_trace_ref.core = g_core;
    t_trace_ref.generation = g_generation.load(std::memory_order_relaxed);
    t_trace_ref.buffer = t_trace_ref.core != nullptr
                             ? t_trace_ref.core->RegisterThreadBuffer()
                             : nullptr;
  }
  Tracer::Core* core = t_trace_ref.core.get();
  if (core == nullptr || !core->active.load(std::memory_order_acquire)) {
    return nullptr;
  }
  *buffer = t_trace_ref.buffer;
  return core;
}

}  // namespace

Tracer::Tracer() = default;

Tracer::~Tracer() { (void)Stop(); }

Status Tracer::Start(Env* env, const std::string& path,
                     const TraceOptions& options, Statistics* stats) {
  auto core = std::make_shared<Core>();
  core->env = env;
  core->options = options;
  core->stats = stats;
  if (core->options.per_thread_buffer == 0) {
    core->options.per_thread_buffer = 1;
  }

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(path, &file);
  if (!s.ok()) {
    return s;
  }
  std::string header;
  header.append(kTraceMagic, kTraceMagicSize);
  PutFixed32(&header, kTraceFormatVersion);
  PutFixed64(&header, NowMicros());
  s = file->Append(Slice(header));
  if (!s.ok()) {
    (void)file->Close();
    return s;
  }
  core->file = std::move(file);

  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_active_core.load(std::memory_order_acquire) != nullptr) {
    (void)core->file->Close();
    return Status::Busy("another trace is already active");
  }
  core->active.store(true, std::memory_order_release);
  core_ = core;
  g_core = core;
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  g_active_core.store(core.get(), std::memory_order_release);
  return Status::OK();
}

Status Tracer::Stop() {
  std::shared_ptr<Core> core;
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    // core_ is kept (not reset) so spans_recorded()/spans_dropped()
    // remain readable after Stop; Core::Finish is idempotent.
    core = core_;
    if (core != nullptr &&
        g_active_core.load(std::memory_order_acquire) == core.get()) {
      g_active_core.store(nullptr, std::memory_order_release);
      g_core.reset();
      g_generation.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  if (core == nullptr) {
    return Status::OK();
  }
  return core->Finish();
}

bool Tracer::active() const {
  return core_ != nullptr && core_->active.load(std::memory_order_acquire);
}

uint64_t Tracer::spans_recorded() const {
  return core_ != nullptr ? core_->recorded.load(std::memory_order_relaxed)
                          : 0;
}

uint64_t Tracer::spans_dropped() const {
  return core_ != nullptr ? core_->dropped.load(std::memory_order_relaxed) : 0;
}

bool Tracer::AnyActive() {
  return g_active_core.load(std::memory_order_relaxed) != nullptr;
}

void Tracer::Record(SpanRecord* record) {
  Core::ThreadBuffer* buffer = nullptr;
  Core* core = ResolveCore(&buffer);
  if (core == nullptr) {
    return;
  }
  if (record->thread_id == 0) {
    record->thread_id = ThisThreadId();
  }
  core->Record(record, buffer);
}

uint64_t Tracer::NextSpanId() {
  Core::ThreadBuffer* buffer = nullptr;
  Core* core = ResolveCore(&buffer);
  if (core == nullptr) {
    return 0;
  }
  return core->next_span_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::CurrentSpanId() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

TraceSpan::TraceSpan(SpanType type, const Slice& label)
    : TraceSpan(type, Tracer::CurrentSpanId(), label) {}

TraceSpan::TraceSpan(SpanType type, uint64_t parent, const Slice& label)
    : active_(Tracer::AnyActive()) {
  if (!active_) {
    return;
  }
  record_.span_id = Tracer::NextSpanId();
  if (record_.span_id == 0) {
    // Trace raced to inactive between the gate check and id allocation.
    active_ = false;
    return;
  }
  record_.parent_id = parent;
  record_.type = type;
  record_.start_micros = NowMicros();
  record_.label.assign(label.data(), label.size());
  t_span_stack.push_back(record_.span_id);
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  // Pop our frame. Spans are strictly nested per thread, so ours is the
  // top — but be defensive if a caller leaked an order violation.
  if (!t_span_stack.empty() && t_span_stack.back() == record_.span_id) {
    t_span_stack.pop_back();
  }
  const uint64_t now = NowMicros();
  record_.duration_micros =
      now >= record_.start_micros ? now - record_.start_micros : 0;
  Tracer::Record(&record_);
}

const char* SpanTypeName(SpanType type) {
  static const char* const kNames[] = {
      "db.get",         "db.multiget",    "db.write",      "db.seek",
      "db.flush",       "db.compactrange",
      "job.flush",      "job.compaction", "job.scrub",     "job.recovery",
      "wal.append",     "wal.roll",       "block.read",
      "crypto.encrypt", "crypto.decrypt", "crypto.chunk",  "crypto.shard",
      "kds.rpc",
      "ds.transfer",    "ds.replica_fetch", "ds.offload_rpc",
      "ds.compaction_rpc",
      "io.read",        "io.write",       "io.sync",
      "job.rotation",   "job.backup",
      "wal.encrypt",
  };
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumSpanTypes,
                "span name table out of sync with SpanType");
  const size_t i = static_cast<size_t>(type);
  if (i >= kNumSpanTypes) {
    return "unknown";
  }
  return kNames[i];
}

void EncodeSpanRecord(const SpanRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(64 + record.label.size());
  payload.push_back(static_cast<char>(record.type));
  payload.push_back(static_cast<char>(record.flags));
  payload.push_back(static_cast<char>(record.aux));
  PutFixed64(&payload, record.span_id);
  PutFixed64(&payload, record.parent_id);
  PutFixed64(&payload, record.thread_id);
  PutFixed64(&payload, record.start_micros);
  PutFixed64(&payload, record.duration_micros);
  PutFixed64(&payload, record.a);
  PutFixed64(&payload, record.b);
  payload.append(record.label);

  PutVarint32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutFixed32(out, crc32c::Value(payload.data(), payload.size()));
}

namespace {
// Fixed part of the payload: type/flags/aux + 7 fixed64 fields.
constexpr size_t kSpanPayloadFixedSize = 3 + 7 * 8;
}  // namespace

Status TraceReader::Open(Env* env, const std::string& path,
                         std::unique_ptr<TraceReader>* out) {
  out->reset();
  std::string contents;
  Status s = ReadFileToString(env, path, &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.size() < kTraceMagicSize + 4 + 8 ||
      memcmp(contents.data(), kTraceMagic, kTraceMagicSize) != 0) {
    return Status::Corruption("not a SHIELD trace file: " + path);
  }
  const uint32_t version = DecodeFixed32(contents.data() + kTraceMagicSize);
  if (version != kTraceFormatVersion) {
    return Status::NotSupported("unsupported trace format version");
  }
  std::unique_ptr<TraceReader> reader(new TraceReader());
  reader->trace_start_micros_ =
      DecodeFixed64(contents.data() + kTraceMagicSize + 4);
  reader->pos_ = kTraceMagicSize + 4 + 8;
  reader->contents_ = std::move(contents);
  *out = std::move(reader);
  return Status::OK();
}

bool TraceReader::Next(SpanRecord* record) {
  if (truncated_ || pos_ >= contents_.size()) {
    return false;
  }
  Slice input(contents_.data() + pos_, contents_.size() - pos_);
  uint32_t payload_len = 0;
  if (!GetVarint32(&input, &payload_len)) {
    truncated_ = true;
    parse_status_ = Status::Corruption("truncated record length");
    return false;
  }
  if (payload_len < kSpanPayloadFixedSize ||
      input.size() < static_cast<size_t>(payload_len) + 4) {
    truncated_ = true;
    parse_status_ = Status::Corruption("truncated record payload");
    return false;
  }
  const char* payload = input.data();
  const uint32_t expected_crc = DecodeFixed32(payload + payload_len);
  if (crc32c::Value(payload, payload_len) != expected_crc) {
    truncated_ = true;
    parse_status_ = Status::Corruption("record checksum mismatch");
    return false;
  }

  const uint8_t type = static_cast<uint8_t>(payload[0]);
  record->type = type < static_cast<uint8_t>(SpanType::kMaxSpanType)
                     ? static_cast<SpanType>(type)
                     : SpanType::kMaxSpanType;
  record->flags = static_cast<uint8_t>(payload[1]);
  record->aux = static_cast<uint8_t>(payload[2]);
  record->span_id = DecodeFixed64(payload + 3);
  record->parent_id = DecodeFixed64(payload + 11);
  record->thread_id = DecodeFixed64(payload + 19);
  record->start_micros = DecodeFixed64(payload + 27);
  record->duration_micros = DecodeFixed64(payload + 35);
  record->a = DecodeFixed64(payload + 43);
  record->b = DecodeFixed64(payload + 51);
  record->label.assign(payload + kSpanPayloadFixedSize,
                       payload_len - kSpanPayloadFixedSize);

  pos_ = static_cast<size_t>(payload + payload_len + 4 - contents_.data());
  records_read_++;
  return true;
}

}  // namespace shield
