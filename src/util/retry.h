#ifndef SHIELD_UTIL_RETRY_H_
#define SHIELD_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace shield {

/// RetryPolicy describes how a caller should retry an operation that
/// failed with a transient error: capped exponential backoff with
/// deterministic jitter, bounded by an attempt count and an optional
/// wall-clock deadline.
///
/// The policy is a plain value type: each call site constructs one (or
/// copies a shared constant) and passes it to RunWithRetry. Jitter is
/// derived from a seed so that fault-injection schedules stay
/// reproducible end to end.
struct RetryPolicy {
  /// Maximum number of attempts, including the first one. 1 disables
  /// retries entirely.
  int max_attempts = 4;

  /// Backoff before the second attempt; doubles (times `multiplier`)
  /// on each subsequent attempt up to max_backoff_micros.
  uint64_t initial_backoff_micros = 1000;
  uint64_t max_backoff_micros = 100 * 1000;
  double multiplier = 2.0;

  /// Fraction of the computed backoff replaced by a uniform random
  /// value in [0, jitter * backoff). 0 disables jitter.
  double jitter = 0.5;

  /// Total wall-clock budget in microseconds across all attempts
  /// (0 = unlimited). Once exceeded, RunWithRetry returns the last
  /// error even if attempts remain.
  uint64_t deadline_micros = 0;

  /// Seed for the jitter PRNG so backoff sequences are reproducible.
  uint64_t seed = 0x5e7e7;

  /// Returns the backoff (with jitter applied) to sleep before the
  /// given 1-based retry attempt (attempt 2 is the first retry).
  /// Jitter is drawn from `rnd`, the caller's injectable source — the
  /// policy never consults an implicit or global generator, so fault
  /// schedules replay bit-for-bit from a seed.
  uint64_t BackoffMicros(int attempt, Random* rnd) const;

  /// Legacy form threading raw PRNG state between calls; delegates to
  /// the Random overload.
  uint64_t BackoffMicros(int attempt, uint64_t* rnd_state) const;
};

/// Injectable dependencies for RunWithRetry. Defaults reproduce the
/// historical behaviour: a private jitter PRNG seeded from
/// RetryPolicy::seed and the process clock (SystemClock() — the real
/// clock, or the simulator's virtual clock when one is installed).
struct RetryContext {
  /// Jitter source shared across calls (e.g. one seeded Random per
  /// simulated actor). Null: a fresh Random(policy.seed) per call.
  Random* rnd = nullptr;

  /// Time source for backoff sleeps and the deadline. Null:
  /// SystemClock().
  Clock* clock = nullptr;
};

/// True when `s` is worth retrying under a RetryPolicy: transient
/// statuses (kTryAgain, kBusy) only. Corruption, NotFound, permission
/// and argument errors are final; IOError is treated as permanent
/// because the fault layers reserve it for non-recoverable failures.
bool IsRetryableStatus(const Status& s);

/// Runs `op` until it succeeds, returns a non-retryable error, or the
/// policy is exhausted (attempts or deadline). Sleeps the backoff
/// between attempts through `ctx.clock`; a backoff never sleeps past
/// the deadline (the sleep is capped to the remaining budget and the
/// deadline is re-checked before every retry), so retries terminate
/// promptly under both real and virtual time. Returns the final
/// status. If `attempts_out` is non-null it receives the number of
/// attempts performed.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op,
                    int* attempts_out = nullptr,
                    const RetryContext& ctx = RetryContext());

}  // namespace shield

#endif  // SHIELD_UTIL_RETRY_H_
