#ifndef SHIELD_UTIL_CLOCK_H_
#define SHIELD_UTIL_CLOCK_H_

#include <cstdint>

namespace shield {

/// Monotonic time source. All waiting and latency measurement in the
/// library goes through a Clock so the time source is swappable in one
/// place: production uses the steady-clock-backed real clock, the
/// deterministic simulator (src/sim) installs a virtual clock whose
/// sleeps advance simulated time instead of blocking the thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic time in microseconds.
  virtual uint64_t NowMicros() = 0;

  /// Monotonic time in nanoseconds. Default derives from NowMicros();
  /// the real clock overrides with full resolution.
  virtual uint64_t NowNanos() { return NowMicros() * 1000; }

  /// Blocks (or, on a virtual clock, advances simulated time) for the
  /// given duration.
  virtual void SleepForMicros(uint64_t micros) = 0;

  /// The process-wide real (steady_clock) clock. Never deleted.
  static Clock* Real();
};

/// The clock behind the free functions below. Defaults to Clock::Real();
/// the simulator swaps in a virtual clock for the whole process (the
/// FDB-style single-process simulation boundary). Thread safe.
Clock* SystemClock();

/// Installs `clock` as the process clock and returns the previous one
/// (nullptr means the real clock was active). Pass nullptr to restore
/// the real clock. The caller keeps ownership and must keep `clock`
/// alive until it is swapped back out and all threads have quiesced.
Clock* SwapSystemClock(Clock* clock);

/// RAII system-clock override for tests and the simulator: installs
/// `clock` on construction, restores the previous clock on destruction.
class ScopedClockOverride {
 public:
  explicit ScopedClockOverride(Clock* clock) : prev_(SwapSystemClock(clock)) {}
  ~ScopedClockOverride() { SwapSystemClock(prev_); }

  ScopedClockOverride(const ScopedClockOverride&) = delete;
  ScopedClockOverride& operator=(const ScopedClockOverride&) = delete;

 private:
  Clock* prev_;
};

// --- Convenience free functions (route through SystemClock()) ---

uint64_t NowMicros();
uint64_t NowNanos();
void SleepForMicros(uint64_t micros);

}  // namespace shield

#endif  // SHIELD_UTIL_CLOCK_H_
