#ifndef SHIELD_UTIL_CLOCK_H_
#define SHIELD_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace shield {

/// Monotonic time in microseconds. All latency measurement in the
/// library and benchmarks goes through these helpers so the time source
/// is swappable in one place.
inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline void SleepForMicros(uint64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace shield

#endif  // SHIELD_UTIL_CLOCK_H_
