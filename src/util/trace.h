#ifndef SHIELD_UTIL_TRACE_H_
#define SHIELD_UTIL_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/statistics.h"
#include "util/status.h"

namespace shield {

class Env;

/// Span taxonomy: each value names one pipeline stage the paper
/// attributes cost to (WAL buffer copies, chunked SST encryption,
/// DEK-cache lookups, fabric round trips, …). Values are persisted in
/// trace files — append only, never renumber.
enum class SpanType : uint8_t {
  // Public DB operations (root spans on the calling thread).
  kDbGet = 0,
  kDbMultiGet,
  kDbWrite,
  kDbSeek,
  kDbFlush,
  kDbCompactRange,

  // Background jobs (root spans on background threads).
  kFlushJob,
  kCompactionJob,
  kScrubPass,
  kRecovery,

  // LSM internals.
  kWalAppend,
  kWalRoll,
  kBlockRead,

  // Crypto pipeline.
  kFileEncrypt,
  kFileDecrypt,
  kChunkEncrypt,
  kChunkShard,

  // Key plane.
  kKdsRpc,

  // Disaggregated-storage fabric.
  kDsTransfer,
  kReplicaFetch,
  kOffloadRpc,
  kCompactionRpc,

  // Physical I/O (env/trace_env.h). `aux` carries the cipher kind.
  kIoRead,
  kIoWrite,
  kIoSync,

  // Key lifecycle (append-only: values are persisted in trace files).
  kRotationPass,
  kBackup,

  // Parallel write path: keystream XOR + append of one encrypted WAL
  // chunk (shield/file_crypto.cc).
  kWalEncrypt,

  kMaxSpanType,  // not a type
};

constexpr size_t kNumSpanTypes = static_cast<size_t>(SpanType::kMaxSpanType);

/// Stable dotted name, e.g. "db.get", "io.read", "kds.rpc".
const char* SpanTypeName(SpanType type);

/// SpanRecord::flags bits.
constexpr uint8_t kSpanFlagError = 0x1;

/// One completed span, as serialized into the binary trace file.
/// `a`/`b` are type-specific arguments (offset/length for I/O spans,
/// byte counts for jobs, key counts for MultiGet); `aux` is a small
/// type-specific tag (cipher kind for I/O spans). `label` is a short
/// bounded string (file name for I/O spans).
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint64_t thread_id = 0;  // process-local sequential id
  uint64_t start_micros = 0;
  uint64_t duration_micros = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  SpanType type = SpanType::kMaxSpanType;
  uint8_t flags = 0;
  uint8_t aux = 0;
  std::string label;
};

struct TraceOptions {
  /// Records buffered per thread before a drain to the trace file.
  size_t per_thread_buffer = 1024;
  /// Labels longer than this are truncated (bound per-record size).
  size_t max_label_size = 256;
  /// Node identity stamped into the trace-file header (format v2).
  /// Empty: a v1 header is written (single-node trace, old tools).
  std::string node_name;
  /// Exclusive tracers claim the process-global slot: every span on
  /// every thread lands in them, and a second Start() returns Busy —
  /// the historical single-trace mode. Non-exclusive tracers receive
  /// only spans from threads bound to them via ScopedTracerBinding,
  /// so one process can trace many nodes into per-node files (the
  /// simulated cluster).
  bool exclusive = true;
  /// When non-null, DB::StartTrace writes the trace file through this
  /// env instead of the DB's physical env (the simulator points this
  /// at the zero-cost backing store so tracing never perturbs virtual
  /// time). Ignored by Tracer::Start itself, which always receives an
  /// explicit env.
  Env* trace_env = nullptr;
};

/// Cross-node span propagation context: enough to parent a span
/// created on another node (offload worker, replica, storage server)
/// to the dispatching DB operation. Span ids are process-global, so a
/// parent id resolves unambiguously across per-node trace files.
struct TraceContext {
  /// Id of the originating trace session (0 = none active).
  uint64_t trace_id = 0;
  /// Innermost open span at capture time (0 = root).
  uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Records spans into a binary trace file through lock-free-on-the-hot-
/// path per-thread buffers: Record() appends to the calling thread's
/// private buffer (no shared lock), which is drained to the file — in
/// batches, under a single file mutex — when full, and fully at Stop().
///
/// One trace can be active per process at a time (spans are recorded
/// from layers that have no DB pointer: crypto wrappers, the KDS
/// client, the network simulator). DB::StartTrace/EndTrace own the
/// handle; deep layers reach the active trace via the static fast path
/// (one relaxed atomic load when idle).
class Tracer {
 public:
  Tracer();
  ~Tracer();  // implies Stop()

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens `path` via `env` and activates this tracer. Exclusive
  /// tracers (TraceOptions::exclusive, the default) claim the
  /// process-global slot and fail with Busy if another exclusive
  /// tracer is active; non-exclusive tracers activate privately and
  /// receive spans only from bound threads. `stats` (optional)
  /// receives io.trace.* tickers.
  Status Start(Env* env, const std::string& path, const TraceOptions& options,
               Statistics* stats = nullptr);

  /// Deactivates, drains every thread buffer, and closes the file.
  /// Idempotent; returns the first write error seen over the trace's
  /// lifetime (best effort — tracing never fails the DB).
  Status Stop();

  bool active() const;

  uint64_t spans_recorded() const;
  uint64_t spans_dropped() const;

  /// True when any tracer is active — the hot-path gate.
  static bool AnyActive();

  /// Records a completed span into the active trace (no-op when
  /// inactive). Fills record.span_id if zero.
  static void Record(SpanRecord* record);

  /// Allocates a span id from the active trace (0 when inactive).
  static uint64_t NextSpanId();

  /// The innermost open TraceSpan's id on this thread (0 = none).
  /// Captured by code that hops threads (e.g. the chunk-encryption
  /// pool) to parent the hopped work explicitly.
  static uint64_t CurrentSpanId();

  /// Snapshot of this thread's tracing context for cross-node
  /// propagation: {active session id, innermost open span}. All zero
  /// when no trace is active on this thread.
  static TraceContext CurrentContext();

  /// This tracer's session id (0 before Start).
  uint64_t trace_id() const;

  /// Implementation detail, public only so the file-local machinery in
  /// trace.cc can name it; not part of the API.
  struct Core;

 private:
  friend class TraceSpan;
  friend class ScopedTracerBinding;
  std::shared_ptr<Core> core_;
};

/// Binds the calling thread to `tracer` for the binding's lifetime:
/// spans recorded on this thread go to the bound tracer instead of the
/// process-global one. Used at node entry points (DB public ops and
/// background jobs, the offload worker's RunCompaction) so one process
/// can write per-node trace files. Nestable (restores the previous
/// binding); a null tracer is a no-op.
class ScopedTracerBinding {
 public:
  explicit ScopedTracerBinding(Tracer* tracer);
  ~ScopedTracerBinding();

  ScopedTracerBinding(const ScopedTracerBinding&) = delete;
  ScopedTracerBinding& operator=(const ScopedTracerBinding&) = delete;

 private:
  bool bound_ = false;
  std::shared_ptr<Tracer::Core> prev_;
};

/// RAII span: captures start on construction, duration on destruction,
/// and records via Tracer::Record. Near-zero cost when no trace is
/// active (single relaxed atomic load). Nested spans on one thread are
/// parented automatically; cross-thread work passes an explicit parent.
class TraceSpan {
 public:
  explicit TraceSpan(SpanType type) : TraceSpan(type, Slice()) {}
  TraceSpan(SpanType type, const Slice& label);
  /// Explicit parent (cross-thread propagation). Pass parent = 0 for a
  /// detached root span.
  TraceSpan(SpanType type, uint64_t parent, const Slice& label);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void SetArgs(uint64_t a, uint64_t b) {
    if (active_) {
      record_.a = a;
      record_.b = b;
    }
  }
  void SetAux(uint8_t aux) {
    if (active_) {
      record_.aux = aux;
    }
  }
  void SetError() {
    if (active_) {
      record_.flags |= kSpanFlagError;
    }
  }
  /// Flags the span as errored when `s` is a failure (NotFound on read
  /// paths is an answer, not an error; callers filter before calling).
  void MarkStatus(const Status& s) {
    if (active_ && !s.ok()) {
      record_.flags |= kSpanFlagError;
    }
  }

  /// This span's id for explicit cross-thread parenting (0 when no
  /// trace is active).
  uint64_t id() const { return active_ ? record_.span_id : 0; }
  bool active() const { return active_; }

 private:
  bool active_;
  SpanRecord record_;
};

/// Trace file constants (shared with tools/trace_replay). Version 1:
/// magic | fixed32 version | fixed64 start_micros | records. Version 2
/// adds `varint32 node_len | node bytes` after start_micros (written
/// when TraceOptions::node_name is set); record encoding is identical.
constexpr char kTraceMagic[] = "SHTRACE1";  // 8 bytes, no NUL on disk
constexpr size_t kTraceMagicSize = 8;
constexpr uint32_t kTraceFormatVersion = 1;
constexpr uint32_t kTraceFormatVersionNode = 2;

/// Serializes one record: varint32 payload length | payload |
/// fixed32 crc32c(payload). Exposed for tests.
void EncodeSpanRecord(const SpanRecord& record, std::string* out);

/// Reads a trace file front to back. Damage tolerant: a truncated or
/// torn tail (short record, CRC mismatch, garbage) ends iteration with
/// truncated() == true and every record before the damage returned.
class TraceReader {
 public:
  /// Loads `path` through `env`. Fails only if the file cannot be read
  /// or the header is not a SHIELD trace.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<TraceReader>* out);

  /// Advances to the next record; false at end (clean or truncated).
  bool Next(SpanRecord* record);

  bool truncated() const { return truncated_; }
  /// First parse problem encountered (OK when the file ended cleanly).
  const Status& parse_status() const { return parse_status_; }
  uint64_t records_read() const { return records_read_; }
  uint64_t trace_start_micros() const { return trace_start_micros_; }
  /// Node name from a v2 header; empty for v1 traces.
  const std::string& node() const { return node_; }

 private:
  TraceReader() = default;

  std::string contents_;
  std::string node_;
  size_t pos_ = 0;
  uint64_t trace_start_micros_ = 0;
  uint64_t records_read_ = 0;
  bool truncated_ = false;
  Status parse_status_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_TRACE_H_
