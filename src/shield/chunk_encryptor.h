#ifndef SHIELD_SHIELD_CHUNK_ENCRYPTOR_H_
#define SHIELD_SHIELD_CHUNK_ENCRYPTOR_H_

#include <cstddef>
#include <cstdint>

#include "crypto/cipher.h"
#include "util/statistics.h"
#include "util/thread_pool.h"

namespace shield {

/// Encrypts a buffer at a file offset, optionally splitting the work
/// across a thread pool (paper Section 5.2: multi-threaded encryption
/// of compaction chunks). CTR keystreams are offset-addressable, so
/// sub-ranges encrypt independently.
class ChunkEncryptor {
 public:
  /// `cipher` must outlive the encryptor. `pool` may be null (or
  /// `threads` <= 1) for synchronous encryption. `stats` (optional)
  /// receives a shield.chunk.encrypt.shards tick per dispatched shard.
  ChunkEncryptor(const crypto::StreamCipher* cipher, ThreadPool* pool,
                 int threads, Statistics* stats = nullptr);

  /// XORs keystream over data[0, n) positioned at `offset` in the
  /// logical file. Blocking: returns when all bytes are processed.
  /// On cipher failure (e.g. ChaCha20 counter overflow) returns the
  /// first failing shard's status; the buffer contents are then
  /// unusable and the caller must fail the write.
  /// Const: shared by writers (encrypt) and readers (CTR decrypt is
  /// the same XOR) without forcing mutable members on the file objects.
  Status Encrypt(uint64_t offset, char* data, size_t n) const;

  // Sub-ranges smaller than this are not worth a task dispatch.
  // Public so boundary tests can exercise exact shard-size multiples.
  static constexpr size_t kMinShardBytes = 16 * 1024;

 private:
  const crypto::StreamCipher* cipher_;
  ThreadPool* pool_;
  int threads_;
  Statistics* stats_;
};

}  // namespace shield

#endif  // SHIELD_SHIELD_CHUNK_ENCRYPTOR_H_
