#include "shield/dek_manager.h"

#include "util/retry.h"

namespace shield {

namespace {

/// KDS round-trips ride out transient failures and short outages here
/// (~8 attempts, capped exponential backoff; worst case a few hundred
/// ms). A decentralized KDS is the paper's availability requirement,
/// so brief unavailability must not fail recovery, reads, or flushes.
const RetryPolicy& KdsRetryPolicy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts = 8;
    p.initial_backoff_micros = 500;
    p.max_backoff_micros = 50 * 1000;
    return p;
  }();
  return policy;
}

}  // namespace

DekManager::DekManager(Kds* kds, std::string server_id,
                       SecureDekCache* secure_cache)
    : kds_(kds), server_id_(std::move(server_id)),
      secure_cache_(secure_cache) {}

Status DekManager::CreateDek(crypto::CipherKind kind, Dek* out) {
  kds_requests_.fetch_add(1, std::memory_order_relaxed);
  Status s = RunWithRetry(KdsRetryPolicy(), [&] {
    return kds_->CreateDek(server_id_, kind, out);
  });
  if (!s.ok()) {
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[out->id] = *out;
  }
  if (secure_cache_ != nullptr) {
    // Best effort: a failed cache write costs a KDS round-trip later
    // but is not fatal.
    secure_cache_->Put(*out);
  }
  return Status::OK();
}

Status DekManager::ResolveDek(const DekId& id, Dek* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(id);
    if (it != memory_.end()) {
      *out = it->second;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  if (secure_cache_ != nullptr && secure_cache_->Get(id, out).ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[id] = *out;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  kds_requests_.fetch_add(1, std::memory_order_relaxed);
  Status s = RunWithRetry(KdsRetryPolicy(),
                          [&] { return kds_->GetDek(server_id_, id, out); });
  if (!s.ok()) {
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[id] = *out;
  }
  if (secure_cache_ != nullptr) {
    secure_cache_->Put(*out);
  }
  return Status::OK();
}

Status DekManager::ForgetDek(const DekId& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.erase(id);
  }
  if (secure_cache_ != nullptr) {
    secure_cache_->Erase(id);
  }
  kds_requests_.fetch_add(1, std::memory_order_relaxed);
  Status s = RunWithRetry(KdsRetryPolicy(),
                          [&] { return kds_->DeleteDek(server_id_, id); });
  if (s.IsNotFound()) {
    // Another server (e.g. the compaction worker) may have owned the
    // deletion; dropping a missing DEK is success.
    return Status::OK();
  }
  return s;
}

}  // namespace shield
