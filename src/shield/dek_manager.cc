#include "shield/dek_manager.h"

#include <cstdint>
#include <vector>

#include "env/env.h"
#include "util/clock.h"
#include "util/perf_context.h"
#include "util/retry.h"
#include "util/trace.h"

namespace shield {

namespace {

/// KDS round-trips ride out transient failures and short outages here
/// (~8 attempts, capped exponential backoff; worst case a few hundred
/// ms). A decentralized KDS is the paper's availability requirement,
/// so brief unavailability must not fail recovery, reads, or flushes.
const RetryPolicy& KdsRetryPolicy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts = 8;
    p.initial_backoff_micros = 500;
    p.max_backoff_micros = 50 * 1000;
    return p;
  }();
  return policy;
}

}  // namespace

DekManager::DekManager(Kds* kds, std::string server_id,
                       SecureDekCache* secure_cache, Statistics* stats)
    : kds_(kds), server_id_(std::move(server_id)),
      secure_cache_(secure_cache), stats_(stats) {}

uint64_t DekManager::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_.size();
}

Status DekManager::KdsRoundTrip(const char* op_name,
                                const std::function<Status()>& op) {
  kds_requests_.fetch_add(1, std::memory_order_relaxed);
  RecordTick(stats_, Tickers::kKdsRequests, 1);
  PerfAdd(&PerfContext::kds_request_count, 1);
  uint64_t elapsed = 0;
  int attempts = 1;
  Status s;
  {
    TraceSpan span(SpanType::kKdsRpc, Slice(op_name));
    StopWatch watch(stats_, Histograms::kKdsLatencyMicros, &elapsed);
    s = RunWithRetry(KdsRetryPolicy(), op, &attempts);
    span.SetArgs(static_cast<uint64_t>(attempts), 0);
    span.MarkStatus(s);
  }
  if (attempts > 1) {
    RecordTick(stats_, Tickers::kKdsRetries,
               static_cast<uint64_t>(attempts - 1));
  }
  if (!s.ok()) {
    RecordTick(stats_, Tickers::kKdsFailures, 1);
  }
  PerfAdd(&PerfContext::kds_wait_micros, elapsed);
  if (event_logger_ != nullptr && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("kds_lookup");
    w.Add("op", op_name);
    w.Add("ok", s.ok());
    w.Add("attempts", attempts);
    w.Add("micros", elapsed);
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  }
  return s;
}

Status DekManager::CreateDek(crypto::CipherKind kind, Dek* out) {
  Status s = KdsRoundTrip(
      "create", [&] { return kds_->CreateDek(server_id_, kind, out); });
  if (!s.ok()) {
    return s;
  }
  RecordTick(stats_, Tickers::kShieldDekCreated, 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[out->id] = *out;
    created_micros_[out->id] = NowMicros();
  }
  if (secure_cache_ != nullptr) {
    // Best effort: a failed cache write costs a KDS round-trip later
    // but is not fatal.
    secure_cache_->Put(*out);
  }
  return Status::OK();
}

void DekManager::AdoptDek(const Dek& dek) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[dek.id] = dek;
    created_micros_[dek.id] = NowMicros();
  }
  if (secure_cache_ != nullptr) {
    // Best effort, as in CreateDek: a failed cache write costs a KDS
    // round-trip later but is not fatal.
    secure_cache_->Put(dek);
  }
}

Status DekManager::ResolveDek(const DekId& id, Dek* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(id);
    if (it != memory_.end()) {
      *out = it->second;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      RecordTick(stats_, Tickers::kShieldDekCacheHit, 1);
      return Status::OK();
    }
  }
  if (secure_cache_ != nullptr && secure_cache_->Get(id, out).ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[id] = *out;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    RecordTick(stats_, Tickers::kShieldDekCacheHit, 1);
    return Status::OK();
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  RecordTick(stats_, Tickers::kShieldDekCacheMiss, 1);
  Status s =
      KdsRoundTrip("get", [&] { return kds_->GetDek(server_id_, id, out); });
  if (!s.ok()) {
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[id] = *out;
  }
  if (secure_cache_ != nullptr) {
    secure_cache_->Put(*out);
  }
  return Status::OK();
}

Status DekManager::ForgetDek(const DekId& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (memory_.erase(id) > 0) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    created_micros_.erase(id);
  }
  if (secure_cache_ != nullptr) {
    secure_cache_->Erase(id);
  }
  RecordTick(stats_, Tickers::kShieldDekDestroyed, 1);
  Status s =
      KdsRoundTrip("delete", [&] { return kds_->DeleteDek(server_id_, id); });
  if (s.IsNotFound()) {
    // Another server (e.g. the compaction worker) may have owned the
    // deletion; dropping a missing DEK is success.
    return Status::OK();
  }
  if (!s.ok()) {
    // The key is already unreachable locally but still alive in the
    // KDS. Callers on the file-deletion path ignore this status, so a
    // transient KDS failure used to leak the DEK forever; queue it and
    // let a background drain finish the destruction.
    EnqueuePendingDelete(id);
    return Status::OK();
  }
  return s;
}

Status DekManager::RewrapDek(const DekId& id,
                             const std::string& target_server_id, Dek* out) {
  return KdsRoundTrip("rewrap", [&] {
    return kds_->RewrapDek(server_id_, id, target_server_id, out);
  });
}

void DekManager::EnqueuePendingDelete(const DekId& id) {
  RecordTick(stats_, Tickers::kShieldDekDeleteDeferred, 1);
  std::lock_guard<std::mutex> lock(pending_mu_);
  if (pending_.insert(id).second) {
    PersistPendingLocked();
  }
}

void DekManager::PersistPendingLocked() {
  if (pending_env_ == nullptr || pending_path_.empty()) {
    return;
  }
  std::string data;
  for (const DekId& id : pending_) {
    data.append(id.ToHex());
    data.push_back('\n');
  }
  // Best effort, atomically: a torn queue file must never be read back
  // as a valid id, and a failed persist only costs re-deleting an
  // already-deleted DEK (NotFound == success) after a crash.
  const std::string tmp = pending_path_ + ".tmp";
  if (WriteStringToFile(pending_env_, data, tmp, /*sync=*/true).ok()) {
    pending_env_->RenameFile(tmp, pending_path_);
  }
}

Status DekManager::ConfigurePendingDeletes(Env* env, const std::string& path) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_env_ = env;
  pending_path_ = path;
  if (!env->FileExists(path)) {
    return Status::OK();
  }
  std::string data;
  Status s = ReadFileToString(env, path, &data);
  if (!s.ok()) {
    return s;
  }
  size_t start = 0;
  while (start < data.size()) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos) {
      end = data.size();
    }
    const std::string line = data.substr(start, end - start);
    DekId id;
    if (!line.empty() && DekId::FromHex(line, &id)) {
      pending_.insert(id);
    }
    start = end + 1;
  }
  return Status::OK();
}

Status DekManager::TryDrainPendingDeletes() {
  std::vector<DekId> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.assign(pending_.begin(), pending_.end());
  }
  Status last;
  bool changed = false;
  for (const DekId& id : batch) {
    Status s = KdsRoundTrip(
        "delete", [&] { return kds_->DeleteDek(server_id_, id); });
    if (s.ok() || s.IsNotFound()) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      changed |= pending_.erase(id) > 0;
    } else {
      last = s;
    }
  }
  if (changed) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    PersistPendingLocked();
  }
  return last;
}

uint64_t DekManager::pending_deletes() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

uint64_t DekManager::DekAgeMicros(const DekId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = created_micros_.find(id);
  if (it == created_micros_.end()) {
    return UINT64_MAX;
  }
  const uint64_t now = NowMicros();
  return now > it->second ? now - it->second : 0;
}

}  // namespace shield
