#include "shield/dek_manager.h"

#include "util/perf_context.h"
#include "util/retry.h"
#include "util/trace.h"

namespace shield {

namespace {

/// KDS round-trips ride out transient failures and short outages here
/// (~8 attempts, capped exponential backoff; worst case a few hundred
/// ms). A decentralized KDS is the paper's availability requirement,
/// so brief unavailability must not fail recovery, reads, or flushes.
const RetryPolicy& KdsRetryPolicy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts = 8;
    p.initial_backoff_micros = 500;
    p.max_backoff_micros = 50 * 1000;
    return p;
  }();
  return policy;
}

}  // namespace

DekManager::DekManager(Kds* kds, std::string server_id,
                       SecureDekCache* secure_cache, Statistics* stats)
    : kds_(kds), server_id_(std::move(server_id)),
      secure_cache_(secure_cache), stats_(stats) {}

uint64_t DekManager::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_.size();
}

Status DekManager::KdsRoundTrip(const char* op_name,
                                const std::function<Status()>& op) {
  kds_requests_.fetch_add(1, std::memory_order_relaxed);
  RecordTick(stats_, Tickers::kKdsRequests, 1);
  PerfAdd(&PerfContext::kds_request_count, 1);
  uint64_t elapsed = 0;
  int attempts = 1;
  Status s;
  {
    TraceSpan span(SpanType::kKdsRpc, Slice(op_name));
    StopWatch watch(stats_, Histograms::kKdsLatencyMicros, &elapsed);
    s = RunWithRetry(KdsRetryPolicy(), op, &attempts);
    span.SetArgs(static_cast<uint64_t>(attempts), 0);
    span.MarkStatus(s);
  }
  if (attempts > 1) {
    RecordTick(stats_, Tickers::kKdsRetries,
               static_cast<uint64_t>(attempts - 1));
  }
  if (!s.ok()) {
    RecordTick(stats_, Tickers::kKdsFailures, 1);
  }
  PerfAdd(&PerfContext::kds_wait_micros, elapsed);
  if (event_logger_ != nullptr && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("kds_lookup");
    w.Add("op", op_name);
    w.Add("ok", s.ok());
    w.Add("attempts", attempts);
    w.Add("micros", elapsed);
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  }
  return s;
}

Status DekManager::CreateDek(crypto::CipherKind kind, Dek* out) {
  Status s = KdsRoundTrip(
      "create", [&] { return kds_->CreateDek(server_id_, kind, out); });
  if (!s.ok()) {
    return s;
  }
  RecordTick(stats_, Tickers::kShieldDekCreated, 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[out->id] = *out;
  }
  if (secure_cache_ != nullptr) {
    // Best effort: a failed cache write costs a KDS round-trip later
    // but is not fatal.
    secure_cache_->Put(*out);
  }
  return Status::OK();
}

Status DekManager::ResolveDek(const DekId& id, Dek* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(id);
    if (it != memory_.end()) {
      *out = it->second;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      RecordTick(stats_, Tickers::kShieldDekCacheHit, 1);
      return Status::OK();
    }
  }
  if (secure_cache_ != nullptr && secure_cache_->Get(id, out).ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[id] = *out;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    RecordTick(stats_, Tickers::kShieldDekCacheHit, 1);
    return Status::OK();
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  RecordTick(stats_, Tickers::kShieldDekCacheMiss, 1);
  Status s =
      KdsRoundTrip("get", [&] { return kds_->GetDek(server_id_, id, out); });
  if (!s.ok()) {
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[id] = *out;
  }
  if (secure_cache_ != nullptr) {
    secure_cache_->Put(*out);
  }
  return Status::OK();
}

Status DekManager::ForgetDek(const DekId& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (memory_.erase(id) > 0) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (secure_cache_ != nullptr) {
    secure_cache_->Erase(id);
  }
  RecordTick(stats_, Tickers::kShieldDekDestroyed, 1);
  Status s =
      KdsRoundTrip("delete", [&] { return kds_->DeleteDek(server_id_, id); });
  if (s.IsNotFound()) {
    // Another server (e.g. the compaction worker) may have owned the
    // deletion; dropping a missing DEK is success.
    return Status::OK();
  }
  return s;
}

}  // namespace shield
