#include "shield/file_crypto.h"

#include <cstring>

#include "crypto/block_auth.h"
#include "crypto/keystream_prefetcher.h"
#include "crypto/secure_random.h"
#include "shield/chunk_encryptor.h"
#include "util/clock.h"
#include "util/perf_context.h"
#include "util/trace.h"

namespace shield {

namespace {
constexpr char kMagic[8] = {'S', 'H', 'L', 'D', 'F', 'I', 'L', '1'};

// A file that *starts* with the SHIELD magic is claimed by SHIELD: a
// later parse failure in such a file must surface as corruption, never
// demote the file to the plaintext fallback (which would hand
// attacker-shaped ciphertext to the plaintext read path).
bool HasShieldMagic(const Slice& data) {
  return data.size() >= sizeof(kMagic) &&
         memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
}

// Accounts crypto traffic into the global tickers and the calling
// thread's PerfContext at the single place where SHIELD files touch
// plaintext<->ciphertext.
void RecordCryptoBytes(Statistics* stats, crypto::CipherKind kind,
                       bool encrypt, uint64_t n) {
  if (n == 0) {
    return;
  }
  RecordTick(stats,
             encrypt ? Tickers::kCryptoBytesEncrypted
                     : Tickers::kCryptoBytesDecrypted,
             n);
  RecordTick(stats,
             kind == crypto::CipherKind::kChaCha20 ? Tickers::kCryptoChaCha20Bytes
                                                   : Tickers::kCryptoAesBytes,
             n);
  PerfAdd(encrypt ? &PerfContext::encrypt_bytes : &PerfContext::decrypt_bytes,
          n);
}
}  // namespace

std::string EncodeShieldFileHeader(const ShieldFileHeader& header) {
  std::string out(kShieldHeaderSize, '\0');
  memcpy(out.data(), kMagic, sizeof(kMagic));
  out[8] = static_cast<char>(header.version);
  out[9] = static_cast<char>(header.cipher);
  out[10] = static_cast<char>(header.nonce.size());
  out[11] = 0;  // reserved
  memcpy(out.data() + 12, header.dek_id.bytes.data(), DekId::kSize);
  memcpy(out.data() + 12 + DekId::kSize, header.nonce.data(),
         header.nonce.size());
  return out;
}

Status ParseShieldFileHeader(const Slice& data, ShieldFileHeader* header) {
  // Fail closed on every malformation: this parser also runs on
  // attacker-supplied bytes (backup restore, external-SST ingest), so
  // a header that is not exactly what the encoder emits is Corruption,
  // never a best-effort acceptance.
  if (data.size() < sizeof(kMagic) ||
      memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a SHIELD data file");
  }
  if (data.size() < kShieldHeaderSize) {
    return Status::Corruption("truncated SHIELD file header");
  }
  const uint8_t version = static_cast<uint8_t>(data[8]);
  if (version != kShieldFormatVersionBase &&
      version != kShieldFormatVersionAuth) {
    return Status::NotSupported("unknown SHIELD file version");
  }
  const uint8_t cipher_id = static_cast<uint8_t>(data[9]);
  if (cipher_id != static_cast<uint8_t>(crypto::CipherKind::kAes128Ctr) &&
      cipher_id != static_cast<uint8_t>(crypto::CipherKind::kAes256Ctr) &&
      cipher_id != static_cast<uint8_t>(crypto::CipherKind::kChaCha20)) {
    return Status::Corruption("unknown SHIELD header cipher id");
  }
  const auto cipher = static_cast<crypto::CipherKind>(cipher_id);
  if (data[11] != 0) {
    return Status::Corruption("nonzero reserved byte in SHIELD header");
  }
  const size_t nonce_len = static_cast<uint8_t>(data[10]);
  if (nonce_len > 16 || nonce_len != crypto::CipherNonceSize(cipher)) {
    return Status::Corruption("bad SHIELD header nonce length");
  }
  header->version = version;
  header->cipher = cipher;
  header->dek_id = DekId::FromSlice(Slice(data.data() + 12, DekId::kSize));
  header->nonce.assign(data.data() + 12 + DekId::kSize, nonce_len);
  return Status::OK();
}

// Bounded retry for the fixed-size header read at file open. A torn or
// transient short read here is dangerous beyond a failed open: with
// encrypt_wal off, a failed header parse classifies the file as
// plaintext, so a flaky read must never be what makes that call. Files
// genuinely shorter than a header return the same short result every
// attempt and fall through to the parse unchanged.
static Status ReadHeaderRetrying(RandomAccessFile* file, Slice* data,
                                 char* scratch) {
  constexpr int kMaxAttempts = 5;
  Status s;
  for (int attempt = 1;; attempt++) {
    s = file->Read(0, kShieldHeaderSize, data, scratch);
    if (s.ok() && data->size() == kShieldHeaderSize) {
      return s;
    }
    if (attempt < kMaxAttempts && (s.ok() || s.IsTransient())) {
      SleepForMicros(100ull << attempt);
      continue;
    }
    return s;
  }
}

bool LooksLikeShieldFile(const Slice& data) { return HasShieldMagic(data); }

Status ReadShieldFileHeader(Env* env, const std::string& fname,
                            ShieldFileHeader* header) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  char scratch[kShieldHeaderSize];
  Slice data;
  s = ReadHeaderRetrying(file.get(), &data, scratch);
  if (!s.ok()) {
    return s;
  }
  return ParseShieldFileHeader(data, header);
}

namespace {

// --- Plain factory -------------------------------------------------

class PlainFileFactory final : public DataFileFactory {
 public:
  explicit PlainFileFactory(Env* env) : env_(env) {}

  Status NewWritableFile(const std::string& fname, FileKind /*kind*/,
                         std::unique_ptr<WritableFile>* out) override {
    return env_->NewWritableFile(fname, out);
  }
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* out) override {
    return env_->NewRandomAccessFile(fname, out);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* out) override {
    return env_->NewSequentialFile(fname, out);
  }
  Status DeleteFile(const std::string& fname) override {
    return env_->RemoveFile(fname);
  }
  Env* env() const override { return env_; }

 private:
  Env* env_;
};

// --- SHIELD writable file ------------------------------------------

// Encrypts appended data with a per-file DEK. Two regimes, both from
// the paper:
//  * buffer_size == 0: every Append is encrypted individually (each
//    encryption pays fresh cipher initialization — the WAL bottleneck
//    of Section 3.2).
//  * buffer_size > 0: the application-managed buffer of Section 5.3.
//    Appends accumulate in plaintext in memory; once the buffer
//    reaches the threshold it is encrypted in one operation and
//    appended. A crash loses only the un-persisted buffered tail,
//    never plaintext on disk.
// Cipher initialization is performed per encryption operation (not
// once per file) to model the repeated-initialization cost the paper
// measures; see DESIGN.md. The WAL keystream pipeline
// (pipeline_window > 0, FileKind::kWal only) replaces that inline
// cipher run with an XOR against keystream a helper thread computed
// ahead of time, overlapping cipher work with the previous group's
// disk write and Sync() while producing bit-identical ciphertext.
class ShieldWritableFile final : public WritableFile {
 public:
  ShieldWritableFile(std::unique_ptr<WritableFile> base, Dek dek,
                     std::string nonce, size_t buffer_size,
                     ThreadPool* encryption_pool, int encryption_threads,
                     std::unique_ptr<crypto::BlockAuthenticator> auth,
                     FileKind kind, Statistics* stats,
                     size_t pipeline_window = 0)
      : base_(std::move(base)),
        dek_(std::move(dek)),
        nonce_(std::move(nonce)),
        buffer_size_(buffer_size),
        encryption_pool_(encryption_pool),
        encryption_threads_(encryption_threads),
        auth_(std::move(auth)),
        kind_(kind),
        stats_(stats) {
    if (buffer_size_ > 0) {
      buffer_.reserve(buffer_size_);
    }
    if (kind_ == FileKind::kWal && pipeline_window > 0) {
      // Falls back to inline encryption when the cipher rejects the
      // key/nonce (the inline path would then fail the same way on
      // the first append and report the reason).
      crypto::KeystreamPrefetcher::Create(dek_.cipher, dek_.key, nonce_,
                                          pipeline_window, stats_, &pipeline_);
    }
  }

  ~ShieldWritableFile() override {
    if (!closed_) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    if (buffer_size_ == 0) {
      return EncryptAndAppend(data.data(), data.size());
    }
    buffer_.append(data.data(), data.size());
    if (buffer_.size() >= buffer_size_) {
      return DrainBuffer();
    }
    return Status::OK();
  }

  Status Flush() override {
    // Deliberately does NOT drain the encryption buffer: draining on
    // every log-record flush would re-introduce the per-write
    // encryption cost the buffer exists to amortize. The paper's
    // trade-off (Section 5.3): buffered plaintext lives only in
    // process memory and is lost on an application crash; it is
    // encrypted before it ever reaches storage. Sync() and Close()
    // drain.
    return base_->Flush();
  }

  Status Sync() override {
    Status s = DrainBuffer();
    if (!s.ok()) {
      return s;
    }
    return base_->Sync();
  }

  Status Close() override {
    closed_ = true;
    Status s = DrainBuffer();
    Status c = base_->Close();
    return s.ok() ? c : s;
  }

  uint64_t GetFileSize() const override {
    return logical_offset_ + buffer_.size();
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return auth_.get();
  }

 private:
  Status DrainBuffer() {
    if (buffer_.empty()) {
      return Status::OK();
    }
    if (kind_ == FileKind::kWal) {
      RecordTick(stats_, Tickers::kShieldWalBufferDrains, 1);
    }
    Status s = EncryptAndAppend(buffer_.data(), buffer_.size());
    if (s.ok()) {
      // Only on success: after a transient append failure the
      // plaintext stays buffered so a retried Sync can persist it
      // (logical_offset_ has not advanced, so ciphertext stays
      // aligned).
      buffer_.clear();
    }
    return s;
  }

  Status EncryptAndAppend(const char* data, size_t n) {
    if (pipeline_ != nullptr) {
      return PipelinedEncryptAndAppend(data, n);
    }
    TraceSpan span(SpanType::kFileEncrypt);
    span.SetArgs(logical_offset_, n);
    span.SetAux(static_cast<uint8_t>(dek_.cipher));
    // Fresh cipher context per encryption operation: this is the
    // "encryption initialization" cost the paper amortizes with the
    // WAL buffer. The key schedule and scratch allocation happen here,
    // every time.
    std::unique_ptr<crypto::StreamCipher> cipher;
    Status s = crypto::NewStreamCipher(dek_.cipher, dek_.key, nonce_, &cipher);
    if (!s.ok()) {
      return s;
    }
    scratch_.assign(data, n);
    ChunkEncryptor encryptor(cipher.get(), encryption_pool_,
                             encryption_threads_, stats_);
    s = encryptor.Encrypt(logical_offset_, scratch_.data(), scratch_.size());
    if (!s.ok()) {
      // Cipher failure (e.g. ChaCha20 counter overflow): scratch_ may
      // hold partially transformed bytes; never append them.
      span.SetError();
      return s;
    }
    RecordCryptoBytes(stats_, dek_.cipher, /*encrypt=*/true, n);
    s = base_->Append(scratch_);
    if (s.ok()) {
      logical_offset_ += n;
    }
    span.MarkStatus(s);
    return s;
  }

  // XOR against prefetched keystream instead of running the cipher
  // inline. Bit-identical ciphertext (CTR keystream is a pure function
  // of key/nonce/offset), so files written either way are
  // indistinguishable on disk. The prefetcher's watermark only
  // advances after a successful base append: a transient append
  // failure keeps the keystream range cached, and the retried Sync()
  // re-encrypts the same plaintext at the same offset.
  Status PipelinedEncryptAndAppend(const char* data, size_t n) {
    TraceSpan span(SpanType::kWalEncrypt);
    span.SetArgs(logical_offset_, n);
    span.SetAux(static_cast<uint8_t>(dek_.cipher));
    scratch_.assign(data, n);
    Status s = pipeline_->Crypt(logical_offset_, scratch_.data(), n);
    if (!s.ok()) {
      span.SetError();
      return s;
    }
    RecordCryptoBytes(stats_, dek_.cipher, /*encrypt=*/true, n);
    s = base_->Append(scratch_);
    if (s.ok()) {
      logical_offset_ += n;
      pipeline_->Advance(logical_offset_);
    }
    span.MarkStatus(s);
    return s;
  }

  std::unique_ptr<WritableFile> base_;
  const Dek dek_;
  const std::string nonce_;
  const size_t buffer_size_;
  ThreadPool* const encryption_pool_;
  const int encryption_threads_;
  const std::unique_ptr<crypto::BlockAuthenticator> auth_;
  const FileKind kind_;
  Statistics* const stats_;

  std::string buffer_;   // plaintext, in memory only
  std::string scratch_;  // ciphertext staging
  uint64_t logical_offset_ = 0;  // encrypted-and-appended bytes
  bool closed_ = false;
  // Non-null only for WAL files with the keystream pipeline enabled.
  std::unique_ptr<crypto::KeystreamPrefetcher> pipeline_;
};

// --- SHIELD readable files ------------------------------------------

class ShieldRandomAccessFile final : public RandomAccessFile {
 public:
  /// `pool`/`threads` enable multi-threaded decryption of large reads
  /// (readahead spans, coalesced MultiGet fetches): CTR keystreams are
  /// offset-addressable, so the same sharding that parallelizes
  /// compaction encryption applies symmetrically to decryption.
  ShieldRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         std::unique_ptr<crypto::StreamCipher> cipher,
                         std::unique_ptr<crypto::BlockAuthenticator> auth,
                         ThreadPool* pool, int threads, Statistics* stats)
      : base_(std::move(base)),
        cipher_(std::move(cipher)),
        auth_(std::move(auth)),
        decryptor_(cipher_.get(), pool, threads, /*stats=*/nullptr),
        stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset + kShieldHeaderSize, n, result, scratch);
    if (!s.ok()) {
      return s;
    }
    if (result->data() != scratch && result->size() > 0) {
      memmove(scratch, result->data(), result->size());
    }
    {
      TraceSpan span(SpanType::kFileDecrypt);
      span.SetArgs(offset, result->size());
      span.SetAux(static_cast<uint8_t>(cipher_->kind()));
      PerfTimer timer(&GetPerfContext()->decrypt_micros);
      // CTR is an XOR stream: Encrypt *is* decrypt. The chunk
      // decryptor falls back to a single synchronous CryptAt for
      // small reads.
      s = decryptor_.Encrypt(offset, scratch, result->size());
      span.MarkStatus(s);
    }
    if (!s.ok()) {
      return s;
    }
    RecordCryptoBytes(stats_, cipher_->kind(), /*encrypt=*/false,
                      result->size());
    *result = Slice(scratch, result->size());
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    Status s = base_->Size(size);
    if (s.ok()) {
      *size = *size >= kShieldHeaderSize ? *size - kShieldHeaderSize : 0;
    }
    return s;
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return auth_.get();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::unique_ptr<crypto::StreamCipher> cipher_;
  std::unique_ptr<crypto::BlockAuthenticator> auth_;
  ChunkEncryptor decryptor_;
  Statistics* const stats_;
};

class ShieldSequentialFile final : public SequentialFile {
 public:
  ShieldSequentialFile(std::unique_ptr<SequentialFile> base,
                       std::unique_ptr<crypto::StreamCipher> cipher,
                       std::unique_ptr<crypto::BlockAuthenticator> auth,
                       Statistics* stats)
      : base_(std::move(base)),
        cipher_(std::move(cipher)),
        auth_(std::move(auth)),
        stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (!s.ok()) {
      return s;
    }
    if (result->data() != scratch && result->size() > 0) {
      memmove(scratch, result->data(), result->size());
    }
    {
      TraceSpan span(SpanType::kFileDecrypt);
      span.SetArgs(logical_offset_, result->size());
      span.SetAux(static_cast<uint8_t>(cipher_->kind()));
      PerfTimer timer(&GetPerfContext()->decrypt_micros);
      s = cipher_->CryptAt(logical_offset_, scratch, result->size());
      span.MarkStatus(s);
    }
    if (!s.ok()) {
      return s;
    }
    RecordCryptoBytes(stats_, cipher_->kind(), /*encrypt=*/false,
                      result->size());
    *result = Slice(scratch, result->size());
    logical_offset_ += result->size();
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    logical_offset_ += n;
    return base_->Skip(n);
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return auth_.get();
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  std::unique_ptr<crypto::StreamCipher> cipher_;
  std::unique_ptr<crypto::BlockAuthenticator> auth_;
  Statistics* const stats_;
  uint64_t logical_offset_ = 0;
};

// --- SHIELD factory --------------------------------------------------

class ShieldFileFactory final : public DataFileFactory {
 public:
  ShieldFileFactory(Env* env, DekManager* dek_manager,
                    const EncryptionOptions& opts, ThreadPool* encryption_pool,
                    Statistics* stats)
      : env_(env),
        dek_manager_(dek_manager),
        opts_(opts),
        encryption_pool_(encryption_pool),
        stats_(stats) {}

  Status NewWritableFile(const std::string& fname, FileKind kind,
                         std::unique_ptr<WritableFile>* out) override {
    if (kind == FileKind::kWal && !opts_.encrypt_wal) {
      // Evaluation-only plaintext WAL (Table 2's "Encrypted SST" row).
      return env_->NewWritableFile(fname, out);
    }
    // Every new file gets a fresh DEK from the KDS (paper Section 5.2).
    Dek dek;
    Status s = dek_manager_->CreateDek(opts_.cipher, &dek);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<WritableFile> base;
    s = env_->NewWritableFile(fname, &base);
    if (!s.ok()) {
      return s;
    }
    ShieldFileHeader header;
    header.version = opts_.authenticate_blocks ? kShieldFormatVersionAuth
                                               : kShieldFormatVersionBase;
    header.cipher = dek.cipher;
    header.dek_id = dek.id;
    header.nonce =
        crypto::SecureRandomString(crypto::CipherNonceSize(dek.cipher));
    s = base->Append(EncodeShieldFileHeader(header));
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::BlockAuthenticator> auth;
    if (header.version >= kShieldFormatVersionAuth) {
      auth = crypto::NewBlockAuthenticator(dek.cipher, dek.key, header.nonce);
      if (auth == nullptr) {
        return Status::InvalidArgument("cannot build block authenticator");
      }
      auth->SetStatisticsSink(stats_);
    }

    size_t buffer_size = 0;
    ThreadPool* pool = nullptr;
    int threads = 1;
    switch (kind) {
      case FileKind::kWal:
        // The application-managed WAL encryption buffer (Section 5.3).
        buffer_size = opts_.wal_buffer_size;
        break;
      case FileKind::kSst:
        // Chunked, optionally multi-threaded encryption (Section 5.2).
        buffer_size = opts_.sst_chunk_size;
        pool = encryption_pool_;
        threads = opts_.encryption_threads;
        break;
      case FileKind::kManifest:
      case FileKind::kOther:
        buffer_size = 0;  // infrequent appends; encrypt directly
        break;
    }
    *out = std::make_unique<ShieldWritableFile>(
        std::move(base), std::move(dek), std::move(header.nonce), buffer_size,
        pool, threads, std::move(auth), kind, stats_,
        kind == FileKind::kWal ? opts_.wal_pipeline_window : 0);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* out) override {
    std::unique_ptr<RandomAccessFile> base;
    Status s = env_->NewRandomAccessFile(fname, &base);
    if (!s.ok()) {
      return s;
    }
    char scratch[kShieldHeaderSize];
    Slice header_data;
    s = ReadHeaderRetrying(base.get(), &header_data, scratch);
    if (!s.ok()) {
      return s;
    }
    ShieldFileHeader header;
    if (!ParseShieldFileHeader(header_data, &header).ok() &&
        !opts_.encrypt_wal && !HasShieldMagic(header_data)) {
      // Plaintext file written under the evaluation-only knob.
      *out = std::move(base);
      return Status::OK();
    }
    std::unique_ptr<crypto::StreamCipher> cipher;
    std::unique_ptr<crypto::BlockAuthenticator> auth;
    s = OpenCrypto(header_data, &cipher, &auth);
    if (!s.ok()) {
      return s;
    }
    *out = std::make_unique<ShieldRandomAccessFile>(
        std::move(base), std::move(cipher), std::move(auth), encryption_pool_,
        opts_.encryption_threads, stats_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* out) override {
    std::unique_ptr<SequentialFile> base;
    Status s = env_->NewSequentialFile(fname, &base);
    if (!s.ok()) {
      return s;
    }
    // Read exactly the header, leaving the file positioned at the
    // payload.
    char scratch[kShieldHeaderSize];
    std::string header_data;
    while (header_data.size() < kShieldHeaderSize) {
      Slice got;
      s = base->Read(kShieldHeaderSize - header_data.size(), &got, scratch);
      if (!s.ok()) {
        return s;
      }
      if (got.empty()) {
        if (!opts_.encrypt_wal) {
          return env_->NewSequentialFile(fname, out);  // short plaintext file
        }
        return Status::Corruption("SHIELD file shorter than header", fname);
      }
      header_data.append(got.data(), got.size());
    }
    ShieldFileHeader header;
    if (!ParseShieldFileHeader(header_data, &header).ok() &&
        !opts_.encrypt_wal && !HasShieldMagic(Slice(header_data))) {
      // Plaintext file (evaluation-only knob): reopen from the start.
      return env_->NewSequentialFile(fname, out);
    }
    std::unique_ptr<crypto::StreamCipher> cipher;
    std::unique_ptr<crypto::BlockAuthenticator> auth;
    s = OpenCrypto(header_data, &cipher, &auth);
    if (!s.ok()) {
      return s;
    }
    *out = std::make_unique<ShieldSequentialFile>(
        std::move(base), std::move(cipher), std::move(auth), stats_);
    return Status::OK();
  }

  Status DeleteFile(const std::string& fname) override {
    // Recover the DEK-ID from the header so the key dies with the
    // file.
    ShieldFileHeader header;
    Status hs = ReadShieldFileHeader(env_, fname, &header);
    Status s = env_->RemoveFile(fname);
    if (s.ok() && hs.ok()) {
      dek_manager_->ForgetDek(header.dek_id);
    }
    return s;
  }

  Env* env() const override { return env_; }

 private:
  // Resolves the DEK and builds the cipher plus, for version >= 2
  // files, the block authenticator. The header version decides tag
  // presence so version 1 files written before authentication existed
  // keep reading cleanly.
  Status OpenCrypto(const Slice& header_data,
                    std::unique_ptr<crypto::StreamCipher>* cipher,
                    std::unique_ptr<crypto::BlockAuthenticator>* auth) {
    ShieldFileHeader header;
    Status s = ParseShieldFileHeader(header_data, &header);
    if (!s.ok()) {
      return s;
    }
    Dek dek;
    s = dek_manager_->ResolveDek(header.dek_id, &dek);
    if (!s.ok()) {
      return s;
    }
    if (dek.cipher != header.cipher) {
      return Status::Corruption("DEK cipher mismatch with file header");
    }
    if (header.version >= kShieldFormatVersionAuth) {
      *auth = crypto::NewBlockAuthenticator(dek.cipher, dek.key, header.nonce);
      if (*auth == nullptr) {
        return Status::InvalidArgument("cannot build block authenticator");
      }
      (*auth)->SetStatisticsSink(stats_);
    }
    return crypto::NewStreamCipher(dek.cipher, dek.key, header.nonce, cipher);
  }

  Env* env_;
  DekManager* dek_manager_;
  const EncryptionOptions opts_;
  ThreadPool* encryption_pool_;
  Statistics* stats_;
};

}  // namespace

std::unique_ptr<DataFileFactory> NewPlainFileFactory(Env* env) {
  return std::make_unique<PlainFileFactory>(env);
}

std::unique_ptr<DataFileFactory> NewShieldFileFactory(
    Env* env, DekManager* dek_manager, const EncryptionOptions& opts,
    ThreadPool* encryption_pool, Statistics* stats) {
  return std::make_unique<ShieldFileFactory>(env, dek_manager, opts,
                                             encryption_pool, stats);
}

}  // namespace shield
