#ifndef SHIELD_SHIELD_DEK_MANAGER_H_
#define SHIELD_SHIELD_DEK_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "kds/kds.h"
#include "kds/secure_dek_cache.h"
#include "util/event_logger.h"
#include "util/statistics.h"

namespace shield {

class Env;

/// Per-instance DEK resolution chain (paper Section 5.2): DEKs live in
/// memory while the instance runs; on restart they are resolved from
/// the secure on-disk cache (if configured) before falling back to a
/// KDS round-trip. Newly created and newly fetched DEKs are written
/// through to the secure cache. Thread safe.
class DekManager {
 public:
  /// `kds` must outlive the manager. `secure_cache` may be null.
  /// `stats` (optional, must outlive the manager) receives kds.* and
  /// shield.dek.* tickers plus the KDS latency histogram.
  DekManager(Kds* kds, std::string server_id, SecureDekCache* secure_cache,
             Statistics* stats = nullptr);

  /// Optional: KDS lookup outcomes are emitted as kds_lookup JSON
  /// events (op, outcome, attempts, micros — never key material).
  /// `event_logger` is not owned and must outlive the manager.
  void SetEventLogger(EventLogger* event_logger) {
    event_logger_ = event_logger;
  }

  /// Requests a brand-new DEK from the KDS (one per file created).
  Status CreateDek(crypto::CipherKind kind, Dek* out);

  /// Resolves a DEK by id: memory -> secure cache -> KDS.
  Status ResolveDek(const DekId& id, Dek* out);

  /// Drops a DEK everywhere (memory, secure cache, KDS). Called when
  /// the file it protected is deleted; after this the old key can no
  /// longer decrypt anything (completing rotation). If the KDS delete
  /// fails transiently even after retries, the id is moved to the
  /// pending-delete queue (persistent when configured) and OK is
  /// returned — the key WILL be destroyed by a later drain instead of
  /// leaking in the KDS forever.
  Status ForgetDek(const DekId& id);

  /// Re-wraps `id` for `target_server_id` (backup/migration): the KDS
  /// issues a new id with the same key material, provisioned to the
  /// target. The result is deliberately NOT cached here — it belongs
  /// to the target identity, not this server.
  Status RewrapDek(const DekId& id, const std::string& target_server_id,
                   Dek* out);

  /// Registers a DEK this instance obtained out of band — an ingested
  /// external SST's embedded DEK after a rewrap onto OUR identity — in
  /// the memory cache (and secure cache), exactly as if CreateDek had
  /// minted it. Reads of the ingested file then resolve locally, and
  /// age-based rotation sees a fresh key.
  void AdoptDek(const Dek& dek);

  /// Backs the pending-delete queue with `path` (one hex DEK id per
  /// line — ids are public, they sit in plaintext file headers) and
  /// loads ids left over from a previous run. `env` must outlive the
  /// manager. Without this the queue is memory-only.
  Status ConfigurePendingDeletes(Env* env, const std::string& path);

  /// Retries one KDS DeleteDek for every queued id; ids that still
  /// fail transiently stay queued for the next drain. Returns the last
  /// transient error (or OK). Safe to call from any thread.
  Status TryDrainPendingDeletes();

  /// Ids currently awaiting a successful KDS delete.
  uint64_t pending_deletes() const;

  /// Age of a DEK created by this manager, or UINT64_MAX when the
  /// creation time is unknown (created before this process started —
  /// i.e. at least as old as the process, so rotation treats unknown
  /// as infinitely old).
  uint64_t DekAgeMicros(const DekId& id) const;

  /// KDS round-trips performed (creates + fetches + deletes).
  uint64_t kds_requests() const {
    return kds_requests_.load(std::memory_order_relaxed);
  }
  /// Resolutions served from memory or the secure cache.
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Resolutions that had to fall through to a KDS round trip.
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// DEKs dropped from the in-memory cache (ForgetDek on file delete).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// DEKs currently held in memory.
  uint64_t entries() const;

  const std::string& server_id() const { return server_id_; }

 private:
  /// One KDS round trip with retry, latency measurement, ticker /
  /// PerfContext accounting, a kds.rpc trace span and a kds_lookup
  /// event, shared by Create/Resolve/Forget. `op_name` labels the span
  /// and event ("create" / "get" / "delete").
  Status KdsRoundTrip(const char* op_name, const std::function<Status()>& op);

  /// Appends `id` to the pending-delete queue and persists it.
  void EnqueuePendingDelete(const DekId& id);
  /// Rewrites the queue file from pending_. pending_mu_ must be held.
  void PersistPendingLocked();

  Kds* const kds_;
  const std::string server_id_;
  SecureDekCache* const secure_cache_;
  Statistics* const stats_;
  EventLogger* event_logger_ = nullptr;

  std::atomic<uint64_t> kds_requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> evictions_{0};

  mutable std::mutex mu_;
  std::map<DekId, Dek> memory_;
  // Creation time of DEKs created by this manager (for max_dek_age
  // rotation eligibility).
  std::map<DekId, uint64_t> created_micros_;

  mutable std::mutex pending_mu_;
  std::set<DekId> pending_;
  Env* pending_env_ = nullptr;
  std::string pending_path_;
};

}  // namespace shield

#endif  // SHIELD_SHIELD_DEK_MANAGER_H_
