#ifndef SHIELD_SHIELD_DEK_MANAGER_H_
#define SHIELD_SHIELD_DEK_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "kds/kds.h"
#include "kds/secure_dek_cache.h"
#include "util/event_logger.h"
#include "util/statistics.h"

namespace shield {

/// Per-instance DEK resolution chain (paper Section 5.2): DEKs live in
/// memory while the instance runs; on restart they are resolved from
/// the secure on-disk cache (if configured) before falling back to a
/// KDS round-trip. Newly created and newly fetched DEKs are written
/// through to the secure cache. Thread safe.
class DekManager {
 public:
  /// `kds` must outlive the manager. `secure_cache` may be null.
  /// `stats` (optional, must outlive the manager) receives kds.* and
  /// shield.dek.* tickers plus the KDS latency histogram.
  DekManager(Kds* kds, std::string server_id, SecureDekCache* secure_cache,
             Statistics* stats = nullptr);

  /// Optional: KDS lookup outcomes are emitted as kds_lookup JSON
  /// events (op, outcome, attempts, micros — never key material).
  /// `event_logger` is not owned and must outlive the manager.
  void SetEventLogger(EventLogger* event_logger) {
    event_logger_ = event_logger;
  }

  /// Requests a brand-new DEK from the KDS (one per file created).
  Status CreateDek(crypto::CipherKind kind, Dek* out);

  /// Resolves a DEK by id: memory -> secure cache -> KDS.
  Status ResolveDek(const DekId& id, Dek* out);

  /// Drops a DEK everywhere (memory, secure cache, KDS). Called when
  /// the file it protected is deleted; after this the old key can no
  /// longer decrypt anything (completing rotation).
  Status ForgetDek(const DekId& id);

  /// KDS round-trips performed (creates + fetches + deletes).
  uint64_t kds_requests() const {
    return kds_requests_.load(std::memory_order_relaxed);
  }
  /// Resolutions served from memory or the secure cache.
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Resolutions that had to fall through to a KDS round trip.
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// DEKs dropped from the in-memory cache (ForgetDek on file delete).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// DEKs currently held in memory.
  uint64_t entries() const;

  const std::string& server_id() const { return server_id_; }

 private:
  /// One KDS round trip with retry, latency measurement, ticker /
  /// PerfContext accounting, a kds.rpc trace span and a kds_lookup
  /// event, shared by Create/Resolve/Forget. `op_name` labels the span
  /// and event ("create" / "get" / "delete").
  Status KdsRoundTrip(const char* op_name, const std::function<Status()>& op);

  Kds* const kds_;
  const std::string server_id_;
  SecureDekCache* const secure_cache_;
  Statistics* const stats_;
  EventLogger* event_logger_ = nullptr;

  std::atomic<uint64_t> kds_requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> evictions_{0};

  mutable std::mutex mu_;
  std::map<DekId, Dek> memory_;
};

}  // namespace shield

#endif  // SHIELD_SHIELD_DEK_MANAGER_H_
