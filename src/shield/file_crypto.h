#ifndef SHIELD_SHIELD_FILE_CRYPTO_H_
#define SHIELD_SHIELD_FILE_CRYPTO_H_

#include <memory>
#include <string>

#include "crypto/cipher.h"
#include "env/env.h"
#include "env/io_stats.h"
#include "kds/dek.h"
#include "lsm/options.h"
#include "shield/dek_manager.h"
#include "util/statistics.h"
#include "util/thread_pool.h"

namespace shield {

/// SHIELD places a 64-byte plaintext header at the start of every data
/// file (WAL, SST, Manifest):
///   magic(8) | version(1) | cipher(1) | nonce_len(1) | reserved(1) |
///   dek_id(16) | nonce(<=16) | zero padding
/// The DEK-ID is deliberately plaintext: it is the paper's
/// metadata-embedded identifier that lets any authorized server resolve
/// the DEK from the KDS without central file->key mapping
/// (Section 5.4). All bytes after the header are encrypted with the
/// per-file DEK at logical offsets starting from zero.
///
/// Version negotiation: version 1 files carry CTR ciphertext only;
/// version 2 files additionally authenticate every SST block / log
/// record with a truncated HMAC-SHA256 tag (crypto/block_auth.h).
/// Readers accept both versions — the header version, not a config
/// knob, decides whether tags are expected, so pre-tag files stay
/// readable forever.
constexpr uint64_t kShieldHeaderSize = 64;

/// CTR encryption only (pre-authentication format).
constexpr uint8_t kShieldFormatVersionBase = 1;
/// CTR encryption + per-block HMAC authentication tags.
constexpr uint8_t kShieldFormatVersionAuth = 2;

struct ShieldFileHeader {
  uint8_t version = kShieldFormatVersionBase;
  crypto::CipherKind cipher = crypto::CipherKind::kAes128Ctr;
  DekId dek_id;
  std::string nonce;
};

std::string EncodeShieldFileHeader(const ShieldFileHeader& header);
Status ParseShieldFileHeader(const Slice& data, ShieldFileHeader* header);

/// True when `data` begins with the SHIELD file magic. Does NOT
/// validate the rest of the header: a magic-bearing file that fails
/// ParseShieldFileHeader is corrupt, not plaintext.
bool LooksLikeShieldFile(const Slice& data);

/// Reads and parses the header of an on-disk SHIELD file.
Status ReadShieldFileHeader(Env* env, const std::string& fname,
                            ShieldFileHeader* header);

/// Creates data files for the LSM engine, applying the configured
/// encryption. All readers/writers expose the *logical* (plaintext)
/// byte space; encryption headers and transforms are invisible above
/// this interface.
class DataFileFactory {
 public:
  virtual ~DataFileFactory() = default;

  /// `kind` selects per-kind encryption behaviour (WAL buffering vs
  /// SST chunked encryption).
  virtual Status NewWritableFile(const std::string& fname, FileKind kind,
                                 std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* out) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* out) = 0;

  /// Deletes a data file, releasing any encryption state bound to it
  /// (SHIELD destroys the file's DEK — the compromise window for a
  /// rotated-away key ends here).
  virtual Status DeleteFile(const std::string& fname) = 0;

  virtual Env* env() const = 0;
};

/// Factory for unencrypted (or EncFS: transparently encrypted by the
/// Env itself) deployments.
std::unique_ptr<DataFileFactory> NewPlainFileFactory(Env* env);

/// Factory implementing SHIELD's embedded encryption. `dek_manager`
/// must outlive the factory; `encryption_pool` may be null when
/// opts.encryption_threads <= 1. `stats` (optional, must outlive the
/// factory and every file it creates) receives crypto.* and shield.*
/// tickers for all encrypt/decrypt traffic.
std::unique_ptr<DataFileFactory> NewShieldFileFactory(
    Env* env, DekManager* dek_manager, const EncryptionOptions& opts,
    ThreadPool* encryption_pool, Statistics* stats = nullptr);

}  // namespace shield

#endif  // SHIELD_SHIELD_FILE_CRYPTO_H_
