#include "shield/chunk_encryptor.h"

#include <condition_variable>
#include <mutex>

#include "util/trace.h"

namespace shield {

ChunkEncryptor::ChunkEncryptor(const crypto::StreamCipher* cipher,
                               ThreadPool* pool, int threads,
                               Statistics* stats)
    : cipher_(cipher), pool_(pool), threads_(threads), stats_(stats) {}

Status ChunkEncryptor::Encrypt(uint64_t offset, char* data, size_t n) const {
  TraceSpan chunk_span(SpanType::kChunkEncrypt);
  chunk_span.SetArgs(offset, n);
  if (pool_ == nullptr || threads_ <= 1 || n < 2 * kMinShardBytes) {
    RecordTick(stats_, Tickers::kShieldChunkEncryptShards, 1);
    Status s = cipher_->CryptAt(offset, data, n);
    chunk_span.MarkStatus(s);
    return s;
  }

  size_t shards = static_cast<size_t>(threads_);
  if (n / shards < kMinShardBytes) {
    shards = n / kMinShardBytes;
  }
  if (shards < 1) shards = 1;
  const size_t shard_size = (n + shards - 1) / shards;
  // Ceil rounding can make the requested shard count overshoot the
  // buffer (e.g. n = k*shard_size with shards > k): recompute the
  // number of non-empty shards so no task sees begin >= n, where
  // `n - begin` would underflow.
  shards = (n + shard_size - 1) / shard_size;
  RecordTick(stats_, Tickers::kShieldChunkEncryptShards, shards);
  chunk_span.SetAux(static_cast<uint8_t>(std::min<size_t>(shards, 255)));

  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = shards;
  Status first_error;

  // Pool threads have their own (empty) span stacks, so the shard
  // spans carry the chunk span's id explicitly to keep the tree
  // connected across the thread hop.
  const uint64_t parent_span = chunk_span.id();
  for (size_t i = 0; i < shards; i++) {
    const size_t begin = i * shard_size;
    const size_t len = std::min(shard_size, n - begin);
    pool_->Schedule([this, offset, data, begin, len, parent_span, &mu, &cv,
                     &remaining, &first_error] {
      TraceSpan shard_span(SpanType::kChunkShard, parent_span, Slice());
      shard_span.SetArgs(offset + begin, len);
      Status s = cipher_->CryptAt(offset + begin, data + begin, len);
      shard_span.MarkStatus(s);
      std::lock_guard<std::mutex> lock(mu);
      if (!s.ok() && first_error.ok()) {
        first_error = s;
      }
      if (--remaining == 0) {
        cv.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
  chunk_span.MarkStatus(first_error);
  return first_error;
}

}  // namespace shield
