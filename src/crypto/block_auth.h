#ifndef SHIELD_CRYPTO_BLOCK_AUTH_H_
#define SHIELD_CRYPTO_BLOCK_AUTH_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>

#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "util/slice.h"
#include "util/statistics.h"

namespace shield {
namespace crypto {

/// Truncated HMAC-SHA256 tag length appended after each authenticated
/// block (SST blocks) or record (WAL/manifest). 128 bits keeps forgery
/// probability negligible while costing less than 0.4% of a 4 KiB block.
constexpr size_t kBlockAuthTagSize = 16;

/// Derives the per-file MAC key for block authentication from the file
/// encryption key. Binding the salt to the file nonce gives every file
/// an independent MAC key even when DEKs are reused (EncFS instance
/// key), and the versioned info string domain-separates the MAC key
/// from the encryption keystream.
std::string DeriveBlockMacKey(const Slice& file_key, const Slice& file_nonce);

/// Computes/verifies encrypt-then-MAC tags over the *ciphertext* image
/// of file blocks.
///
/// The SHIELD/EncFS layering hands sst_builder and log_writer logical
/// plaintext — encryption happens transparently in the outermost file
/// wrapper. To still MAC ciphertext (so a tag mismatch is detected
/// before any decrypted byte is trusted), the authenticator owns its
/// own instance of the file's deterministic, offset-seekable CTR
/// cipher: given plaintext and its logical offset it recomputes the
/// exact ciphertext bytes that land on disk and MACs those. Readers
/// hand it the same plaintext the file wrapper just decrypted, which
/// round-trips to the on-disk ciphertext.
///
/// tag = HMAC-SHA256(mac_key, LE64(offset) || ciphertext)[0:16]
///
/// Including the offset in the MAC input pins every block to its
/// position, defeating block transplants within and across files.
///
/// Thread-compatible: all methods are const and the cipher is seekable,
/// so concurrent compute/verify calls are safe.
class BlockAuthenticator {
 public:
  BlockAuthenticator(std::string mac_key, std::unique_ptr<StreamCipher> cipher);
  ~BlockAuthenticator();

  BlockAuthenticator(const BlockAuthenticator&) = delete;
  BlockAuthenticator& operator=(const BlockAuthenticator&) = delete;

  /// Computes the tag for plaintext `parts` (concatenated) that the
  /// file wrapper will encrypt starting at logical byte `offset`.
  /// Writes kBlockAuthTagSize bytes to `tag`. Fails (propagating the
  /// cipher error) when the offset range is not addressable by the
  /// underlying cipher, e.g. past ChaCha20's counter limit.
  Status ComputeTag(uint64_t offset, std::initializer_list<Slice> parts,
                    char* tag) const;

  /// Verifies, in constant time, that `tag` matches plaintext `data`
  /// decrypted from logical byte `offset`. A cipher failure verifies
  /// as false: data at an unaddressable offset cannot be trusted.
  bool VerifyTag(uint64_t offset, const Slice& data, const Slice& tag) const;

  /// Mirrors subsequent tag computations/verifications into the
  /// crypto.hmac.* tickers. `stats` must outlive the authenticator (or
  /// a later SetStatisticsSink(nullptr)).
  void SetStatisticsSink(Statistics* stats) {
    stats_.store(stats, std::memory_order_relaxed);
  }

 private:
  std::string mac_key_;
  HmacSha256Keyed mac_;  // key schedule hoisted out of the per-tag path
  std::unique_ptr<StreamCipher> cipher_;
  std::atomic<Statistics*> stats_{nullptr};
};

/// Convenience: derives the MAC key and builds the authenticator's
/// private cipher instance in one step. Returns nullptr on cipher
/// construction failure (caller treats the file as unauthenticated and
/// surfaces the error separately if needed).
std::unique_ptr<BlockAuthenticator> NewBlockAuthenticator(
    CipherKind kind, const Slice& file_key, const Slice& file_nonce);

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_BLOCK_AUTH_H_
