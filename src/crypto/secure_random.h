#ifndef SHIELD_CRYPTO_SECURE_RANDOM_H_
#define SHIELD_CRYPTO_SECURE_RANDOM_H_

#include <cstddef>
#include <string>

namespace shield {
namespace crypto {

/// Fills `out` with `n` bytes from the OS CSPRNG (/dev/urandom).
/// Crashes the process if the entropy source is unavailable: key
/// material must never silently degrade to a weak generator.
void SecureRandomBytes(void* out, size_t n);

/// Convenience: returns `n` random bytes as a string.
std::string SecureRandomString(size_t n);

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_SECURE_RANDOM_H_
