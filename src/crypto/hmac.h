#ifndef SHIELD_CRYPTO_HMAC_H_
#define SHIELD_CRYPTO_HMAC_H_

#include <string>

#include "util/slice.h"

namespace shield {
namespace crypto {

/// HMAC-SHA256 (RFC 2104). Returns a 32-byte MAC.
std::string HmacSha256(const Slice& key, const Slice& message);

/// Constant-time comparison of two MACs. Returns true iff equal.
bool ConstantTimeEqual(const Slice& a, const Slice& b);

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_HMAC_H_
