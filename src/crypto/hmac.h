#ifndef SHIELD_CRYPTO_HMAC_H_
#define SHIELD_CRYPTO_HMAC_H_

#include <string>

#include "crypto/sha256.h"
#include "util/slice.h"

namespace shield {
namespace crypto {

/// HMAC-SHA256 (RFC 2104). Returns a 32-byte MAC.
std::string HmacSha256(const Slice& key, const Slice& message);

/// Constant-time comparison of two MACs. Returns true iff equal.
bool ConstantTimeEqual(const Slice& a, const Slice& b);

/// HMAC-SHA256 with the key schedule hoisted out of the per-message
/// path. Keying HMAC costs two SHA-256 blocks (ipad and opad); on the
/// WAL write path every record pays that on top of hashing a message
/// that is often shorter than one block. This class compresses the pad
/// blocks once at construction and hands out copies of the midstates,
/// so a tag over a short message costs ~2 compressions instead of ~4.
///
/// Thread-compatible after construction: Begin()/Finish() only read
/// the cached midstates.
class HmacSha256Keyed {
 public:
  explicit HmacSha256Keyed(const Slice& key);

  /// Returns an inner hash already primed with key^ipad. Stream the
  /// message into it with Update(), then pass it to Finish().
  Sha256 Begin() const { return inner_; }

  /// Finalizes `inner` and completes the outer hash, writing the
  /// 32-byte MAC. `inner` must not be reused afterwards.
  void Finish(Sha256* inner, uint8_t mac[Sha256::kDigestSize]) const;

 private:
  Sha256 inner_;  // midstate after the key^ipad block
  Sha256 outer_;  // midstate after the key^opad block
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_HMAC_H_
