#ifndef SHIELD_CRYPTO_SHA256_H_
#define SHIELD_CRYPTO_SHA256_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/slice.h"

namespace shield {
namespace crypto {

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const void* data, size_t n);
  void Update(const Slice& data) { Update(data.data(), data.size()); }

  /// Finalizes into a 32-byte digest. The object must not be reused
  /// afterwards (construct a fresh one).
  void Final(uint8_t digest[kDigestSize]);

  /// One-shot convenience: returns the 32-byte digest of `data`.
  static std::string Digest(const Slice& data);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t h_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_SHA256_H_
