#ifndef SHIELD_CRYPTO_CIPHER_H_
#define SHIELD_CRYPTO_CIPHER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace shield {
namespace crypto {

/// Stream cipher algorithms supported for file encryption. Values are
/// stable: they are persisted in file headers.
enum class CipherKind : uint8_t {
  kAes128Ctr = 1,
  kAes256Ctr = 2,
  kChaCha20 = 3,
};

const char* CipherKindName(CipherKind kind);

/// Key length in bytes required by a cipher kind.
size_t CipherKeySize(CipherKind kind);

/// Nonce length in bytes required by a cipher kind (16 for AES-CTR,
/// 12 for ChaCha20).
size_t CipherNonceSize(CipherKind kind);

/// An offset-addressable stream cipher: XORs data with a keystream
/// positioned at an absolute byte offset in the (conceptual) stream.
/// Because CTR-style keystreams are seekable, the same call performs
/// both encryption and decryption, and random-access reads (SST block
/// fetches) can decrypt any range without touching the rest of the
/// file.
///
/// Thread-compatible: CryptAt is const and carries no mutable state, so
/// concurrent calls on one instance are safe (used by SHIELD's
/// multi-threaded chunk encryption).
class StreamCipher {
 public:
  virtual ~StreamCipher() = default;

  /// XORs `n` bytes at `data`, in place, with the keystream starting at
  /// absolute byte `offset`. Returns InvalidArgument when the range is
  /// not addressable by the cipher's counter (e.g. ChaCha20's 32-bit
  /// RFC 7539 block counter wraps at 256 GiB); data is untouched in
  /// that case, so a failed call never half-encrypts a buffer.
  virtual Status CryptAt(uint64_t offset, char* data, size_t n) const = 0;

  virtual CipherKind kind() const = 0;
};

/// Creates a stream cipher. `key` must be CipherKeySize(kind) bytes and
/// `nonce` CipherNonceSize(kind) bytes.
Status NewStreamCipher(CipherKind kind, const Slice& key, const Slice& nonce,
                       std::unique_ptr<StreamCipher>* out);

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_CIPHER_H_
