#include "crypto/keystream_prefetcher.h"

#include <algorithm>
#include <cstring>

#include "util/clock.h"
#include "util/perf_context.h"

namespace shield {
namespace crypto {

Status KeystreamPrefetcher::Create(CipherKind kind, const std::string& key,
                                   const std::string& nonce, size_t window,
                                   Statistics* stats,
                                   std::unique_ptr<KeystreamPrefetcher>* out) {
  out->reset();
  if (window == 0) {
    return Status::InvalidArgument("keystream window must be non-zero");
  }
  std::unique_ptr<StreamCipher> cipher;
  Status s = NewStreamCipher(kind, key, nonce, &cipher);
  if (!s.ok()) {
    return s;
  }
  out->reset(new KeystreamPrefetcher(std::move(cipher), window, stats));
  return Status::OK();
}

KeystreamPrefetcher::KeystreamPrefetcher(std::unique_ptr<StreamCipher> cipher,
                                         size_t window, Statistics* stats)
    : cipher_(std::move(cipher)), window_(window), stats_(stats) {
  producer_ = std::thread([this] { ProducerLoop(); });
}

KeystreamPrefetcher::~KeystreamPrefetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  space_cv_.notify_all();
  produced_cv_.notify_all();
  producer_.join();
}

void KeystreamPrefetcher::ProducerLoop() {
  std::string chunk;
  for (;;) {
    uint64_t produce_at;
    size_t produce_n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      space_cv_.wait(lock, [&] {
        return stopping_ || !error_.ok() ||
               buf_start_ + buf_.size() <
                   std::max(watermark_ + 2 * window_, requested_end_);
      });
      if (stopping_ || !error_.ok()) {
        return;
      }
      const uint64_t produced_end = buf_start_ + buf_.size();
      const uint64_t target =
          std::max(watermark_ + 2 * window_, requested_end_);
      produce_at = produced_end;
      produce_n = static_cast<size_t>(
          std::min<uint64_t>(window_, target - produced_end));
    }
    // Generate keystream outside the lock: encrypting zeros yields the
    // raw keystream, so the consumer's XOR reproduces the inline
    // cipher's ciphertext exactly.
    chunk.assign(produce_n, '\0');
    Status s = cipher_->CryptAt(produce_at, chunk.data(), produce_n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      if (!s.ok()) {
        // E.g. the ChaCha20 offset ceiling. Surface on the next Crypt;
        // everything already produced stays consumable.
        error_ = s;
        produced_cv_.notify_all();
        return;
      }
      // Advance() may have trimmed the front meanwhile, but trimming
      // moves buf_start_ forward by exactly the bytes it removes, so
      // buf_start_ + buf_.size() still equals produce_at.
      buf_.append(chunk);
      RecordTick(stats_, Tickers::kShieldWalKeystreamBytes, produce_n);
      produced_cv_.notify_all();
    }
  }
}

Status KeystreamPrefetcher::Crypt(uint64_t offset, char* data, size_t n) {
  if (n == 0) {
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (offset < buf_start_) {
    return Status::InvalidArgument("keystream range already discarded");
  }
  const uint64_t end = offset + n;
  if (buf_start_ + buf_.size() < end) {
    // A batch group larger than both slots: raise the production
    // target past the usual two-window cap and wait it out.
    requested_end_ = std::max(requested_end_, end);
    const uint64_t t0 = NowMicros();
    while (buf_start_ + buf_.size() < end && error_.ok() && !stopping_) {
      space_cv_.notify_all();
      produced_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
    const uint64_t waited = NowMicros() - t0;
    stall_micros_ += waited;
    RecordTick(stats_, Tickers::kLsmWalPipelineStallMicros, waited);
    PerfAdd(&PerfContext::wal_keystream_stall_micros, waited);
  }
  if (buf_start_ + buf_.size() < end) {
    return !error_.ok() ? error_
                        : Status::IOError("keystream prefetcher stopped");
  }
  const char* ks = buf_.data() + (offset - buf_start_);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word, kword;
    std::memcpy(&word, data + i, 8);
    std::memcpy(&kword, ks + i, 8);
    word ^= kword;
    std::memcpy(data + i, &word, 8);
  }
  for (; i < n; i++) {
    data[i] = static_cast<char>(data[i] ^ ks[i]);
  }
  return Status::OK();
}

void KeystreamPrefetcher::Advance(uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset <= watermark_) {
    return;
  }
  watermark_ = offset;
  // Trim lazily: erasing the buffer front memmoves everything behind
  // it, so pay that once per window of consumed keystream instead of
  // once per record (WAL records are a few hundred bytes; per-record
  // trims of a 2-window buffer dwarfed the cipher work they saved).
  // Until the trim, buf_ covers [buf_start_, watermark_ + lookahead),
  // at most 3 windows.
  if (watermark_ >= buf_start_ + window_) {
    const size_t drop = static_cast<size_t>(
        std::min<uint64_t>(watermark_ - buf_start_, buf_.size()));
    buf_.erase(0, drop);
    buf_start_ += drop;
    space_cv_.notify_one();
  } else if (buf_start_ + buf_.size() < watermark_ + window_) {
    // Running low ahead of the watermark; top the producer up early
    // rather than waking it for every record.
    space_cv_.notify_one();
  }
}

uint64_t KeystreamPrefetcher::stall_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_micros_;
}

}  // namespace crypto
}  // namespace shield
