#ifndef SHIELD_CRYPTO_CTR_STREAM_H_
#define SHIELD_CRYPTO_CTR_STREAM_H_

#include <cstdint>
#include <memory>

#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/cipher.h"
#include "util/slice.h"
#include "util/status.h"

namespace shield {
namespace crypto {

/// AES in CTR mode (NIST SP 800-38A). The 16-byte nonce is the initial
/// counter block; byte `offset` of the stream uses counter block
/// nonce + offset/16 (128-bit big-endian addition).
class AesCtrCipher : public StreamCipher {
 public:
  Status Init(CipherKind kind, const Slice& key, const Slice& nonce);

  Status CryptAt(uint64_t offset, char* data, size_t n) const override;
  CipherKind kind() const override { return kind_; }

 private:
  void CounterBlock(uint64_t block_index, uint8_t out[16]) const;

  Aes aes_;
  uint8_t nonce_[16] = {};
  CipherKind kind_ = CipherKind::kAes128Ctr;
};

/// ChaCha20 as an offset-addressable stream: byte `offset` falls in
/// 64-byte keystream block offset/64, with the RFC 7539 block counter.
/// The counter is 32 bits, so the stream is only addressable below
/// 2^32 blocks (256 GiB); CryptAt rejects ranges beyond that rather
/// than wrapping and reusing keystream.
class ChaCha20Cipher : public StreamCipher {
 public:
  Status Init(const Slice& key, const Slice& nonce);

  Status CryptAt(uint64_t offset, char* data, size_t n) const override;
  CipherKind kind() const override { return CipherKind::kChaCha20; }

 private:
  ChaCha20 chacha_;
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_CTR_STREAM_H_
