#ifndef SHIELD_CRYPTO_CHACHA20_H_
#define SHIELD_CRYPTO_CHACHA20_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"
#include "util/status.h"

namespace shield {
namespace crypto {

/// ChaCha20 stream cipher (RFC 7539). 32-byte key, 12-byte nonce,
/// 32-bit block counter, 64-byte keystream blocks.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kBlockSize = 64;

  Status Init(const Slice& key, const Slice& nonce);

  /// Writes the 64-byte keystream block for `counter` into `out`.
  void KeystreamBlock(uint32_t counter, uint8_t out[kBlockSize]) const;

 private:
  uint32_t state_[16] = {};
  bool initialized_ = false;
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_CHACHA20_H_
