#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SHIELD_SHA256_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace shield {
namespace crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t RotR(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void ProcessBlocksPortable(uint32_t h_[8], const uint8_t* block,
                           size_t nblocks) {
  while (nblocks-- > 0) {
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
      w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 8) | block[4 * i + 3];
    }
    for (int i = 16; i < 64; i++) {
      const uint32_t s0 =
          RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 =
          RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
    for (int i = 0; i < 64; i++) {
      const uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
    block += Sha256::kBlockSize;
  }
}

#if SHIELD_SHA256_X86_DISPATCH

// SHA-NI compression: each _mm_sha256rnds2_epu32 executes two rounds,
// with the state held in the unusual ABEF/CDGH register split the
// instructions expect. Per-function target attributes keep the rest of
// the build free of -msha so the portable path still runs on older
// machines; the dispatch happens once, below.
__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlocksShaNi(
    uint32_t state[8], const uint8_t* data, size_t nblocks) {
  // Byte shuffle turning the big-endian message words little-endian.
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3.
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuf);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuf);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuf);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuf);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += Sha256::kBlockSize;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool HasShaNi() {
  static const bool has = __builtin_cpu_supports("sha") &&
                          __builtin_cpu_supports("sse4.1") &&
                          __builtin_cpu_supports("ssse3");
  return has;
}

#endif  // SHIELD_SHA256_X86_DISPATCH

inline void ProcessBlocks(uint32_t h[8], const uint8_t* data, size_t nblocks) {
#if SHIELD_SHA256_X86_DISPATCH
  if (HasShaNi()) {
    ProcessBlocksShaNi(h, data, nblocks);
    return;
  }
#endif
  ProcessBlocksPortable(h, data, nblocks);
}

}  // namespace

Sha256::Sha256() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
}

void Sha256::ProcessBlock(const uint8_t block[kBlockSize]) {
  ProcessBlocks(h_, block, 1);
}

void Sha256::Update(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += n;
  if (buffer_len_ > 0) {
    const size_t take = std::min(kBlockSize - buffer_len_, n);
    memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  if (n >= kBlockSize) {
    const size_t blocks = n / kBlockSize;
    ProcessBlocks(h_, p, blocks);
    p += blocks * kBlockSize;
    n -= blocks * kBlockSize;
  }
  if (n > 0) {
    memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

void Sha256::Final(uint8_t digest[kDigestSize]) {
  const uint64_t bit_len = total_len_ * 8;
  // Pad: 0x80, zeros, 64-bit big-endian length.
  const uint8_t pad_byte = 0x80;
  Update(&pad_byte, 1);
  const uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; i++) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);
  for (int i = 0; i < 8; i++) {
    digest[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
}

std::string Sha256::Digest(const Slice& data) {
  Sha256 hasher;
  hasher.Update(data);
  uint8_t digest[kDigestSize];
  hasher.Final(digest);
  return std::string(reinterpret_cast<char*>(digest), kDigestSize);
}

}  // namespace crypto
}  // namespace shield
