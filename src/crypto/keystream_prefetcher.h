#ifndef SHIELD_CRYPTO_KEYSTREAM_PREFETCHER_H_
#define SHIELD_CRYPTO_KEYSTREAM_PREFETCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "crypto/cipher.h"
#include "util/statistics.h"
#include "util/status.h"

namespace shield {
namespace crypto {

/// Precomputes CTR/ChaCha20 keystream ahead of a sequentially-growing
/// file offset so the cipher work for WAL group N overlaps the disk
/// write and Sync() of group N-1 (the SHIELD write-path pipeline).
///
/// CTR-family keystream is a pure function of (key, nonce, offset), so
/// XORing plaintext against a precomputed window yields ciphertext
/// bit-identical to running the cipher inline — the on-disk format is
/// unchanged. A helper thread keeps up to two `window`-sized slots of
/// keystream ahead of the consumed watermark; the consumer XORs
/// against the cache and only advances the watermark once the
/// ciphertext has durably left the process (append success), so a
/// retried append after a transient failure re-reads the same
/// keystream range.
///
/// Threading: exactly one consumer thread (the WAL writer under the
/// group-commit leader lock) plus the internal producer thread.
class KeystreamPrefetcher {
 public:
  /// Fails (returning a null prefetcher) when the cipher cannot be
  /// constructed from (kind, key, nonce); callers fall back to inline
  /// encryption.
  static Status Create(CipherKind kind, const std::string& key,
                       const std::string& nonce, size_t window,
                       Statistics* stats,
                       std::unique_ptr<KeystreamPrefetcher>* out);

  ~KeystreamPrefetcher();

  KeystreamPrefetcher(const KeystreamPrefetcher&) = delete;
  KeystreamPrefetcher& operator=(const KeystreamPrefetcher&) = delete;

  /// XORs data[0..n) with the keystream at absolute logical offset
  /// `offset`. Blocks until the producer has covered the range
  /// (recording the wait in lsm.wal.pipeline_stall_micros and the
  /// calling thread's PerfContext). `offset` must lie at or after the
  /// current watermark — the producer has already discarded everything
  /// below it. Safe to call again for the same range until Advance().
  Status Crypt(uint64_t offset, char* data, size_t n);

  /// Durability watermark: keystream below `offset` is no longer
  /// needed (the ciphertext was appended successfully) and may be
  /// discarded; the producer refills the freed slot in the background.
  void Advance(uint64_t offset);

  /// Cumulative micros Crypt() spent waiting on the producer.
  uint64_t stall_micros() const;

 private:
  KeystreamPrefetcher(std::unique_ptr<StreamCipher> cipher, size_t window,
                      Statistics* stats);

  void ProducerLoop();

  const std::unique_ptr<StreamCipher> cipher_;
  const size_t window_;
  Statistics* const stats_;

  mutable std::mutex mu_;
  std::condition_variable produced_cv_;  // producer -> consumer
  std::condition_variable space_cv_;     // consumer -> producer
  // Contiguous keystream for [buf_start_, buf_start_ + buf_.size()).
  std::string buf_;
  uint64_t buf_start_ = 0;
  // Everything below this offset has been durably appended.
  uint64_t watermark_ = 0;
  // Highest offset a Crypt() call has asked for; lets one oversized
  // batch group push production past the two-window cap.
  uint64_t requested_end_ = 0;
  Status error_;
  bool stopping_ = false;
  uint64_t stall_micros_ = 0;

  std::thread producer_;
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_KEYSTREAM_PREFETCHER_H_
