#include "crypto/chacha20.h"

#include <cstring>

namespace shield {
namespace crypto {

namespace {

inline uint32_t RotL(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = RotL(d, 16);
  c += d;
  b ^= c;
  b = RotL(b, 12);
  a += b;
  d ^= a;
  d = RotL(d, 8);
  c += d;
  b ^= c;
  b = RotL(b, 7);
}

inline uint32_t Load32LE(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, 4);  // little-endian host
  return v;
}

inline void Store32LE(uint8_t* p, uint32_t v) { memcpy(p, &v, 4); }

}  // namespace

Status ChaCha20::Init(const Slice& key, const Slice& nonce) {
  if (key.size() != kKeySize) {
    return Status::InvalidArgument("ChaCha20 key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    return Status::InvalidArgument("ChaCha20 nonce must be 12 bytes");
  }
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  const uint8_t* k = reinterpret_cast<const uint8_t*>(key.data());
  for (int i = 0; i < 8; i++) {
    state_[4 + i] = Load32LE(k + 4 * i);
  }
  state_[12] = 0;  // counter, set per block
  const uint8_t* n = reinterpret_cast<const uint8_t*>(nonce.data());
  state_[13] = Load32LE(n);
  state_[14] = Load32LE(n + 4);
  state_[15] = Load32LE(n + 8);
  initialized_ = true;
  return Status::OK();
}

void ChaCha20::KeystreamBlock(uint32_t counter, uint8_t out[kBlockSize]) const {
  uint32_t x[16];
  memcpy(x, state_, sizeof(x));
  x[12] = counter;
  uint32_t w[16];
  memcpy(w, x, sizeof(w));
  for (int i = 0; i < 10; i++) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; i++) {
    Store32LE(out + 4 * i, w[i] + x[i]);
  }
}

}  // namespace crypto
}  // namespace shield
