#include "crypto/cipher.h"

#include "crypto/ctr_stream.h"

namespace shield {
namespace crypto {

const char* CipherKindName(CipherKind kind) {
  switch (kind) {
    case CipherKind::kAes128Ctr:
      return "AES-128-CTR";
    case CipherKind::kAes256Ctr:
      return "AES-256-CTR";
    case CipherKind::kChaCha20:
      return "ChaCha20";
  }
  return "unknown";
}

size_t CipherKeySize(CipherKind kind) {
  switch (kind) {
    case CipherKind::kAes128Ctr:
      return 16;
    case CipherKind::kAes256Ctr:
      return 32;
    case CipherKind::kChaCha20:
      return 32;
  }
  return 0;
}

size_t CipherNonceSize(CipherKind kind) {
  switch (kind) {
    case CipherKind::kAes128Ctr:
    case CipherKind::kAes256Ctr:
      return 16;
    case CipherKind::kChaCha20:
      return 12;
  }
  return 0;
}

Status NewStreamCipher(CipherKind kind, const Slice& key, const Slice& nonce,
                       std::unique_ptr<StreamCipher>* out) {
  switch (kind) {
    case CipherKind::kAes128Ctr:
    case CipherKind::kAes256Ctr: {
      auto cipher = std::make_unique<AesCtrCipher>();
      Status s = cipher->Init(kind, key, nonce);
      if (!s.ok()) {
        return s;
      }
      *out = std::move(cipher);
      return Status::OK();
    }
    case CipherKind::kChaCha20: {
      auto cipher = std::make_unique<ChaCha20Cipher>();
      Status s = cipher->Init(key, nonce);
      if (!s.ok()) {
        return s;
      }
      *out = std::move(cipher);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown cipher kind");
}

}  // namespace crypto
}  // namespace shield
