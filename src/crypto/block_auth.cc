#include "crypto/block_auth.h"

#include <cstring>

#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "util/coding.h"

namespace shield {
namespace crypto {

namespace {
constexpr char kMacKeyInfo[] = "shield.block-auth.v2";
constexpr size_t kMacKeySize = 32;
}  // namespace

std::string DeriveBlockMacKey(const Slice& file_key, const Slice& file_nonce) {
  return HkdfSha256(file_key, file_nonce,
                    Slice(kMacKeyInfo, sizeof(kMacKeyInfo) - 1), kMacKeySize);
}

BlockAuthenticator::BlockAuthenticator(std::string mac_key,
                                       std::unique_ptr<StreamCipher> cipher)
    : mac_key_(std::move(mac_key)), cipher_(std::move(cipher)) {}

BlockAuthenticator::~BlockAuthenticator() = default;

void BlockAuthenticator::ComputeTag(uint64_t offset,
                                    std::initializer_list<Slice> parts,
                                    char* tag) const {
  std::string msg;
  size_t total = sizeof(uint64_t);
  for (const Slice& part : parts) {
    total += part.size();
  }
  msg.reserve(total);
  msg.resize(sizeof(uint64_t));
  EncodeFixed64(msg.data(), offset);
  for (const Slice& part : parts) {
    msg.append(part.data(), part.size());
  }
  // Re-encrypt the plaintext at its logical offset to recover the
  // ciphertext image; the offset prefix stays plaintext.
  cipher_->CryptAt(offset, msg.data() + sizeof(uint64_t),
                   msg.size() - sizeof(uint64_t));
  const std::string mac = HmacSha256(mac_key_, msg);
  std::memcpy(tag, mac.data(), kBlockAuthTagSize);
}

bool BlockAuthenticator::VerifyTag(uint64_t offset, const Slice& data,
                                   const Slice& tag) const {
  if (tag.size() != kBlockAuthTagSize) {
    return false;
  }
  char expected[kBlockAuthTagSize];
  ComputeTag(offset, {data}, expected);
  return ConstantTimeEqual(Slice(expected, kBlockAuthTagSize), tag);
}

std::unique_ptr<BlockAuthenticator> NewBlockAuthenticator(
    CipherKind kind, const Slice& file_key, const Slice& file_nonce) {
  std::unique_ptr<StreamCipher> cipher;
  if (!NewStreamCipher(kind, file_key, file_nonce, &cipher).ok()) {
    return nullptr;
  }
  return std::make_unique<BlockAuthenticator>(
      DeriveBlockMacKey(file_key, file_nonce), std::move(cipher));
}

}  // namespace crypto
}  // namespace shield
