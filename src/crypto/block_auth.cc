#include "crypto/block_auth.h"

#include <cstring>

#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "util/coding.h"
#include "util/perf_context.h"

namespace shield {
namespace crypto {

namespace {
constexpr char kMacKeyInfo[] = "shield.block-auth.v2";
constexpr size_t kMacKeySize = 32;
}  // namespace

std::string DeriveBlockMacKey(const Slice& file_key, const Slice& file_nonce) {
  return HkdfSha256(file_key, file_nonce,
                    Slice(kMacKeyInfo, sizeof(kMacKeyInfo) - 1), kMacKeySize);
}

BlockAuthenticator::BlockAuthenticator(std::string mac_key,
                                       std::unique_ptr<StreamCipher> cipher)
    : mac_key_(std::move(mac_key)), mac_(mac_key_), cipher_(std::move(cipher)) {}

BlockAuthenticator::~BlockAuthenticator() = default;

Status BlockAuthenticator::ComputeTag(uint64_t offset,
                                      std::initializer_list<Slice> parts,
                                      char* tag) const {
  PerfTimer timer(&GetPerfContext()->hmac_micros);
  Sha256 inner = mac_.Begin();
  char prefix[sizeof(uint64_t)];
  EncodeFixed64(prefix, offset);
  inner.Update(prefix, sizeof(prefix));
  // Re-encrypt the plaintext at its logical offset to recover the
  // ciphertext image, one stack-sized chunk at a time; the offset
  // prefix stays plaintext. Streaming through a fixed chunk avoids
  // allocating a copy of the whole record per tag.
  uint64_t cursor = offset;
  char chunk[4096];
  for (const Slice& part : parts) {
    const char* p = part.data();
    size_t n = part.size();
    while (n > 0) {
      const size_t take = n < sizeof(chunk) ? n : sizeof(chunk);
      std::memcpy(chunk, p, take);
      Status s = cipher_->CryptAt(cursor, chunk, take);
      if (!s.ok()) {
        return s;
      }
      inner.Update(chunk, take);
      cursor += take;
      p += take;
      n -= take;
    }
  }
  uint8_t mac[Sha256::kDigestSize];
  mac_.Finish(&inner, mac);
  std::memcpy(tag, mac, kBlockAuthTagSize);
  RecordTick(stats_.load(std::memory_order_relaxed),
             Tickers::kCryptoHmacComputed, 1);
  PerfAdd(&PerfContext::hmac_compute_count, 1);
  return Status::OK();
}

bool BlockAuthenticator::VerifyTag(uint64_t offset, const Slice& data,
                                   const Slice& tag) const {
  Statistics* stats = stats_.load(std::memory_order_relaxed);
  RecordTick(stats, Tickers::kCryptoHmacVerified, 1);
  PerfAdd(&PerfContext::hmac_verify_count, 1);
  bool ok = false;
  if (tag.size() == kBlockAuthTagSize) {
    char expected[kBlockAuthTagSize];
    if (ComputeTag(offset, {data}, expected).ok()) {
      ok = ConstantTimeEqual(Slice(expected, kBlockAuthTagSize), tag);
    }
  }
  if (!ok) {
    RecordTick(stats, Tickers::kCryptoHmacFailures, 1);
  }
  return ok;
}

std::unique_ptr<BlockAuthenticator> NewBlockAuthenticator(
    CipherKind kind, const Slice& file_key, const Slice& file_nonce) {
  std::unique_ptr<StreamCipher> cipher;
  if (!NewStreamCipher(kind, file_key, file_nonce, &cipher).ok()) {
    return nullptr;
  }
  return std::make_unique<BlockAuthenticator>(
      DeriveBlockMacKey(file_key, file_nonce), std::move(cipher));
}

}  // namespace crypto
}  // namespace shield
