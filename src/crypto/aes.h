#ifndef SHIELD_CRYPTO_AES_H_
#define SHIELD_CRYPTO_AES_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"
#include "util/status.h"

namespace shield {
namespace crypto {

/// AES block cipher (FIPS-197), encryption direction only. The library
/// uses AES exclusively in CTR mode, which never needs the inverse
/// cipher. Supports 128/192/256-bit keys.
///
/// The implementation is a portable 32-bit T-table design (no AES-NI);
/// see DESIGN.md for why a portable cipher preserves the paper's
/// relative-cost phenomena.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  Aes() = default;

  /// Expands the key schedule. `key` must be 16, 24 or 32 bytes.
  Status Init(const Slice& key);

  /// Encrypts exactly one 16-byte block: out = E_k(in). `in` and `out`
  /// may alias.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  bool initialized() const { return rounds_ != 0; }

 private:
  uint32_t round_keys_[60] = {};  // up to 14 rounds + 1, 4 words each
  int rounds_ = 0;
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_AES_H_
