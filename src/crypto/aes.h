#ifndef SHIELD_CRYPTO_AES_H_
#define SHIELD_CRYPTO_AES_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"
#include "util/status.h"

namespace shield {
namespace crypto {

/// AES block cipher (FIPS-197), encryption direction only. The library
/// uses AES exclusively in CTR mode, which never needs the inverse
/// cipher. Supports 128/192/256-bit keys.
///
/// Single blocks go through a portable 32-bit T-table design; bulk
/// multi-block encryption dispatches to AES-NI at runtime when the CPU
/// has it (the paper's OpenSSL baseline is AES-NI), with the T-table
/// loop as the fallback. Both produce identical ciphertext.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  Aes() = default;

  /// Expands the key schedule. `key` must be 16, 24 or 32 bytes.
  Status Init(const Slice& key);

  /// Encrypts exactly one 16-byte block: out = E_k(in). `in` and `out`
  /// may alias.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Encrypts `nblocks` consecutive 16-byte blocks:
  /// out[16*i .. 16*i+15] = E_k(in[16*i .. 16*i+15]). `in` and `out`
  /// may alias exactly. AES-NI when available, else EncryptBlock in a
  /// loop.
  void EncryptBlocks(const uint8_t* in, uint8_t* out,
                     size_t nblocks) const;

  bool initialized() const { return rounds_ != 0; }

 private:
  uint32_t round_keys_[60] = {};  // up to 14 rounds + 1, 4 words each
  // The same schedule as round-key byte strings (what AESENC takes);
  // filled unconditionally by Init so dispatch is per-call.
  alignas(16) uint8_t round_key_bytes_[15 * 16] = {};
  int rounds_ = 0;
};

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_AES_H_
