#include "crypto/ctr_stream.h"

#include <cstring>

namespace shield {
namespace crypto {

Status AesCtrCipher::Init(CipherKind kind, const Slice& key,
                          const Slice& nonce) {
  if (kind != CipherKind::kAes128Ctr && kind != CipherKind::kAes256Ctr) {
    return Status::InvalidArgument("not an AES-CTR cipher kind");
  }
  if (nonce.size() != 16) {
    return Status::InvalidArgument("AES-CTR nonce must be 16 bytes");
  }
  const size_t want = CipherKeySize(kind);
  if (key.size() != want) {
    return Status::InvalidArgument("AES key size mismatch for cipher kind");
  }
  Status s = aes_.Init(key);
  if (!s.ok()) {
    return s;
  }
  memcpy(nonce_, nonce.data(), 16);
  kind_ = kind;
  return Status::OK();
}

void AesCtrCipher::CounterBlock(uint64_t block_index, uint8_t out[16]) const {
  memcpy(out, nonce_, 16);
  // 128-bit big-endian addition of block_index.
  uint64_t carry = block_index;
  for (int i = 15; i >= 0 && carry != 0; i--) {
    const uint64_t sum = static_cast<uint64_t>(out[i]) + (carry & 0xff);
    out[i] = static_cast<uint8_t>(sum);
    carry = (carry >> 8) + (sum >> 8);
  }
}

Status AesCtrCipher::CryptAt(uint64_t offset, char* data, size_t n) const {
  // Batch counter blocks so the block cipher can pipeline them
  // (AES-NI runs several blocks in flight; the portable path just
  // loops). 32 blocks = 512 B of stack keystream per round.
  constexpr size_t kBatchBlocks = 32;
  uint8_t keystream[kBatchBlocks * Aes::kBlockSize];
  uint64_t block = offset / Aes::kBlockSize;
  size_t in_block = offset % Aes::kBlockSize;
  size_t i = 0;
  while (i < n) {
    const size_t want_bytes = in_block + (n - i);
    const size_t nblocks = std::min(
        kBatchBlocks, (want_bytes + Aes::kBlockSize - 1) / Aes::kBlockSize);
    for (size_t b = 0; b < nblocks; b++) {
      CounterBlock(block + b, keystream + b * Aes::kBlockSize);
    }
    aes_.EncryptBlocks(keystream, keystream, nblocks);
    const size_t avail = nblocks * Aes::kBlockSize - in_block;
    const size_t take = std::min(avail, n - i);
    const uint8_t* ks = keystream + in_block;
    size_t j = 0;
    for (; j + 8 <= take; j += 8) {
      uint64_t word, kword;
      memcpy(&word, data + i + j, 8);
      memcpy(&kword, ks + j, 8);
      word ^= kword;
      memcpy(data + i + j, &word, 8);
    }
    for (; j < take; j++) {
      data[i + j] ^= ks[j];
    }
    i += take;
    block += nblocks;
    in_block = 0;
  }
  return Status::OK();
}

Status ChaCha20Cipher::Init(const Slice& key, const Slice& nonce) {
  return chacha_.Init(key, nonce);
}

Status ChaCha20Cipher::CryptAt(uint64_t offset, char* data, size_t n) const {
  if (n == 0) {
    return Status::OK();
  }
  // The RFC 7539 block counter is 32 bits. Reject any range whose last
  // block index does not fit, before touching the buffer: truncating
  // the index would silently restart the keystream at offset 256 GiB
  // and reuse key+nonce+counter tuples — a confidentiality break for
  // CTR mode.
  const uint64_t last_block = (offset + n - 1) / ChaCha20::kBlockSize;
  if (last_block > 0xffffffffull) {
    return Status::InvalidArgument(
        "ChaCha20 block counter overflow: offset range exceeds 2^32 "
        "64-byte blocks (256 GiB)");
  }
  uint8_t keystream[ChaCha20::kBlockSize];
  uint64_t block = offset / ChaCha20::kBlockSize;
  size_t in_block = offset % ChaCha20::kBlockSize;
  size_t i = 0;
  while (i < n) {
    chacha_.KeystreamBlock(static_cast<uint32_t>(block), keystream);
    const size_t take = std::min(ChaCha20::kBlockSize - in_block, n - i);
    for (size_t j = 0; j < take; j++) {
      data[i + j] ^= keystream[in_block + j];
    }
    i += take;
    in_block = 0;
    block++;
  }
  return Status::OK();
}

}  // namespace crypto
}  // namespace shield
