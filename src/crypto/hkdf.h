#ifndef SHIELD_CRYPTO_HKDF_H_
#define SHIELD_CRYPTO_HKDF_H_

#include <cstddef>
#include <string>

#include "util/slice.h"

namespace shield {
namespace crypto {

/// HKDF-SHA256 (RFC 5869). Derives `out_len` bytes of key material from
/// input keying material `ikm`, optional `salt`, and context `info`.
/// Used by the secure DEK cache to derive its encryption and MAC keys
/// from the user passkey, so the passkey itself is never used directly
/// and never persisted.
std::string HkdfSha256(const Slice& ikm, const Slice& salt, const Slice& info,
                       size_t out_len);

}  // namespace crypto
}  // namespace shield

#endif  // SHIELD_CRYPTO_HKDF_H_
