#include "crypto/secure_random.h"

#include <cstdio>
#include <cstdlib>

namespace shield {
namespace crypto {

void SecureRandomBytes(void* out, size_t n) {
  static FILE* urandom = fopen("/dev/urandom", "rb");
  if (urandom == nullptr || fread(out, 1, n, urandom) != n) {
    fprintf(stderr, "FATAL: cannot read /dev/urandom for key material\n");
    abort();
  }
}

std::string SecureRandomString(size_t n) {
  std::string out(n, '\0');
  SecureRandomBytes(out.data(), n);
  return out;
}

}  // namespace crypto
}  // namespace shield
