#include "crypto/aes.h"

#include <array>

namespace shield {
namespace crypto {

namespace {

// The AES S-box (FIPS-197 Figure 7).
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16,
};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

constexpr uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// T-table: Te0[x] = [ 2*S(x), S(x), S(x), 3*S(x) ] packed big-endian;
// the other three tables are byte rotations of Te0.
constexpr std::array<uint32_t, 256> MakeTe0() {
  std::array<uint32_t, 256> t{};
  for (int i = 0; i < 256; i++) {
    const uint8_t s = kSbox[i];
    const uint8_t s2 = Xtime(s);
    const uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
    t[i] = (static_cast<uint32_t>(s2) << 24) | (static_cast<uint32_t>(s) << 16) |
           (static_cast<uint32_t>(s) << 8) | s3;
  }
  return t;
}

constexpr std::array<uint32_t, 256> kTe0 = MakeTe0();

inline uint32_t RotR8(uint32_t x) { return (x >> 8) | (x << 24); }

inline uint32_t Te0(uint8_t i) { return kTe0[i]; }
inline uint32_t Te1(uint8_t i) { return RotR8(kTe0[i]); }
inline uint32_t Te2(uint8_t i) { return RotR8(RotR8(kTe0[i])); }
inline uint32_t Te3(uint8_t i) { return RotR8(RotR8(RotR8(kTe0[i]))); }

inline uint32_t Load32BE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

inline void Store32BE(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline uint32_t SubWord(uint32_t w) {
  return (static_cast<uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
         kSbox[w & 0xff];
}

inline uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SHIELD_AES_X86_DISPATCH 1
#endif

#ifdef SHIELD_AES_X86_DISPATCH

#include <immintrin.h>

namespace {

bool HasAesNi() {
  static const bool has =
      __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
  return has;
}

// Four blocks per iteration: AESENC has multi-cycle latency but
// single-cycle throughput, so independent blocks in flight hide it.
__attribute__((target("aes,sse2"))) void EncryptBlocksAesNi(
    const uint8_t* round_key_bytes, int rounds, const uint8_t* in,
    uint8_t* out, size_t nblocks) {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_key_bytes);
  size_t i = 0;
  for (; i + 4 <= nblocks; i += 4) {
    const uint8_t* p = in + 16 * i;
    __m128i b0 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), rk[0]);
    __m128i b1 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), rk[0]);
    __m128i b2 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), rk[0]);
    __m128i b3 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), rk[0]);
    for (int r = 1; r < rounds; r++) {
      const __m128i k = rk[r];
      b0 = _mm_aesenc_si128(b0, k);
      b1 = _mm_aesenc_si128(b1, k);
      b2 = _mm_aesenc_si128(b2, k);
      b3 = _mm_aesenc_si128(b3, k);
    }
    const __m128i last = rk[rounds];
    b0 = _mm_aesenclast_si128(b0, last);
    b1 = _mm_aesenclast_si128(b1, last);
    b2 = _mm_aesenclast_si128(b2, last);
    b3 = _mm_aesenclast_si128(b3, last);
    uint8_t* q = out + 16 * i;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + 16), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + 32), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + 48), b3);
  }
  for (; i < nblocks; i++) {
    __m128i b = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i)),
        rk[0]);
    for (int r = 1; r < rounds; r++) {
      b = _mm_aesenc_si128(b, rk[r]);
    }
    b = _mm_aesenclast_si128(b, rk[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b);
  }
}

}  // namespace

#endif  // SHIELD_AES_X86_DISPATCH

Status Aes::Init(const Slice& key) {
  int nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16:
      nk = 4;
      rounds_ = 10;
      break;
    case 24:
      nk = 6;
      rounds_ = 12;
      break;
    case 32:
      nk = 8;
      rounds_ = 14;
      break;
    default:
      rounds_ = 0;
      return Status::InvalidArgument("AES key must be 16, 24 or 32 bytes");
  }
  const uint8_t* k = reinterpret_cast<const uint8_t*>(key.data());
  const int total_words = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; i++) {
    round_keys_[i] = Load32BE(k + 4 * i);
  }
  for (int i = nk; i < total_words; i++) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^
             (static_cast<uint32_t>(kRcon[i / nk]) << 24);
    } else if (nk > 6 && (i % nk) == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
  // Round keys in byte order for the AES-NI path (and any caller that
  // wants the schedule as bytes): word i big-endian at bytes 4i..4i+3.
  for (int i = 0; i < total_words; i++) {
    Store32BE(round_key_bytes_ + 4 * i, round_keys_[i]);
  }
  return Status::OK();
}

void Aes::EncryptBlocks(const uint8_t* in, uint8_t* out,
                        size_t nblocks) const {
#ifdef SHIELD_AES_X86_DISPATCH
  if (HasAesNi()) {
    EncryptBlocksAesNi(round_key_bytes_, rounds_, in, out, nblocks);
    return;
  }
#endif
  for (size_t i = 0; i < nblocks; i++) {
    EncryptBlock(in + kBlockSize * i, out + kBlockSize * i);
  }
}

void Aes::EncryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  const uint32_t* rk = round_keys_;
  uint32_t s0 = Load32BE(in) ^ rk[0];
  uint32_t s1 = Load32BE(in + 4) ^ rk[1];
  uint32_t s2 = Load32BE(in + 8) ^ rk[2];
  uint32_t s3 = Load32BE(in + 12) ^ rk[3];

  uint32_t t0, t1, t2, t3;
  rk += 4;
  for (int r = 1; r < rounds_; r++) {
    t0 = Te0((s0 >> 24) & 0xff) ^ Te1((s1 >> 16) & 0xff) ^
         Te2((s2 >> 8) & 0xff) ^ Te3(s3 & 0xff) ^ rk[0];
    t1 = Te0((s1 >> 24) & 0xff) ^ Te1((s2 >> 16) & 0xff) ^
         Te2((s3 >> 8) & 0xff) ^ Te3(s0 & 0xff) ^ rk[1];
    t2 = Te0((s2 >> 24) & 0xff) ^ Te1((s3 >> 16) & 0xff) ^
         Te2((s0 >> 8) & 0xff) ^ Te3(s1 & 0xff) ^ rk[2];
    t3 = Te0((s3 >> 24) & 0xff) ^ Te1((s0 >> 16) & 0xff) ^
         Te2((s1 >> 8) & 0xff) ^ Te3(s2 & 0xff) ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
    rk += 4;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  t0 = (static_cast<uint32_t>(kSbox[(s0 >> 24) & 0xff]) << 24) |
       (static_cast<uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
       kSbox[s3 & 0xff];
  t1 = (static_cast<uint32_t>(kSbox[(s1 >> 24) & 0xff]) << 24) |
       (static_cast<uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
       kSbox[s0 & 0xff];
  t2 = (static_cast<uint32_t>(kSbox[(s2 >> 24) & 0xff]) << 24) |
       (static_cast<uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
       kSbox[s1 & 0xff];
  t3 = (static_cast<uint32_t>(kSbox[(s3 >> 24) & 0xff]) << 24) |
       (static_cast<uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
       (static_cast<uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
       kSbox[s2 & 0xff];

  Store32BE(out, t0 ^ rk[0]);
  Store32BE(out + 4, t1 ^ rk[1]);
  Store32BE(out + 8, t2 ^ rk[2]);
  Store32BE(out + 12, t3 ^ rk[3]);
}

}  // namespace crypto
}  // namespace shield
