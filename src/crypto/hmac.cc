#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha256.h"

namespace shield {
namespace crypto {

HmacSha256Keyed::HmacSha256Keyed(const Slice& key) {
  uint8_t key_block[Sha256::kBlockSize] = {};
  if (key.size() > Sha256::kBlockSize) {
    const std::string hashed = Sha256::Digest(key);
    memcpy(key_block, hashed.data(), hashed.size());
  } else {
    memcpy(key_block, key.data(), key.size());
  }

  uint8_t pad[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; i++) {
    pad[i] = key_block[i] ^ 0x36;
  }
  inner_.Update(pad, sizeof(pad));
  for (size_t i = 0; i < Sha256::kBlockSize; i++) {
    pad[i] = key_block[i] ^ 0x5c;
  }
  outer_.Update(pad, sizeof(pad));
}

void HmacSha256Keyed::Finish(Sha256* inner,
                             uint8_t mac[Sha256::kDigestSize]) const {
  uint8_t inner_digest[Sha256::kDigestSize];
  inner->Final(inner_digest);
  Sha256 outer = outer_;
  outer.Update(inner_digest, sizeof(inner_digest));
  outer.Final(mac);
}

std::string HmacSha256(const Slice& key, const Slice& message) {
  HmacSha256Keyed keyed(key);
  Sha256 inner = keyed.Begin();
  inner.Update(message);
  uint8_t mac[Sha256::kDigestSize];
  keyed.Finish(&inner, mac);
  return std::string(reinterpret_cast<char*>(mac), sizeof(mac));
}

bool ConstantTimeEqual(const Slice& a, const Slice& b) {
  if (a.size() != b.size()) {
    return false;
  }
  unsigned char diff = 0;
  for (size_t i = 0; i < a.size(); i++) {
    diff |= static_cast<unsigned char>(a[i]) ^ static_cast<unsigned char>(b[i]);
  }
  return diff == 0;
}

}  // namespace crypto
}  // namespace shield
