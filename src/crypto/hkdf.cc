#include "crypto/hkdf.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace shield {
namespace crypto {

std::string HkdfSha256(const Slice& ikm, const Slice& salt, const Slice& info,
                       size_t out_len) {
  // Extract.
  std::string default_salt(Sha256::kDigestSize, '\0');
  const Slice effective_salt = salt.empty() ? Slice(default_salt) : salt;
  const std::string prk = HmacSha256(effective_salt, ikm);

  // Expand.
  std::string okm;
  std::string t;
  uint8_t counter = 1;
  while (okm.size() < out_len) {
    std::string input = t;
    input.append(info.data(), info.size());
    input.push_back(static_cast<char>(counter));
    t = HmacSha256(prk, input);
    okm.append(t);
    counter++;
  }
  okm.resize(out_len);
  return okm;
}

}  // namespace crypto
}  // namespace shield
