#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "sim/sim_clock.h"
#include "util/arena.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/perf_context.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shield {
namespace {

// --- Slice -----------------------------------------------------------

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());

  std::string str = "world";
  Slice from_string(str);
  EXPECT_EQ("world", from_string.ToString());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(0, Slice("a").compare(Slice("a")));
  EXPECT_LT(Slice("a").compare(Slice("ab")), 0);
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abc").starts_with(Slice("b")));
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ("cdef", s.ToString());
}

// --- Status ----------------------------------------------------------

TEST(StatusTest, Categories) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ("OK", Status::OK().ToString());

  Status nf = Status::NotFound("key", "missing");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ("NotFound: key: missing", nf.ToString());

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

// --- Coding ----------------------------------------------------------

TEST(CodingTest, Fixed32) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(v, DecodeFixed32(p));
    p += 4;
  }
}

TEST(CodingTest, Fixed64) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += 8;
  }
}

TEST(CodingTest, Varint32) {
  std::string s;
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t v = (i / 32) << (i % 32);
    PutVarint32(&s, v);
  }
  const char* p = s.data();
  const char* limit = p + s.size();
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t expected = (i / 32) << (i % 32);
    uint32_t actual;
    p = GetVarint32Ptr(p, limit, &actual);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(expected, actual);
  }
  EXPECT_EQ(p, limit);
}

TEST(CodingTest, Varint64) {
  std::vector<uint64_t> values = {0, 100, ~0ull, ~0ull - 1};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.push_back(power - 1);
    values.push_back(power);
    values.push_back(power + 1);
  }
  std::string s;
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len < s.size() - 1; len++) {
    EXPECT_EQ(nullptr, GetVarint32Ptr(s.data(), s.data() + len, &result));
  }
  EXPECT_NE(nullptr, GetVarint32Ptr(s.data(), s.data() + s.size(), &result));
  EXPECT_EQ(large_value, result);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice(std::string(1000, 'x')));

  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(1000, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(CodingTest, VarintLength) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xFFFFFFFFull));
  EXPECT_EQ(10, VarintLength(~0ull));
}

// --- CRC32C ----------------------------------------------------------

TEST(Crc32cTest, StandardVectors) {
  // From the CRC32C specification (RFC 3720 appendix / SSE4.2 docs).
  char buf[32];

  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, crc32c::Value(buf, sizeof(buf)));

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, crc32c::Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(i);
  }
  EXPECT_EQ(0x46dd794eu, crc32c::Value(buf, sizeof(buf)));

  EXPECT_EQ(0xe3069283u, crc32c::Value("123456789", 9));
}

TEST(Crc32cTest, Extend) {
  EXPECT_EQ(crc32c::Value("hello world", 11),
            crc32c::Extend(crc32c::Value("hello ", 6), "world", 5));
}

TEST(Crc32cTest, Mask) {
  const uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
  EXPECT_EQ(crc,
            crc32c::Unmask(crc32c::Unmask(crc32c::Mask(crc32c::Mask(crc)))));
}

// --- Random / distributions ------------------------------------------

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RandomTest, UniformInRange) {
  Random rnd(301);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rnd.Uniform(17), 17u);
  }
}

TEST(RandomTest, NextDoubleRange) {
  Random rnd(7);
  for (int i = 0; i < 10000; i++) {
    const double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfianTest, SkewAndRange) {
  const uint64_t n = 1000;
  ZipfianGenerator zipf(n, 0.99, 17);
  std::vector<uint64_t> counts(n, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Rank 0 must dominate, and the head must hold most of the mass.
  EXPECT_GT(counts[0], counts[100]);
  uint64_t head = 0;
  for (int i = 0; i < 100; i++) {
    head += counts[i];
  }
  EXPECT_GT(head, kDraws / 2u);
}

TEST(ZipfianTest, ScrambledStaysInRange) {
  ZipfianGenerator zipf(12345, 0.99, 3);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(zipf.NextScrambled(), 12345u);
  }
}

TEST(ParetoTest, BoundsAndMean) {
  ParetoGenerator pareto(16.0, 1.6, 1024.0, 5);
  double sum = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) {
    const double v = pareto.Next();
    ASSERT_GE(v, 16.0);
    ASSERT_LE(v, 1024.0);
    sum += v;
  }
  const double mean = sum / kDraws;
  // Pareto(16, 1.6) capped at 1 KiB has mean around 35-45.
  EXPECT_GT(mean, 25.0);
  EXPECT_LT(mean, 60.0);
}

// --- Histogram ---------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; v++) {
    h.Add(v);
  }
  EXPECT_EQ(100u, h.Count());
  EXPECT_EQ(1u, h.Min());
  EXPECT_EQ(100u, h.Max());
  EXPECT_NEAR(50.5, h.Average(), 0.01);
  EXPECT_NEAR(50, h.Percentile(50), 10);
  EXPECT_NEAR(99, h.Percentile(99), 10);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(2u, a.Count());
  EXPECT_EQ(10u, a.Min());
  EXPECT_EQ(1000u, a.Max());
}

TEST(HistogramTest, Empty) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Average());
  EXPECT_EQ(0.0, h.Percentile(99));
}

TEST(HistogramTest, ConcurrentAdds) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= 1000; i++) {
        h.Add(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(4000u, h.Count());
}

// --- Arena -------------------------------------------------------------

TEST(ArenaTest, Basic) {
  Arena arena;
  char* p = arena.Allocate(100);
  ASSERT_NE(nullptr, p);
  memset(p, 'x', 100);
  EXPECT_GT(arena.MemoryUsage(), 100u);
}

TEST(ArenaTest, ManyAllocationsAreDistinct) {
  Arena arena;
  Random rnd(301);
  std::vector<std::pair<char*, size_t>> allocated;
  for (int i = 0; i < 1000; i++) {
    const size_t size = 1 + rnd.Uniform(500);
    char* p = arena.Allocate(size);
    memset(p, i % 256, size);
    allocated.push_back({p, size});
  }
  // Verify contents were not clobbered by later allocations.
  for (int i = 0; i < 1000; i++) {
    auto [p, size] = allocated[i];
    for (size_t j = 0; j < size; j++) {
      EXPECT_EQ(static_cast<char>(i % 256), p[j]);
    }
  }
}

TEST(ArenaTest, AlignedAllocation) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    arena.Allocate(1);  // knock alignment off
    char* p = arena.AllocateAligned(8);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) %
                      alignof(std::max_align_t));
  }
}

TEST(ArenaTest, LargeAllocation) {
  Arena arena;
  char* p = arena.Allocate(1 << 20);
  ASSERT_NE(nullptr, p);
  memset(p, 0, 1 << 20);
  EXPECT_GE(arena.MemoryUsage(), 1u << 20);
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolTest, RunsJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; i++) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(100, counter.load());
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, ScheduleFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&] {
    counter.fetch_add(1);
    pool.Schedule([&] { counter.fetch_add(1); });
  });
  // Wait until both jobs have run.
  for (int i = 0; i < 1000 && counter.load() < 2; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.WaitIdle();
  EXPECT_EQ(2, counter.load());
}

TEST(ThreadPoolTest, PerfContextZeroedOnReusedWorker) {
  // Pooled threads outlive the ops they serve: a chunk-decrypt or
  // shard-apply job that charges decrypt_micros must not leak it into
  // the next job scheduled onto the same worker. A 1-thread pool
  // guarantees reuse.
  ThreadPool pool(1);
  pool.Schedule([] {
    GetPerfContext()->decrypt_micros += 1234;
    GetPerfContext()->kds_request_count += 7;
  });
  pool.WaitIdle();
  uint64_t leaked_micros = 99;
  uint64_t leaked_kds = 99;
  pool.Schedule([&] {
    leaked_micros = GetPerfContext()->decrypt_micros;
    leaked_kds = GetPerfContext()->kds_request_count;
  });
  pool.WaitIdle();
  EXPECT_EQ(0u, leaked_micros);
  EXPECT_EQ(0u, leaked_kds);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; i++) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  // All 50 jobs must have run before destruction completed.
  EXPECT_EQ(50, counter.load());
}

// --- RetryPolicy / RunWithRetry -------------------------------------

TEST(RetryTest, JitterComesFromInjectedRandom) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.max_backoff_micros = 100000;
  policy.jitter = 0.5;

  // Same seed, same attempt sequence → identical backoffs; different
  // seed → (with overwhelming probability over 32 draws) different.
  std::vector<uint64_t> a, b, c;
  Random rnd_a(42), rnd_b(42), rnd_c(43);
  for (int attempt = 2; attempt < 34; attempt++) {
    a.push_back(policy.BackoffMicros(attempt, &rnd_a));
    b.push_back(policy.BackoffMicros(attempt, &rnd_b));
    c.push_back(policy.BackoffMicros(attempt, &rnd_c));
  }
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RetryTest, SharedRandomAdvancesAcrossCalls) {
  // One Random threaded through successive RunWithRetry calls keeps
  // advancing (the simulator shares a single jitter source per actor).
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 1;  // negligible real sleep
  policy.jitter = 1.0;

  Random shared(7);
  RetryContext ctx;
  ctx.rnd = &shared;
  const uint64_t before = shared.Next64();
  Random reference(7);
  reference.Next64();

  int attempts = 0;
  Status s = RunWithRetry(
      policy, [&] { return Status::TryAgain("transient"); }, &attempts, ctx);
  EXPECT_TRUE(s.IsTryAgain());
  EXPECT_EQ(3, attempts);
  // Two retries → two jitter draws consumed from the shared source.
  EXPECT_NE(shared.Next64(), reference.Next64());
  (void)before;
}

TEST(RetryTest, DeadlineHonoredAgainstVirtualClock) {
  sim::SimClock clock;
  ScopedClockOverride override(&clock);

  RetryPolicy policy;
  policy.max_attempts = 1000000;  // deadline, not attempts, must stop it
  policy.initial_backoff_micros = 10 * 1000;
  policy.max_backoff_micros = 50 * 1000;
  policy.deadline_micros = 300 * 1000;

  int attempts = 0;
  const uint64_t start = clock.NowMicros();
  Status s = RunWithRetry(
      policy, [] { return Status::TryAgain("always"); }, &attempts);
  EXPECT_TRUE(s.IsTryAgain());
  EXPECT_GT(attempts, 1);
  EXPECT_LT(attempts, 1000);
  // Backoff sleeps advanced the virtual clock, and the final sleep was
  // capped to the remaining budget: total elapsed stays at the
  // deadline (plus at most one op's worth of slack — the op itself
  // consumes no virtual time here).
  const uint64_t elapsed = clock.NowMicros() - start;
  EXPECT_GE(elapsed, policy.deadline_micros);
  EXPECT_LE(elapsed, policy.deadline_micros + policy.max_backoff_micros);
}

TEST(RetryTest, VirtualClockSleepsCostNoWallTime) {
  sim::SimClock clock;
  ScopedClockOverride override(&clock);

  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_backoff_micros = 1000 * 1000;  // 1 virtual second each
  policy.max_backoff_micros = 1000 * 1000;
  policy.deadline_micros = 0;
  policy.jitter = 0.0;

  const auto wall_start = std::chrono::steady_clock::now();
  int attempts = 0;
  Status s = RunWithRetry(
      policy, [] { return Status::TryAgain("always"); }, &attempts);
  const auto wall = std::chrono::steady_clock::now() - wall_start;
  EXPECT_TRUE(s.IsTryAgain());
  EXPECT_EQ(200, attempts);
  // ~199 virtual seconds of backoff...
  EXPECT_GE(clock.ElapsedMicros(), 190ull * 1000 * 1000);
  // ...in well under a real second.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall).count(),
            1000);
}

}  // namespace
}  // namespace shield
