// Sharded-LRU cache tests focused on the charge-accounting contract:
// TotalCharge() includes per-entry bookkeeping overhead and stays
// within the configured capacity whenever no handles are outstanding;
// per-shard capacities sum to exactly the configured budget; and
// high-priority entries outlive low-priority churn. The concurrent
// section is the TSan target.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "lsm/cache.h"

namespace shield {
namespace {

void DeleteCount(const Slice&, void* value) {
  ++*static_cast<std::atomic<int>*>(value);
}

void DeleteNothing(const Slice&, void*) {}

std::string CacheKey(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "cache-key-%06d", i);
  return std::string(buf);
}

TEST(CacheTest, ChargeIncludesOverhead) {
  auto cache = NewLRUCache(1 << 20);
  Cache::Handle* h =
      cache->Insert("some-key", nullptr, /*charge=*/100, DeleteNothing);
  // The accounted charge must exceed the caller's 100 bytes: the entry
  // costs the cache a handle allocation, a key copy in the hash table,
  // and node bookkeeping on top.
  EXPECT_GT(cache->TotalCharge(), 100u);
  cache->Release(h);
  cache->Erase("some-key");
  EXPECT_EQ(0u, cache->TotalCharge());
}

TEST(CacheTest, TotalChargeBoundedByCapacity) {
  const size_t kCapacity = 64 * 1024;
  auto cache = NewLRUCache(kCapacity);
  std::atomic<int> deleted{0};

  // Insert far more than fits; release every handle immediately.
  for (int i = 0; i < 1000; i++) {
    cache->Release(cache->Insert(CacheKey(i), &deleted, 512, DeleteCount));
    ASSERT_LE(cache->TotalCharge(), kCapacity) << "after insert " << i;
  }
  EXPECT_GT(deleted.load(), 0);  // eviction actually happened

  // Pinned entries may push usage past capacity...
  std::vector<Cache::Handle*> pinned;
  for (int i = 0; i < 200; i++) {
    pinned.push_back(
        cache->Insert("pin" + CacheKey(i), &deleted, 512, DeleteCount));
  }
  // ...but once the last handle is released the invariant is restored.
  for (Cache::Handle* h : pinned) {
    cache->Release(h);
  }
  EXPECT_LE(cache->TotalCharge(), kCapacity);
}

TEST(CacheTest, ShardCapacitiesSumToCapacity) {
  // A capacity that is NOT divisible by the shard count: with ceil
  // rounding each of the 16 shards would get an extra byte and the
  // cache could jointly hold more than its configured budget. Fill the
  // cache to the brim and check the global bound still holds exactly.
  const size_t kCapacity = 64 * 1024 + 13;
  auto cache = NewLRUCache(kCapacity);
  for (int i = 0; i < 4000; i++) {
    cache->Release(cache->Insert(CacheKey(i), nullptr, 128, DeleteNothing));
  }
  EXPECT_LE(cache->TotalCharge(), kCapacity);
}

TEST(CacheTest, HighPrioritySurvivesLowPriorityChurn) {
  const size_t kCapacity = 64 * 1024;
  auto cache = NewLRUCache(kCapacity);

  // A handful of high-priority entries (index/filter-style pins),
  // inserted FIRST so plain LRU order would evict them first.
  for (int i = 0; i < 8; i++) {
    cache->Release(cache->Insert("meta" + CacheKey(i), nullptr, 256,
                                 DeleteNothing, Cache::Priority::kHigh));
  }
  // A scan's worth of low-priority churn, many times the capacity.
  for (int i = 0; i < 2000; i++) {
    cache->Release(cache->Insert(CacheKey(i), nullptr, 512, DeleteNothing));
  }

  int surviving_meta = 0;
  for (int i = 0; i < 8; i++) {
    Cache::Handle* h = cache->Lookup("meta" + CacheKey(i));
    if (h != nullptr) {
      surviving_meta++;
      cache->Release(h);
    }
  }
  EXPECT_EQ(8, surviving_meta)
      << "low-priority churn evicted high-priority metadata";
}

TEST(CacheTest, DuplicateInsertWithOutstandingHandle) {
  auto cache = NewLRUCache(1 << 20);
  std::atomic<int> deleted{0};

  Cache::Handle* first = cache->Insert("dup", &deleted, 64, DeleteCount);
  Cache::Handle* second = cache->Insert("dup", &deleted, 64, DeleteCount);
  // The second insert displaced the first from the table, but the
  // first handle must stay valid until released.
  EXPECT_EQ(0, deleted.load());
  Cache::Handle* found = cache->Lookup("dup");
  ASSERT_NE(nullptr, found);
  EXPECT_EQ(cache->Value(second), cache->Value(found));
  cache->Release(found);
  cache->Release(first);
  EXPECT_EQ(1, deleted.load());  // old entry freed once unreferenced
  cache->Release(second);
  cache->Erase("dup");
  EXPECT_EQ(2, deleted.load());
  EXPECT_EQ(0u, cache->TotalCharge());
}

TEST(CacheTest, EraseWhileReferencedDefersDeleter) {
  auto cache = NewLRUCache(1 << 20);
  std::atomic<int> deleted{0};
  Cache::Handle* h = cache->Insert("gone", &deleted, 64, DeleteCount);
  cache->Erase("gone");
  EXPECT_EQ(nullptr, cache->Lookup("gone"));
  EXPECT_EQ(0, deleted.load());  // still referenced
  cache->Release(h);
  EXPECT_EQ(1, deleted.load());
}

// The TSan target: hammer one cache from many threads with overlapping
// key ranges so inserts, lookups, releases, erases, and evictions all
// race. Correctness here is "no data race, no crash, charge bound
// holds at the end".
TEST(CacheTest, ConcurrentMixedOperations) {
  const size_t kCapacity = 256 * 1024;
  auto cache = NewLRUCache(kCapacity);
  std::atomic<int> deleted{0};

  const int kThreads = 8;
  const int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, &deleted, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (int i = 0; i < kOpsPerThread; i++) {
        const std::string key = CacheKey(static_cast<int>(next() % 512));
        switch (next() % 4) {
          case 0: {
            Cache::Handle* h = cache->Insert(
                key, &deleted, 256 + next() % 1024, DeleteCount,
                (next() & 1) ? Cache::Priority::kHigh
                             : Cache::Priority::kLow);
            cache->Release(h);
            break;
          }
          case 1: {
            Cache::Handle* h = cache->Lookup(key);
            if (h != nullptr) {
              cache->Release(h);
            }
            break;
          }
          case 2:
            cache->Erase(key);
            break;
          default:
            (void)cache->TotalCharge();
            break;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_LE(cache->TotalCharge(), kCapacity);
}

}  // namespace
}  // namespace shield
