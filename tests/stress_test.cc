// Concurrency stress regressions. These loops reproduced (before the
// fixes) two real races:
//  1. concurrent flush + compaction interleaving their manifest writes
//     (LogAndApply is now serialized), and
//  2. a flushed SST leaving pending_outputs_ before being installed,
//     letting a concurrently-finishing compaction's GC delete it.
// Both manifested as background NotFound/Corruption errors surfacing
// through Put/Flush.

#include <map>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

struct StressParam {
  EncryptionMode mode;
  CompactionStyle style;
  const char* name;
};

class ConcurrencyStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ConcurrencyStressTest, HeavyFlushAndCompactionOverlap) {
  // Tiny memtable + low trigger: flushes and compactions overlap
  // constantly on the background pool.
  for (int round = 0; round < 3; round++) {
    auto env = NewMemEnv();
    Options options;
    options.env = env.get();
    options.write_buffer_size = 16 * 1024;
    options.level0_file_num_compaction_trigger = 4;
    options.target_file_size_base = 64 * 1024;
    options.max_background_jobs = 2;
    options.compaction_style = GetParam().style;
    options.fifo_max_table_files_size = 1ull << 30;
    options.encryption.mode = GetParam().mode;
    std::shared_ptr<Kds> kds;
    if (options.encryption.mode == EncryptionMode::kShield) {
      kds = std::make_shared<LocalKds>();
      options.encryption.kds = kds;
    }

    DB* raw_db = nullptr;
    ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
    std::unique_ptr<DB> db(raw_db);

    Random rnd(round + 1);
    for (int i = 0; i < 15000; i++) {
      Status s = db->Put(WriteOptions(),
                         "key" + std::to_string(rnd.Uniform(5000)),
                         std::string(64, 's'));
      ASSERT_TRUE(s.ok()) << "round " << round << " put " << i << ": "
                          << s.ToString();
    }
    Status s = db->Flush();
    ASSERT_TRUE(s.ok()) << s.ToString();
    db->WaitForIdle();

    // Spot-check reads still work after the storm.
    std::string value;
    int found = 0;
    for (int i = 0; i < 200; i++) {
      if (db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok()) {
        found++;
      }
    }
    EXPECT_GT(found, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConcurrencyStressTest,
    ::testing::Values(
        StressParam{EncryptionMode::kNone, CompactionStyle::kLeveled,
                    "PlainLeveled"},
        StressParam{EncryptionMode::kShield, CompactionStyle::kLeveled,
                    "ShieldLeveled"},
        StressParam{EncryptionMode::kShield, CompactionStyle::kUniversal,
                    "ShieldUniversal"}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace shield
