#include "encfs/encrypted_env.h"

#include "crypto/secure_random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace shield {
namespace {

class EncFsTest : public ::testing::Test {
 protected:
  EncFsTest() : base_(NewMemEnv()) {
    key_ = crypto::SecureRandomString(16);
    Status s = NewEncryptedEnv(base_.get(), crypto::CipherKind::kAes128Ctr,
                               key_, &env_);
    EXPECT_TRUE(s.ok());
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<Env> env_;
  std::string key_;
};

TEST_F(EncFsTest, RoundTrip) {
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), "secret payload", "/f", true).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/f", &contents).ok());
  EXPECT_EQ("secret payload", contents);
}

TEST_F(EncFsTest, CiphertextOnDisk) {
  const std::string plaintext = "THIS_IS_SENSITIVE_CLIENT_DATA";
  ASSERT_TRUE(WriteStringToFile(env_.get(), plaintext, "/f", true).ok());

  // The raw (base env) file must not contain the plaintext.
  std::string raw;
  ASSERT_TRUE(ReadFileToString(base_.get(), "/f", &raw).ok());
  EXPECT_EQ(std::string::npos, raw.find(plaintext));
  EXPECT_EQ(kEncFsHeaderSize + plaintext.size(), raw.size());
}

TEST_F(EncFsTest, RandomAccessDecryptsAtOffsets) {
  std::string payload;
  for (int i = 0; i < 1000; i++) {
    payload += "block" + std::to_string(i) + ";";
  }
  ASSERT_TRUE(WriteStringToFile(env_.get(), payload, "/f", false).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/f", &file).ok());
  char scratch[64];
  Slice result;
  ASSERT_TRUE(file->Read(100, 20, &result, scratch).ok());
  EXPECT_EQ(payload.substr(100, 20), result.ToString());
  ASSERT_TRUE(file->Read(payload.size() - 5, 64, &result, scratch).ok());
  EXPECT_EQ(payload.substr(payload.size() - 5), result.ToString());

  uint64_t size;
  ASSERT_TRUE(file->Size(&size).ok());
  EXPECT_EQ(payload.size(), size);
}

TEST_F(EncFsTest, GetFileSizeHidesHeader) {
  ASSERT_TRUE(WriteStringToFile(env_.get(), "12345", "/f", false).ok());
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("/f", &size).ok());
  EXPECT_EQ(5u, size);
  uint64_t raw_size;
  ASSERT_TRUE(base_->GetFileSize("/f", &raw_size).ok());
  EXPECT_EQ(kEncFsHeaderSize + 5, raw_size);
}

TEST_F(EncFsTest, WrongKeyYieldsGarbage) {
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), "top secret value", "/f", false).ok());

  std::unique_ptr<Env> wrong_env;
  ASSERT_TRUE(NewEncryptedEnv(base_.get(), crypto::CipherKind::kAes128Ctr,
                              crypto::SecureRandomString(16), &wrong_env)
                  .ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(wrong_env.get(), "/f", &contents).ok());
  EXPECT_NE("top secret value", contents);
}

TEST_F(EncFsTest, DistinctFilesUseDistinctNonces) {
  // Same plaintext twice must produce different ciphertext (per-file
  // random nonce prevents keystream reuse under the shared DEK).
  const std::string plaintext(256, 'p');
  ASSERT_TRUE(WriteStringToFile(env_.get(), plaintext, "/a", false).ok());
  ASSERT_TRUE(WriteStringToFile(env_.get(), plaintext, "/b", false).ok());

  std::string raw_a, raw_b;
  ASSERT_TRUE(ReadFileToString(base_.get(), "/a", &raw_a).ok());
  ASSERT_TRUE(ReadFileToString(base_.get(), "/b", &raw_b).ok());
  EXPECT_NE(raw_a.substr(kEncFsHeaderSize), raw_b.substr(kEncFsHeaderSize));
}

TEST_F(EncFsTest, RejectsWrongKeySize) {
  std::unique_ptr<Env> env;
  EXPECT_TRUE(NewEncryptedEnv(base_.get(), crypto::CipherKind::kAes128Ctr,
                              "tooshort", &env)
                  .IsInvalidArgument());
}

TEST_F(EncFsTest, ChaCha20Variant) {
  std::unique_ptr<Env> chacha_env;
  ASSERT_TRUE(NewEncryptedEnv(base_.get(), crypto::CipherKind::kChaCha20,
                              crypto::SecureRandomString(32), &chacha_env)
                  .ok());
  ASSERT_TRUE(
      WriteStringToFile(chacha_env.get(), "chacha data", "/cc", false).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(chacha_env.get(), "/cc", &contents).ok());
  EXPECT_EQ("chacha data", contents);

  std::string raw;
  ASSERT_TRUE(ReadFileToString(base_.get(), "/cc", &raw).ok());
  EXPECT_EQ(std::string::npos, raw.find("chacha data"));
}

TEST_F(EncFsTest, NonEncryptedFileRejected) {
  ASSERT_TRUE(WriteStringToFile(base_.get(), "plain", "/raw", false).ok());
  std::string contents;
  Status s = ReadFileToString(env_.get(), "/raw", &contents);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(EncFsTest, WalBufferDefersWrites) {
  std::unique_ptr<Env> buffered_env;
  ASSERT_TRUE(NewEncryptedEnv(base_.get(), crypto::CipherKind::kAes128Ctr,
                              key_, &buffered_env,
                              /*wal_buffer_size=*/512)
                  .ok());

  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(buffered_env->NewWritableFile("/000001.log", &wal).ok());
  ASSERT_TRUE(wal->Append("tiny record").ok());
  ASSERT_TRUE(wal->Flush().ok());

  // Data is still in the application buffer: the base file holds only
  // the header.
  uint64_t raw_size;
  ASSERT_TRUE(base_->GetFileSize("/000001.log", &raw_size).ok());
  EXPECT_EQ(kEncFsHeaderSize, raw_size);

  // Sync forces encryption + persistence.
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(base_->GetFileSize("/000001.log", &raw_size).ok());
  EXPECT_EQ(kEncFsHeaderSize + strlen("tiny record"), raw_size);
  ASSERT_TRUE(wal->Close().ok());

  std::string contents;
  ASSERT_TRUE(
      ReadFileToString(buffered_env.get(), "/000001.log", &contents).ok());
  EXPECT_EQ("tiny record", contents);
}

TEST_F(EncFsTest, WalBufferDrainsWhenFull) {
  std::unique_ptr<Env> buffered_env;
  ASSERT_TRUE(NewEncryptedEnv(base_.get(), crypto::CipherKind::kAes128Ctr,
                              key_, &buffered_env, /*wal_buffer_size=*/64)
                  .ok());
  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(buffered_env->NewWritableFile("/000002.log", &wal).ok());
  ASSERT_TRUE(wal->Append(std::string(100, 'r')).ok());  // over threshold

  uint64_t raw_size;
  ASSERT_TRUE(base_->GetFileSize("/000002.log", &raw_size).ok());
  EXPECT_EQ(kEncFsHeaderSize + 100, raw_size);
  ASSERT_TRUE(wal->Close().ok());
}

TEST_F(EncFsTest, NonWalFilesNotBuffered) {
  std::unique_ptr<Env> buffered_env;
  ASSERT_TRUE(NewEncryptedEnv(base_.get(), crypto::CipherKind::kAes128Ctr,
                              key_, &buffered_env, /*wal_buffer_size=*/4096)
                  .ok());
  std::unique_ptr<WritableFile> sst;
  ASSERT_TRUE(buffered_env->NewWritableFile("/000003.sst", &sst).ok());
  ASSERT_TRUE(sst->Append("immediate").ok());
  uint64_t raw_size;
  ASSERT_TRUE(base_->GetFileSize("/000003.sst", &raw_size).ok());
  EXPECT_EQ(kEncFsHeaderSize + strlen("immediate"), raw_size);
  ASSERT_TRUE(sst->Close().ok());
}

}  // namespace
}  // namespace shield
