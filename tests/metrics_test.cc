// Labeled metrics registry: strict Prometheus text-format conformance
// (a promtool-style grammar check over every emitted line, including
// the DB's `shield.metrics` property), windowed-histogram snapshot
// properties under slot rotation on a controlled clock, and concurrent
// record/snapshot traffic for TSan.

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "gtest/gtest.h"
#include "lsm/db.h"
#include "sim/sim_clock.h"
#include "util/clock.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/statistics.h"

namespace shield {
namespace {

// --- strict Prometheus text validator --------------------------------
//
// Implements the text exposition format 0.0.4 line grammar the way
// promtool checks it: metric/label name charsets, quoted label values
// with only \\ \" \n escapes, float-parseable sample values, TYPE
// lines that precede their family's samples exactly once, counter
// families suffixed _total, and no duplicate (name + label set)
// samples. Any violation fails the test with the offending line.

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool ValidMetricName(const std::string& s) {
  if (s.empty() || !IsNameStart(s[0])) {
    return false;
  }
  for (char c : s) {
    if (!IsNameChar(c)) {
      return false;
    }
  }
  return true;
}

bool ValidLabelName(const std::string& s) {
  if (s.empty() || s[0] == ':' || !IsNameStart(s[0])) {
    return false;
  }
  for (char c : s) {
    if (c == ':' || !IsNameChar(c)) {
      return false;
    }
  }
  return true;
}

// Parses `name{l="v",...} value` or `name value`. Returns false with a
// reason on any grammar violation.
bool ParseSampleLine(const std::string& line, std::string* name,
                     std::string* labels, std::string* reason) {
  size_t i = 0;
  while (i < line.size() && IsNameChar(line[i])) {
    i++;
  }
  name->assign(line, 0, i);
  if (!ValidMetricName(*name)) {
    *reason = "bad metric name";
    return false;
  }
  labels->clear();
  if (i < line.size() && line[i] == '{') {
    const size_t open = i;
    std::set<std::string> seen;
    i++;
    while (true) {
      size_t ls = i;
      while (i < line.size() && IsNameChar(line[i])) {
        i++;
      }
      const std::string lname = line.substr(ls, i - ls);
      if (!ValidLabelName(lname)) {
        *reason = "bad label name '" + lname + "'";
        return false;
      }
      if (!seen.insert(lname).second) {
        *reason = "duplicate label '" + lname + "'";
        return false;
      }
      if (i >= line.size() || line[i] != '=') {
        *reason = "expected '=' after label name";
        return false;
      }
      i++;
      if (i >= line.size() || line[i] != '"') {
        *reason = "label value not quoted";
        return false;
      }
      i++;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size() ||
              (line[i + 1] != '\\' && line[i + 1] != '"' &&
               line[i + 1] != 'n')) {
            *reason = "invalid escape in label value";
            return false;
          }
          i++;
        } else if (line[i] == '\n') {
          *reason = "raw newline in label value";
          return false;
        }
        i++;
      }
      if (i >= line.size()) {
        *reason = "unterminated label value";
        return false;
      }
      i++;  // closing quote
      if (i < line.size() && line[i] == ',') {
        i++;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        i++;
        break;
      }
      *reason = "expected ',' or '}' after label value";
      return false;
    }
    labels->assign(line, open, i - open);
  }
  if (i >= line.size() || line[i] != ' ') {
    *reason = "expected single space before value";
    return false;
  }
  i++;
  const std::string value = line.substr(i);
  if (value.empty() || value.find(' ') != std::string::npos) {
    *reason = "expected exactly one value token";
    return false;
  }
  if (value != "NaN" && value != "+Inf" && value != "-Inf") {
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size()) {
      *reason = "unparseable sample value '" + value + "'";
      return false;
    }
  }
  return true;
}

void ValidatePrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ('\n', text.back()) << "exposition must end with a newline";

  // exposed family name -> type; summaries admit _sum/_count children.
  std::set<std::string> typed;
  std::string current_family;
  std::string current_type;
  std::set<std::string> seen_samples;

  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(std::string::npos, eol);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    line_no++;
    SCOPED_TRACE("line " + std::to_string(line_no) + ": " + line);
    ASSERT_FALSE(line.empty()) << "blank line";

    if (line[0] == '#') {
      std::string keyword, fname;
      size_t i = 2;
      ASSERT_EQ("# ", line.substr(0, 2));
      size_t sp = line.find(' ', i);
      ASSERT_NE(std::string::npos, sp);
      keyword = line.substr(i, sp - i);
      ASSERT_TRUE(keyword == "HELP" || keyword == "TYPE") << keyword;
      i = sp + 1;
      sp = line.find(' ', i);
      ASSERT_NE(std::string::npos, sp) << "missing text after family name";
      fname = line.substr(i, sp - i);
      ASSERT_TRUE(ValidMetricName(fname)) << fname;
      const std::string rest = line.substr(sp + 1);
      if (keyword == "TYPE") {
        ASSERT_TRUE(rest == "counter" || rest == "gauge" ||
                    rest == "summary" || rest == "histogram" ||
                    rest == "untyped")
            << rest;
        ASSERT_TRUE(typed.insert(fname).second)
            << "family typed twice: " << fname;
        if (rest == "counter") {
          ASSERT_TRUE(fname.size() > 6 &&
                      fname.compare(fname.size() - 6, 6, "_total") == 0)
              << "counter family without _total suffix: " << fname;
        }
        current_family = fname;
        current_type = rest;
      } else {
        // HELP must not contain raw newlines (escaped as \n) or a
        // trailing bare backslash.
        for (size_t k = 0; k < rest.size(); k++) {
          if (rest[k] == '\\') {
            ASSERT_LT(k + 1, rest.size()) << "dangling backslash in HELP";
            ASSERT_TRUE(rest[k + 1] == '\\' || rest[k + 1] == 'n')
                << "invalid HELP escape";
            k++;
          }
        }
      }
      continue;
    }

    std::string name, labels, reason;
    ASSERT_TRUE(ParseSampleLine(line, &name, &labels, &reason)) << reason;
    // Samples must sit under their family's TYPE line: the family name
    // itself, or a summary's _sum/_count children.
    const bool in_family =
        name == current_family ||
        (current_type == "summary" && (name == current_family + "_sum" ||
                                       name == current_family + "_count"));
    ASSERT_TRUE(in_family) << "sample " << name
                           << " outside its family's TYPE block ("
                           << current_family << ")";
    ASSERT_TRUE(seen_samples.insert(name + labels).second)
        << "duplicate sample: " << name << labels;
  }
}

// --- Prometheus conformance ------------------------------------------

TEST(PrometheusFormatTest, RegistryOutputSurvivesStrictValidation) {
  MetricsRegistry reg;
  // Escaping torture: quotes, backslashes and newlines in label values
  // and help text must all round-trip through the encoder as legal
  // exposition-format escapes.
  reg.GetCounter("shield_test_requests", "requests with \\ and\nnewline",
                 MetricLabels{{"node", "he said \"hi\"\\"},
                              {"op", "get\nput"}})
      ->Add(42);
  reg.GetCounter("shield_test_requests", "", MetricLabels{{"node", "w"}})
      ->Add(7);
  reg.GetGauge("shield_test_depth", "queue depth", MetricLabels{})->Set(2.5);
  WindowedHistogram* h = reg.GetHistogram(
      "shield_test_latency_micros", "op latency", MetricLabels{{"op", "get"}});
  for (int i = 1; i <= 100; i++) {
    h->Record(static_cast<uint64_t>(i) * 10);
  }

  const std::string text = reg.ToPrometheusText();
  ValidatePrometheusText(text);

  // Counters expose _total; escapes are on the wire.
  EXPECT_NE(std::string::npos, text.find("shield_test_requests_total{"));
  EXPECT_NE(std::string::npos, text.find("\\\"hi\\\""));
  EXPECT_NE(std::string::npos, text.find("get\\nput"));
  EXPECT_NE(std::string::npos, text.find("and\\nnewline"));
  // Summaries carry cumulative quantiles and sliding-window gauges.
  EXPECT_NE(std::string::npos,
            text.find("shield_test_latency_micros{op=\"get\",quantile=\"0.99\"}"));
  EXPECT_NE(std::string::npos, text.find("shield_test_latency_micros_window"));
}

TEST(PrometheusFormatTest, DbMetricsPropertyValidates) {
  // The whole `shield.metrics` surface — mirrored tickers, latency
  // summaries, level/health/lag gauges — must pass the same strict
  // grammar check end to end.
  std::unique_ptr<Env> env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.node_name = "writer";
  options.statistics = CreateDBStatistics();
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/metricsdb", &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "key-" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Get(ReadOptions(), "key-" + std::to_string(i), &value).ok());
  }

  std::string text;
  ASSERT_TRUE(db->GetProperty("shield.metrics", &text));
  ValidatePrometheusText(text);
  EXPECT_NE(std::string::npos, text.find("_total{"));
  EXPECT_NE(std::string::npos, text.find("node=\"writer\""));
  EXPECT_NE(std::string::npos, text.find("shield_health_level{"));
}

TEST(PrometheusFormatTest, CrossTypeRegistrationIsSafe) {
  // Registering an existing family name under a different instrument
  // type must neither hand the caller a null pointer nor leave an
  // instrument the encoder would null-deref. The family keeps its
  // first-registered type; mismatched registrations get working (if
  // unexported) instruments.
  MetricsRegistry reg;
  reg.GetCounter("shield_mixed", "first as counter", MetricLabels{})->Add(3);
  Gauge* g = reg.GetGauge("shield_mixed", "", MetricLabels{});
  ASSERT_NE(nullptr, g);
  g->Set(7.5);
  WindowedHistogram* h = reg.GetHistogram("shield_mixed", "", MetricLabels{});
  ASSERT_NE(nullptr, h);
  h->Record(11);
  // New label set entering through the wrong type still renders as the
  // family's type.
  Gauge* g2 =
      reg.GetGauge("shield_mixed", "", MetricLabels{{"node", "other"}});
  ASSERT_NE(nullptr, g2);

  const std::string text = reg.ToPrometheusText();
  ValidatePrometheusText(text);
  EXPECT_NE(std::string::npos, text.find("shield_mixed_total 3"));
  EXPECT_NE(std::string::npos, text.find("shield_mixed_total{node=\"other\"}"));

  // And the mirror image: gauge family first, counter second.
  reg.GetGauge("shield_mixed_g", "as gauge", MetricLabels{})->Set(1);
  Counter* c = reg.GetCounter("shield_mixed_g", "", MetricLabels{});
  ASSERT_NE(nullptr, c);
  c->Add(1);
  ValidatePrometheusText(reg.ToPrometheusText());
}

// --- windowed histogram properties -----------------------------------

TEST(WindowedHistogramTest, FullSnapshotMatchesReferenceUnderRotation) {
  // Property: however samples land across slot rotations (including
  // folds into the ancient accumulator), the full-history snapshot is
  // exactly the merge of everything recorded — identical counts, sum,
  // extrema, and bucket percentiles to a plain reference histogram.
  sim::SimClock clock;
  ScopedClockOverride override(&clock);

  Random rnd(301);
  WindowedHistogram wh;
  Histogram ref;
  for (int i = 0; i < 5000; i++) {
    const uint64_t v = rnd.Uniform(1000000);
    wh.Record(v);
    ref.Add(v);
    if (rnd.OneIn(20)) {
      // Jump up to ~3 slots; over the run this rotates the ring many
      // times past the 60 s horizon.
      clock.AdvanceBy(rnd.Uniform(3 * WindowedHistogram::kSlotMicros));
    }
  }

  const HistogramSnapshot full = wh.Snapshot(0);
  EXPECT_EQ(ref.Count(), full.count);
  EXPECT_EQ(ref.Min(), full.min);
  EXPECT_EQ(ref.Max(), full.max);
  EXPECT_DOUBLE_EQ(ref.Percentile(50.0), full.p50);
  EXPECT_DOUBLE_EQ(ref.Percentile(99.0), full.p99);
  EXPECT_DOUBLE_EQ(ref.Percentile(99.9), full.p999);

  Histogram merged;
  wh.MergeWindow(0, &merged);
  EXPECT_EQ(ref.Count(), merged.Count());
  EXPECT_DOUBLE_EQ(ref.Percentile(99.0), merged.Percentile(99.0));
}

TEST(WindowedHistogramTest, SlidingWindowsCoverOnlyRecentTraffic) {
  sim::SimClock clock;
  ScopedClockOverride override(&clock);

  WindowedHistogram wh;
  // Era 1: a thousand fast samples, then let the whole ring age past
  // the 60 s horizon.
  for (int i = 0; i < 1000; i++) {
    wh.Record(100);
  }
  clock.AdvanceBy(2 * WindowedHistogram::kWindowLongMicros);
  // Era 2: a burst of slow samples in the current slot.
  for (int i = 0; i < 50; i++) {
    wh.Record(1000000);
  }

  const HistogramSnapshot recent =
      wh.Snapshot(WindowedHistogram::kWindowShortMicros);
  EXPECT_EQ(50u, recent.count);
  EXPECT_GT(recent.p50, 100000.0) << "short window leaked era-1 samples";

  const HistogramSnapshot full = wh.Snapshot(0);
  EXPECT_EQ(1050u, full.count) << "windowing lost history";
  EXPECT_LT(full.p50, 10000.0) << "full history dominated by era 1";
}

TEST(WindowedHistogramTest, ClockStartingAtZeroLosesNothing) {
  // Epoch 0 is a legal slot epoch (a clock that starts near zero), not
  // an "unused" sentinel: samples recorded then must show up in
  // sliding windows, and must fold into the ancient accumulator — not
  // vanish — when their slot is reused a full ring later.
  sim::SimClock clock(0);
  ScopedClockOverride override(&clock);

  WindowedHistogram wh;
  for (int i = 0; i < 100; i++) {
    wh.Record(42);
  }
  EXPECT_EQ(100u, wh.Snapshot(WindowedHistogram::kWindowShortMicros).count)
      << "epoch-0 samples invisible to the sliding window";

  // Reuse slot 0 (same ring index, kNumSlots epochs later): the old
  // contents must survive as full history.
  clock.AdvanceBy(WindowedHistogram::kNumSlots * WindowedHistogram::kSlotMicros);
  wh.Record(7);
  const HistogramSnapshot full = wh.Snapshot(0);
  EXPECT_EQ(101u, full.count) << "slot reuse dropped epoch-0 samples";
  EXPECT_EQ(1u, wh.Snapshot(WindowedHistogram::kWindowShortMicros).count);
}

// --- health monitor locking ------------------------------------------

TEST(HealthMonitorTest, StatusReadsDoNotBlockOnSlowDetectors) {
  // Regression for an ABBA deadlock: a detector taking its owner's
  // lock (the DB mutex) while a thread holding that same lock reads
  // monitor state (ExportGauges during a property read). Detectors
  // must run with the monitor's state lock released, so status reads
  // complete even while a detector is blocked on the owner lock.
  HealthMonitor monitor;
  MetricsRegistry reg;
  std::mutex owner_mu;
  std::atomic<bool> in_detector{false};
  monitor.RegisterDetector("owner.locked", [&] {
    in_detector.store(true);
    std::lock_guard<std::mutex> lock(owner_mu);  // blocks until released
    HealthSample s;
    s.level = HealthLevel::kWarn;
    s.detail = "took owner lock";
    return s;
  });

  std::unique_lock<std::mutex> owner_lock(owner_mu);
  std::thread evaluator([&] { monitor.Evaluate(); });
  while (!in_detector.load()) {
    std::this_thread::yield();
  }
  // The evaluator is now inside the detector, blocked on owner_mu.
  // Every status read — including the registry export the DB performs
  // under its own mutex — must return instead of deadlocking.
  EXPECT_EQ(HealthLevel::kOk, monitor.Overall());
  EXPECT_FALSE(monitor.CurrentStatus().empty());
  EXPECT_NE(std::string::npos, monitor.ToJson().find("owner.locked"));
  monitor.ExportGauges(&reg, MetricLabels{});
  EXPECT_NE(std::string::npos,
            reg.ToPrometheusText().find("shield_health_overall"));

  owner_lock.unlock();
  evaluator.join();
  EXPECT_EQ(HealthLevel::kWarn, monitor.Overall());
  // The detector's verdict committed after the unlock.
  std::vector<HealthTransition> transitions = monitor.Evaluate();
  EXPECT_TRUE(transitions.empty()) << "level should be stable at warn";
}

// --- concurrency (TSan) ----------------------------------------------

TEST(MetricsConcurrencyTest, ConcurrentRecordAndSnapshot) {
  WindowedHistogram wh;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      (void)wh.Snapshot(0);
      (void)wh.Snapshot(WindowedHistogram::kWindowShortMicros);
    }
  });
  std::vector<std::thread> recorders;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  for (int t = 0; t < kThreads; t++) {
    recorders.emplace_back([&wh, t] {
      for (int i = 0; i < kPerThread; i++) {
        wh.Record(static_cast<uint64_t>(t) * 1000 + (i % 997));
      }
    });
  }
  for (auto& t : recorders) {
    t.join();
  }
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kPerThread, wh.Snapshot(0).count);
}

TEST(MetricsConcurrencyTest, ConcurrentRegistryUseAndEncode) {
  MetricsRegistry reg;
  // Seed one family so the encoder thread never sees an empty (and
  // thus grammar-violating, no-trailing-newline) exposition.
  reg.GetCounter("shield_conc_seed", "seed", MetricLabels{})->Add(1);
  std::atomic<bool> stop{false};
  std::thread encoder([&] {
    while (!stop.load()) {
      ValidatePrometheusText(reg.ToPrometheusText());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; t++) {
    writers.emplace_back([&reg, t] {
      MetricLabels labels{{"node", "n" + std::to_string(t)}};
      for (int i = 0; i < 5000; i++) {
        reg.GetCounter("shield_conc_ops", "ops", labels)->Add(1);
        reg.GetGauge("shield_conc_depth", "depth", labels)
            ->Set(static_cast<double>(i));
        reg.GetHistogram("shield_conc_lat", "lat", labels)
            ->Record(static_cast<uint64_t>(i % 1009));
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true);
  encoder.join();
  const std::string text = reg.ToPrometheusText();
  ValidatePrometheusText(text);
  EXPECT_NE(std::string::npos, text.find("shield_conc_ops_total{node=\"n0\"}"));
}

}  // namespace
}  // namespace shield
