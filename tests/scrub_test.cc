// Tests for the self-healing integrity scrubber: tamper detection with
// file/offset attribution, pre-auth-tag format compatibility, local
// salvage, replica repair on disaggregated storage, and the background
// scrub thread.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ds/storage_service.h"
#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "lsm/error_handler.h"
#include "test_util.h"
#include "util/clock.h"

namespace shield {
namespace {

constexpr char kDbName[] = "/db";

std::string Property(DB* db, const std::string& name) {
  std::string value;
  EXPECT_TRUE(db->GetProperty("shield." + name, &value)) << name;
  return value;
}

std::string TestValue(int i) {
  return "value-" + std::to_string(i) + "-" + std::string(100, 'p');
}

std::string TestKey(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

// Lists the table files currently in the DB directory of `env`,
// oldest first.
std::vector<std::string> ListSstFiles(Env* env) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren(kDbName, &children).ok());
  std::vector<std::string> ssts;
  for (const std::string& child : children) {
    if (child.size() > 4 && child.substr(child.size() - 4) == ".sst") {
      ssts.push_back(child);
    }
  }
  std::sort(ssts.begin(), ssts.end());
  return ssts;
}

// Flips a bit 25% into the physical file: early data blocks, never the
// footer/index region at the tail.
void FlipBitInDataRegion(FaultInjectionEnv* fault_env, Env* raw_env,
                         const std::string& fname) {
  uint64_t size = 0;
  ASSERT_TRUE(raw_env->GetFileSize(fname, &size).ok());
  ASSERT_GT(size, 256u);
  ASSERT_TRUE(fault_env->FlipBit(fname, (size / 4) * 8).ok());
}

class ScrubListener : public EventListener {
 public:
  void OnBackgroundError(BackgroundErrorReason, const Status&,
                         ErrorSeverity) override {
    errors++;
  }
  void OnIntegrityViolation(const std::string& fname,
                            const Status&) override {
    violations++;
    last_violation_file = fname;
  }
  void OnFileRepaired(const std::string& fname, bool from_replica) override {
    repairs++;
    last_repair_file = fname;
    last_repair_from_replica = from_replica;
  }

  std::atomic<int> errors{0};
  std::atomic<int> violations{0};
  std::atomic<int> repairs{0};
  std::atomic<bool> last_repair_from_replica{false};
  std::string last_violation_file;
  std::string last_repair_file;
};

// --- Monolithic deployment: detection and local salvage ---------------------

class ScrubTest : public ::testing::Test {
 protected:
  ScrubTest() : mem_env_(NewMemEnv()), kds_(std::make_shared<LocalKds>()) {
    FaultInjectionOptions fopts;
    fopts.seed = 99;
    fault_env_ = std::make_unique<FaultInjectionEnv>(mem_env_.get(), fopts);
    fault_env_->SetFaultsEnabled(false);
    listener_ = std::make_shared<ScrubListener>();
  }

  Options MakeOptions() {
    Options options;
    options.env = fault_env_.get();
    options.write_buffer_size = 256 * 1024;  // one SST per Flush
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    options.listeners = {listener_};
    return options;
  }

  void Open(const Options& options) {
    db_.reset();
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, kDbName, &db).ok());
    db_.reset(db);
  }

  void WriteAndFlush(int n) {
    for (int i = 0; i < n; i++) {
      shadow_[TestKey(i)] = TestValue(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  // Returns {matching, missing, wrong} counts of a full scan against
  // the shadow model.
  void ScanAgainstShadow(int* matching, int* missing, int* wrong) {
    *matching = *missing = *wrong = 0;
    std::map<std::string, std::string> seen;
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      seen[iter->key().ToString()] = iter->value().ToString();
    }
    EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
    for (const auto& [key, value] : shadow_) {
      auto it = seen.find(key);
      if (it == seen.end()) {
        (*missing)++;
      } else if (it->second == value) {
        (*matching)++;
      } else {
        (*wrong)++;
      }
    }
  }

  std::unique_ptr<Env> mem_env_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::shared_ptr<LocalKds> kds_;
  std::shared_ptr<ScrubListener> listener_;
  std::map<std::string, std::string> shadow_;
  std::unique_ptr<DB> db_;
};

TEST_F(ScrubTest, CleanDbPassesVerifyIntegrity) {
  Open(MakeOptions());
  WriteAndFlush(300);
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
  EXPECT_EQ(Property(db_.get(), "scrub-corruptions-detected"), "0");
}

TEST_F(ScrubTest, TamperedBlockNamesFileAndOffset) {
  Options options = MakeOptions();
  options.scrub_repair = false;  // detect + report only
  Open(options);
  WriteAndFlush(300);

  const std::vector<std::string> ssts = ListSstFiles(mem_env_.get());
  ASSERT_FALSE(ssts.empty());
  const std::string fname = std::string(kDbName) + "/" + ssts[0];
  FlipBitInDataRegion(fault_env_.get(), mem_env_.get(), fname);

  Status s = db_->VerifyIntegrity();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // The error names the damaged file and the block offset inside it.
  EXPECT_NE(s.ToString().find(ssts[0]), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("at offset"), std::string::npos) << s.ToString();

  EXPECT_EQ(Property(db_.get(), "scrub-corruptions-detected"), "1");
  EXPECT_EQ(Property(db_.get(), "scrub-repaired-files"), "0");
  EXPECT_EQ(listener_->violations, 1);
  EXPECT_NE(listener_->last_violation_file.find(ssts[0]), std::string::npos);
  // On-demand detection reports to the caller; it does not stop the DB.
  EXPECT_EQ(Property(db_.get(), "error-handler-state"), "active");
}

TEST_F(ScrubTest, PreAuthTagFilesStillReadable) {
  // Files written by the pre-tag format (no per-block HMAC) must stay
  // readable after an upgrade that enables authentication.
  Options options = MakeOptions();
  options.encryption.authenticate_blocks = false;
  Open(options);
  WriteAndFlush(300);
  db_.reset();

  options.encryption.authenticate_blocks = true;
  Open(options);
  int matching = 0, missing = 0, wrong = 0;
  ScanAgainstShadow(&matching, &missing, &wrong);
  EXPECT_EQ(matching, 300);
  EXPECT_EQ(missing, 0);
  EXPECT_EQ(wrong, 0);
  // The scrubber verifies v1 files by CRC alone — no false alarms.
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
  EXPECT_EQ(Property(db_.get(), "scrub-corruptions-detected"), "0");

  // New SSTs written after the upgrade carry tags; both generations
  // coexist in one tree.
  for (int i = 300; i < 400; i++) {
    shadow_[TestKey(i)] = TestValue(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
  ScanAgainstShadow(&matching, &missing, &wrong);
  EXPECT_EQ(matching, 400);
}

TEST_F(ScrubTest, LocalSalvageRecoversReadableEntries) {
  Open(MakeOptions());
  WriteAndFlush(300);

  const std::vector<std::string> ssts = ListSstFiles(mem_env_.get());
  ASSERT_FALSE(ssts.empty());
  const std::string fname = std::string(kDbName) + "/" + ssts[0];
  FlipBitInDataRegion(fault_env_.get(), mem_env_.get(), fname);

  // No replica configured: the scrubber salvages the readable blocks.
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
  EXPECT_EQ(Property(db_.get(), "scrub-corruptions-detected"), "1");
  EXPECT_EQ(Property(db_.get(), "scrub-repaired-files"), "1");
  EXPECT_EQ(Property(db_.get(), "scrub-quarantined-files"), "1");
  EXPECT_EQ(listener_->repairs, 1);
  EXPECT_FALSE(listener_->last_repair_from_replica);
  EXPECT_EQ(Property(db_.get(), "error-handler-state"), "active");

  // The damaged ciphertext is preserved for forensics.
  EXPECT_TRUE(mem_env_->FileExists(fname + ".quarantine"));

  // Entries in the one damaged block are gone; everything else
  // survives, and nothing reads back wrong.
  int matching = 0, missing = 0, wrong = 0;
  ScanAgainstShadow(&matching, &missing, &wrong);
  EXPECT_EQ(wrong, 0);
  EXPECT_GE(missing, 1);
  EXPECT_LE(missing, 80) << "one ~4K block holds a few dozen entries";
  EXPECT_EQ(matching + missing, 300);

  // A second pass finds a clean tree.
  ASSERT_TRUE(db_->VerifyIntegrity().ok());
  EXPECT_EQ(Property(db_.get(), "scrub-corruptions-detected"), "1");
}

TEST_F(ScrubTest, BackgroundScrubThreadRepairsAutomatically) {
  Options options = MakeOptions();
  options.scrub_interval_micros = 20 * 1000;  // 20ms between passes
  options.scrub_bytes_per_second = 0;         // unthrottled
  Open(options);
  WriteAndFlush(300);

  const std::vector<std::string> ssts = ListSstFiles(mem_env_.get());
  ASSERT_FALSE(ssts.empty());
  const std::string fname = std::string(kDbName) + "/" + ssts[0];
  FlipBitInDataRegion(fault_env_.get(), mem_env_.get(), fname);

  // No API call: the background thread finds and repairs the damage.
  bool repaired = false;
  for (int i = 0; i < 10000 && !repaired; i++) {
    repaired = Property(db_.get(), "scrub-repaired-files") == "1";
    SleepForMicros(1000);
  }
  EXPECT_TRUE(repaired);
  EXPECT_TRUE(mem_env_->FileExists(fname + ".quarantine"));
  EXPECT_EQ(Property(db_.get(), "error-handler-state"), "active");
}

// --- Disaggregated deployment: replica repair, full fault schedule ----------

// The ISSUE acceptance scenario: a SHIELD instance on simulated
// disaggregated storage (with HDFS-style replication) survives a
// seeded fault schedule of (a) a transient flush failure and (b) a
// flipped ciphertext bit in a live SST, ending back in the active
// state with the corrupt file repaired from the replica and zero
// acknowledged-synced keys lost.
TEST(DisaggregatedScrubTest, FaultScheduleEndsActiveWithZeroLoss) {
  auto backing = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = 1234;
  FaultInjectionEnv fault_env(backing.get(), fopts);
  fault_env.SetFaultsEnabled(false);

  NetworkSimOptions net;
  net.rtt_micros = 50;
  StorageService service(&fault_env, net, /*replicate=*/true);
  std::unique_ptr<Env> remote = NewRemoteEnv(&service, nullptr);

  auto listener = std::make_shared<ScrubListener>();
  Options options;
  options.env = remote.get();
  options.write_buffer_size = 16 * 1024;
  // The tiny write buffer produces many L0 files; keep write stalls
  // out of the picture so the fault schedule exercises only the error
  // handler, never the L0 backpressure path.
  options.level0_slowdown_writes_trigger = 60;
  options.level0_stop_writes_trigger = 80;
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = std::make_shared<LocalKds>();
  options.listeners = {listener};
  options.replica_source = &service;
  RetryPolicy resume;
  resume.max_attempts = 1 << 20;
  resume.initial_backoff_micros = 200;
  resume.max_backoff_micros = 1000;
  resume.jitter = 0;
  options.background_error_resume_policy = resume;

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, kDbName, &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  // Every key below is written with sync=true: once Put returns OK it
  // is acknowledged-synced and must survive the whole schedule.
  std::map<std::string, std::string> shadow;
  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 150; i++) {
    shadow[TestKey(i)] = TestValue(i);
    ASSERT_TRUE(db->Put(synced, TestKey(i), TestValue(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // (a) Transient flush failure: SST appends to the fabric fail with
  // TryAgain until the fault lifts; the DB rides it out in kRecovering.
  {
    FaultInjectionOptions transient = fopts;
    transient.write_error_probability = 1.0;
    transient.permanent_error_ratio = 0.0;
    transient.fault_kind_mask = FileKindBit(FileKind::kSst);
    fault_env.SetOptions(transient);
    fault_env.SetFaultsEnabled(true);
  }
  // Fill until the memtable rolls over once and the failing flush
  // records its first error, then stop: a second rollover would block
  // this thread behind the retrying flush. Transient SST faults never
  // fail the Puts themselves (the WAL is healthy), so each remains an
  // acknowledged-synced write.
  for (int i = 150; i < 450 && listener->errors.load() == 0; i++) {
    shadow[TestKey(i)] = TestValue(i);
    ASSERT_TRUE(db->Put(synced, TestKey(i), TestValue(i)).ok());
    SleepForMicros(500);
  }
  bool recovering = false;
  for (int i = 0; i < 10000 && !recovering; i++) {
    recovering = Property(db.get(), "error-handler-state") == "recovering";
    SleepForMicros(1000);
  }
  ASSERT_TRUE(recovering) << Property(db.get(), "error-handler-state");

  fault_env.SetFaultsEnabled(false);
  bool active = false;
  for (int i = 0; i < 10000 && !active; i++) {
    active = Property(db.get(), "error-handler-state") == "active";
    SleepForMicros(1000);
  }
  ASSERT_TRUE(active) << Property(db.get(), "background-error");
  db->WaitForIdle();
  ASSERT_TRUE(db->Flush().ok());
  db->WaitForIdle();  // let compactions settle before picking a live SST
  EXPECT_NE(Property(db.get(), "error-recoveries"), "0");

  // (b) A single flipped ciphertext bit in a live SST on the primary
  // medium (below the replication tee: the replica copy stays good).
  const std::vector<std::string> ssts = ListSstFiles(backing.get());
  ASSERT_FALSE(ssts.empty());
  const std::string fname = std::string(kDbName) + "/" + ssts[0];
  {
    uint64_t size = 0;
    ASSERT_TRUE(backing->GetFileSize(fname, &size).ok());
    ASSERT_TRUE(fault_env.FlipBit(fname, (size / 4) * 8).ok());
  }

  // The scrub detects the damage and re-fetches the file verbatim from
  // the DS replica.
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  EXPECT_EQ(Property(db.get(), "scrub-corruptions-detected"), "1");
  EXPECT_EQ(Property(db.get(), "scrub-repaired-files"), "1");
  EXPECT_EQ(Property(db.get(), "scrub-quarantined-files"), "1");
  EXPECT_EQ(listener->repairs, 1);
  EXPECT_TRUE(listener->last_repair_from_replica);
  EXPECT_EQ(Property(db.get(), "error-handler-state"), "active");
  EXPECT_TRUE(backing->FileExists(fname + ".quarantine"));

  // Zero acknowledged-synced keys lost: the full scan matches the
  // shadow model exactly.
  std::map<std::string, std::string> seen;
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    seen[iter->key().ToString()] = iter->value().ToString();
  }
  ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();
  EXPECT_EQ(seen.size(), shadow.size());
  for (const auto& [key, value] : shadow) {
    auto it = seen.find(key);
    ASSERT_TRUE(it != seen.end()) << "lost acknowledged key " << key;
    EXPECT_EQ(it->second, value) << key;
  }

  // And a second pass confirms the repaired tree is clean.
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace shield
