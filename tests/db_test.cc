#include "lsm/db.h"

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

class DBTest : public ::testing::Test {
 protected:
  DBTest() : env_(NewMemEnv()) {
    options_.env = env_.get();
    options_.write_buffer_size = 256 * 1024;
    options_.block_cache_size = 1 << 20;
  }

  ~DBTest() override { Close(); }

  void Open() {
    Close();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void Reopen() { Open(); }
  void Close() { db_.reset(); }

  Status Put(const std::string& key, const std::string& value) {
    return db_->Put(WriteOptions(), key, value);
  }
  Status Delete(const std::string& key) {
    return db_->Delete(WriteOptions(), key);
  }
  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    if (!s.ok()) {
      return "ERROR: " + s.ToString();
    }
    return value;
  }

  int NumFilesAtLevel(int level) {
    std::string value;
    EXPECT_TRUE(db_->GetProperty(
        "shield.num-files-at-level" + std::to_string(level), &value));
    return atoi(value.c_str());
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, OpenAndClose) {
  Open();
  EXPECT_NE(nullptr, db_);
}

TEST_F(DBTest, PutGetDelete) {
  Open();
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
  ASSERT_TRUE(Delete("foo").ok());
  EXPECT_EQ("NOT_FOUND", Get("foo"));
  EXPECT_EQ("NOT_FOUND", Get("never-written"));
}

TEST_F(DBTest, EmptyKeyAndValue) {
  Open();
  ASSERT_TRUE(Put("", "empty-key-value").ok());
  EXPECT_EQ("empty-key-value", Get(""));
  ASSERT_TRUE(Put("empty-value", "").ok());
  EXPECT_EQ("", Get("empty-value"));
}

TEST_F(DBTest, WriteBatchAtomicity) {
  Open();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
}

TEST_F(DBTest, GetFromFlushedFile) {
  Open();
  ASSERT_TRUE(Put("persisted", "on-disk").ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ(1, NumFilesAtLevel(0));
  EXPECT_EQ("on-disk", Get("persisted"));
}

TEST_F(DBTest, RecoveryFromWal) {
  Open();
  ASSERT_TRUE(Put("durable", "value").ok());
  ASSERT_TRUE(Put("other", "data").ok());
  Reopen();  // WAL replay
  EXPECT_EQ("value", Get("durable"));
  EXPECT_EQ("data", Get("other"));
}

TEST_F(DBTest, RecoveryFromSstAndWal) {
  Open();
  ASSERT_TRUE(Put("in-sst", "flushed").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(Put("in-wal", "logged").ok());
  Reopen();
  EXPECT_EQ("flushed", Get("in-sst"));
  EXPECT_EQ("logged", Get("in-wal"));
}

TEST_F(DBTest, RecoveryPreservesDeletes) {
  Open();
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(Delete("k").ok());
  Reopen();
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(DBTest, MultipleReopens) {
  Open();
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(
          Put("key" + std::to_string(i), "round" + std::to_string(round))
              .ok());
    }
    Reopen();
    for (int i = 0; i < 100; i++) {
      EXPECT_EQ("round" + std::to_string(round),
                Get("key" + std::to_string(i)));
    }
  }
}

TEST_F(DBTest, CompactionTriggersAndPreservesData) {
  options_.write_buffer_size = 64 * 1024;
  Open();
  std::map<std::string, std::string> model;
  Random rnd(301);
  for (int i = 0; i < 5000; i++) {
    const std::string key = "key" + std::to_string(rnd.Uniform(2000));
    const std::string value =
        "value" + std::to_string(i) + std::string(100, 'x');
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key)) << key;
  }
}

TEST_F(DBTest, CompactRangeMovesDataDown) {
  options_.write_buffer_size = 64 * 1024;
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        Put("key" + std::to_string(i), std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  EXPECT_EQ(0, NumFilesAtLevel(0));
  int files_below = 0;
  for (int level = 1; level < 7; level++) {
    files_below += NumFilesAtLevel(level);
  }
  EXPECT_GT(files_below, 0);
  for (int i = 0; i < 2000; i++) {
    ASSERT_EQ(std::string(100, 'v'), Get("key" + std::to_string(i)));
  }
}

TEST_F(DBTest, IteratorFullScan) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%05d", i);
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(Put(key, model[key]).ok());
  }
  // Half in SSTs, half in memtable.
  ASSERT_TRUE(db_->Flush().ok());
  for (int i = 500; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%05d", i);
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(Put(key, model[key]).ok());
  }

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST_F(DBTest, IteratorHidesDeletions) {
  Open();
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("c", "3").ok());
  ASSERT_TRUE(Delete("b").ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  std::vector<std::string> keys;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    keys.push_back(iter->key().ToString());
  }
  EXPECT_EQ((std::vector<std::string>{"a", "c"}), keys);
}

TEST_F(DBTest, IteratorSeekAndPrev) {
  Open();
  for (char c = 'a'; c <= 'e'; c++) {
    ASSERT_TRUE(Put(std::string(1, c), "v").ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->Seek("c");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("c", iter->key().ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  iter->SeekToLast();
  EXPECT_EQ("e", iter->key().ToString());
}

TEST_F(DBTest, SnapshotIsolation) {
  Open();
  ASSERT_TRUE(Put("k", "before").ok());
  const Snapshot* snapshot = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "after").ok());

  ReadOptions with_snapshot;
  with_snapshot.snapshot = snapshot;
  std::string value;
  ASSERT_TRUE(db_->Get(with_snapshot, "k", &value).ok());
  EXPECT_EQ("before", value);
  EXPECT_EQ("after", Get("k"));
  db_->ReleaseSnapshot(snapshot);
}

TEST_F(DBTest, SnapshotSurvivesFlushAndCompaction) {
  Open();
  ASSERT_TRUE(Put("k", "old").ok());
  const Snapshot* snapshot = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "new").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  ReadOptions with_snapshot;
  with_snapshot.snapshot = snapshot;
  std::string value;
  ASSERT_TRUE(db_->Get(with_snapshot, "k", &value).ok());
  EXPECT_EQ("old", value);
  db_->ReleaseSnapshot(snapshot);
}

TEST_F(DBTest, GetProperty) {
  Open();
  std::string value;
  EXPECT_TRUE(db_->GetProperty("shield.num-files-at-level0", &value));
  EXPECT_TRUE(db_->GetProperty("shield.stats", &value));
  EXPECT_TRUE(db_->GetProperty("shield.sstables", &value));
  EXPECT_TRUE(db_->GetProperty("shield.approximate-memtable-bytes", &value));
  EXPECT_FALSE(db_->GetProperty("shield.nonexistent", &value));
  EXPECT_FALSE(db_->GetProperty("other.prefix", &value));
}

TEST_F(DBTest, CreateIfMissingFalse) {
  options_.create_if_missing = false;
  DB* db = nullptr;
  Status s = DB::Open(options_, "/nonexistent", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, db);
}

TEST_F(DBTest, ErrorIfExists) {
  Open();
  Close();
  options_.error_if_exists = true;
  DB* db = nullptr;
  Status s = DB::Open(options_, "/db", &db);
  EXPECT_FALSE(s.ok());
}

TEST_F(DBTest, DestroyDBRemovesEverything) {
  Open();
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  Close();
  ASSERT_TRUE(DestroyDB(options_, "/db").ok());
  std::vector<std::string> children;
  env_->GetChildren("/db", &children);
  EXPECT_TRUE(children.empty());
}

TEST_F(DBTest, ConcurrentWriters) {
  Open();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < 250; i++) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(Put(key, key + "-value").ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int t = 0; t < 4; t++) {
    for (int i = 0; i < 250; i++) {
      const std::string key =
          "t" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_EQ(key + "-value", Get(key));
    }
  }
}

TEST_F(DBTest, ReadWhileWriting) {
  Open();
  std::atomic<bool> done{false};
  std::thread writer([this, &done] {
    for (int i = 0; i < 2000; i++) {
      Put("w" + std::to_string(i), std::string(100, 'x'));
    }
    done.store(true);
  });
  int reads = 0;
  while (!done.load()) {
    Get("w" + std::to_string(reads % 2000));
    reads++;
  }
  writer.join();
  EXPECT_GT(reads, 0);
}

// --- Compaction styles (parameterized) ------------------------------------

class CompactionStyleTest
    : public ::testing::TestWithParam<CompactionStyle> {};

TEST_P(CompactionStyleTest, WriteHeavyWorkloadStaysCorrect) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.write_buffer_size = 32 * 1024;
  options.compaction_style = GetParam();
  options.level0_file_num_compaction_trigger = 4;
  // FIFO with a generous budget so nothing is dropped mid-test.
  options.fifo_max_table_files_size = 64 << 20;

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  std::map<std::string, std::string> model;
  Random rnd(7);
  for (int i = 0; i < 3000; i++) {
    const std::string key = "key" + std::to_string(rnd.Uniform(1000));
    const std::string value = "v" + std::to_string(i) + std::string(64, 'p');
    model[key] = value;
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
}

TEST_P(CompactionStyleTest, SurvivesReopen) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.write_buffer_size = 32 * 1024;
  options.compaction_style = GetParam();
  options.fifo_max_table_files_size = 64 << 20;

  {
    DB* raw_db = nullptr;
    ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
    std::unique_ptr<DB> db(raw_db);
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                          std::string(64, 'd'))
                      .ok());
    }
  }
  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);
  for (int i = 0; i < 1000; i++) {
    std::string value;
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok());
    EXPECT_EQ(std::string(64, 'd'), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Styles, CompactionStyleTest,
    ::testing::Values(CompactionStyle::kLeveled, CompactionStyle::kUniversal,
                      CompactionStyle::kFifo),
    [](const ::testing::TestParamInfo<CompactionStyle>& info) {
      switch (info.param) {
        case CompactionStyle::kLeveled:
          return "Leveled";
        case CompactionStyle::kUniversal:
          return "Universal";
        case CompactionStyle::kFifo:
          return "Fifo";
      }
      return "Unknown";
    });

TEST(FifoTest, DropsOldestFilesOverBudget) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.write_buffer_size = 32 * 1024;
  options.compaction_style = CompactionStyle::kFifo;
  options.fifo_max_table_files_size = 128 * 1024;  // tiny budget

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(64, 'f'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  db->WaitForIdle();  // let FIFO eviction run to completion
  std::string value;
  Status newest = db->Get(ReadOptions(), "key19999", &value);
  EXPECT_TRUE(newest.ok()) << newest.ToString();
  // The earliest keys should have been dropped with their files.
  int found = 0;
  for (int i = 0; i < 100; i++) {
    if (db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok()) {
      found++;
    }
  }
  EXPECT_LT(found, 100);
}

}  // namespace
}  // namespace shield
