#include "lsm/version_edit.h"

#include "gtest/gtest.h"
#include "lsm/file_names.h"

namespace shield {
namespace {

void CheckRoundTrip(const VersionEdit& edit) {
  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());
  std::string encoded2;
  parsed.EncodeTo(&encoded2);
  EXPECT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, EmptyEdit) {
  VersionEdit edit;
  CheckRoundTrip(edit);
}

TEST(VersionEditTest, FullEdit) {
  VersionEdit edit;
  edit.SetComparatorName("shield.BytewiseComparator");
  edit.SetLogNumber(7);
  edit.SetNextFile(42);
  edit.SetLastSequence(123456789);
  edit.AddFile(1, 10, 2048, InternalKey("aaa", 5, kTypeValue),
               InternalKey("zzz", 1, kTypeValue), 5);
  edit.AddFile(2, 11, 4096, InternalKey("bbb", 9, kTypeValue),
               InternalKey("ccc", 3, kTypeDeletion), 9);
  edit.RemoveFile(0, 8);
  edit.RemoveFile(3, 9);
  CheckRoundTrip(edit);
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\xff\xff\xff garbage")).ok());
}

TEST(VersionEditTest, DebugStringMentionsFields) {
  VersionEdit edit;
  edit.SetLogNumber(99);
  edit.AddFile(1, 10, 2048, InternalKey("a", 1, kTypeValue),
               InternalKey("b", 1, kTypeValue), 1);
  const std::string debug = edit.DebugString();
  EXPECT_NE(std::string::npos, debug.find("99"));
  EXPECT_NE(std::string::npos, debug.find("AddFile"));
}

// --- File names --------------------------------------------------------------

TEST(FileNamesTest, Construction) {
  EXPECT_EQ("/db/000007.log", LogFileName("/db", 7));
  EXPECT_EQ("/db/000042.sst", TableFileName("/db", 42));
  EXPECT_EQ("/db/MANIFEST-000003", DescriptorFileName("/db", 3));
  EXPECT_EQ("/db/CURRENT", CurrentFileName("/db"));
  EXPECT_EQ("/db/DEK_CACHE", DekCacheFileName("/db"));
}

TEST(FileNamesTest, ParseRoundTrip) {
  uint64_t number;
  DbFileType type;

  ASSERT_TRUE(ParseFileName("000007.log", &number, &type));
  EXPECT_EQ(7u, number);
  EXPECT_EQ(DbFileType::kLogFile, type);

  ASSERT_TRUE(ParseFileName("000042.sst", &number, &type));
  EXPECT_EQ(42u, number);
  EXPECT_EQ(DbFileType::kTableFile, type);

  ASSERT_TRUE(ParseFileName("MANIFEST-000003", &number, &type));
  EXPECT_EQ(3u, number);
  EXPECT_EQ(DbFileType::kDescriptorFile, type);

  ASSERT_TRUE(ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(DbFileType::kCurrentFile, type);

  ASSERT_TRUE(ParseFileName("DEK_CACHE", &number, &type));
  EXPECT_EQ(DbFileType::kDekCacheFile, type);

  ASSERT_TRUE(ParseFileName("000009.dbtmp", &number, &type));
  EXPECT_EQ(DbFileType::kTempFile, type);
}

TEST(FileNamesTest, ParseRejectsForeignNames) {
  uint64_t number;
  DbFileType type;
  EXPECT_FALSE(ParseFileName("", &number, &type));
  EXPECT_FALSE(ParseFileName("foo", &number, &type));
  EXPECT_FALSE(ParseFileName("foo.log", &number, &type));
  EXPECT_FALSE(ParseFileName("100.unknown", &number, &type));
  EXPECT_FALSE(ParseFileName("MANIFEST-", &number, &type));
  EXPECT_FALSE(ParseFileName("MANIFEST-xyz", &number, &type));
}

TEST(FileNamesTest, SetCurrentFile) {
  auto env = NewMemEnv();
  env->CreateDirIfMissing("/db");
  ASSERT_TRUE(SetCurrentFile(env.get(), "/db", 5).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), "/db/CURRENT", &contents).ok());
  EXPECT_EQ("MANIFEST-000005\n", contents);
}

}  // namespace
}  // namespace shield
