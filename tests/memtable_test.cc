#include "lsm/memtable.h"

#include <map>
#include <set>

#include "gtest/gtest.h"
#include "lsm/format.h"
#include "lsm/skiplist.h"
#include "lsm/write_batch.h"
#include "util/random.h"

namespace shield {
namespace {

// --- SkipList ----------------------------------------------------------

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

TEST(SkipListTest, InsertAndLookup) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  Random rnd(2000);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; i++) {
    const uint64_t key = rnd.Uniform(5000);
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }
  for (uint64_t i = 0; i < 5000; i++) {
    EXPECT_EQ(keys.count(i) > 0, list.Contains(i));
  }

  // Forward iteration yields sorted order.
  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (uint64_t key : keys) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(key, iter.key());
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());

  // Seek positions at the first key >= target.
  iter.Seek(2500);
  auto expected = keys.lower_bound(2500);
  if (expected == keys.end()) {
    EXPECT_FALSE(iter.Valid());
  } else {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*expected, iter.key());
  }

  // Backward iteration.
  iter.SeekToLast();
  for (auto rit = keys.rbegin(); rit != keys.rend(); ++rit) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*rit, iter.key());
    iter.Prev();
  }
  EXPECT_FALSE(iter.Valid());
}

// --- Internal key format -------------------------------------------------

TEST(FormatTest, InternalKeyEncodeDecode) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey("userkey", 42, kTypeValue));
  EXPECT_EQ(7u + 8u, encoded.size());

  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ("userkey", parsed.user_key.ToString());
  EXPECT_EQ(42u, parsed.sequence);
  EXPECT_EQ(kTypeValue, parsed.type);

  EXPECT_EQ("userkey", ExtractUserKey(encoded).ToString());
  EXPECT_EQ(42u, ExtractSequence(encoded));
  EXPECT_EQ(kTypeValue, ExtractValueType(encoded));
}

TEST(FormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator());
  // Same user key: higher sequence sorts first.
  InternalKey newer("k", 10, kTypeValue);
  InternalKey older("k", 5, kTypeValue);
  EXPECT_LT(icmp.Compare(newer.Encode(), older.Encode()), 0);
  // Different user keys: lexicographic.
  InternalKey a("a", 1, kTypeValue);
  InternalKey b("b", 100, kTypeValue);
  EXPECT_LT(icmp.Compare(a.Encode(), b.Encode()), 0);
  // Deletion sorts after value at same (key, seq).
  InternalKey del("k", 10, kTypeDeletion);
  EXPECT_LT(icmp.Compare(newer.Encode(), del.Encode()), 0);
}

TEST(FormatTest, ParseRejectsGarbage) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
}

TEST(FormatTest, LookupKeyViews) {
  LookupKey lkey("thekey", 99);
  EXPECT_EQ("thekey", lkey.user_key().ToString());
  EXPECT_EQ("thekey", ExtractUserKey(lkey.internal_key()).ToString());
  EXPECT_EQ(99u, ExtractSequence(lkey.internal_key()));
  // memtable key = varint length prefix + internal key.
  EXPECT_GT(lkey.memtable_key().size(), lkey.internal_key().size());
}

TEST(FormatTest, LookupKeyLongKeyHeapPath) {
  const std::string long_key(5000, 'k');
  LookupKey lkey(long_key, 7);
  EXPECT_EQ(long_key, lkey.user_key().ToString());
}

// --- MemTable --------------------------------------------------------------

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  bool Get(const std::string& key, SequenceNumber seq, std::string* value,
           Status* s) {
    LookupKey lkey(key, seq);
    return mem_->Get(lkey, value, s);
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, AddAndGet) {
  mem_->Add(1, kTypeValue, "key1", "value1");
  mem_->Add(2, kTypeValue, "key2", "value2");

  std::string value;
  Status s;
  ASSERT_TRUE(Get("key1", 10, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("value1", value);

  EXPECT_FALSE(Get("key3", 10, &value, &s));
  EXPECT_EQ(2u, mem_->NumEntries());
}

TEST_F(MemTableTest, SequenceVisibility) {
  mem_->Add(5, kTypeValue, "k", "v5");
  mem_->Add(10, kTypeValue, "k", "v10");

  std::string value;
  Status s;
  // Snapshot at seq 7 sees v5.
  ASSERT_TRUE(Get("k", 7, &value, &s));
  EXPECT_EQ("v5", value);
  // Snapshot at 20 sees the newest.
  ASSERT_TRUE(Get("k", 20, &value, &s));
  EXPECT_EQ("v10", value);
  // Snapshot at 3 predates the key entirely.
  EXPECT_FALSE(Get("k", 3, &value, &s));
}

TEST_F(MemTableTest, DeletionTombstone) {
  mem_->Add(1, kTypeValue, "k", "v");
  mem_->Add(2, kTypeDeletion, "k", "");

  std::string value;
  Status s;
  ASSERT_TRUE(Get("k", 10, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  // But the old version remains visible to older snapshots.
  ASSERT_TRUE(Get("k", 1, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("v", value);
}

TEST_F(MemTableTest, IteratorSortedOrder) {
  mem_->Add(3, kTypeValue, "c", "3");
  mem_->Add(1, kTypeValue, "a", "1");
  mem_->Add(2, kTypeValue, "b", "2");

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();
  std::vector<std::string> keys;
  while (iter->Valid()) {
    keys.push_back(ExtractUserKey(iter->key()).ToString());
    iter->Next();
  }
  EXPECT_EQ((std::vector<std::string>{"a", "b", "c"}), keys);
}

TEST_F(MemTableTest, EmptyValue) {
  mem_->Add(1, kTypeValue, "k", "");
  std::string value = "sentinel";
  Status s;
  ASSERT_TRUE(Get("k", 10, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("", value);
}

TEST_F(MemTableTest, MemoryGrowsWithInserts) {
  const size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

// --- WriteBatch --------------------------------------------------------------

TEST(WriteBatchTest, CountAndSequence) {
  WriteBatch batch;
  EXPECT_EQ(0, batch.Count());
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  EXPECT_EQ(3, batch.Count());
  batch.SetSequence(100);
  EXPECT_EQ(100u, batch.Sequence());
}

TEST(WriteBatchTest, InsertIntoMemTable) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();

  WriteBatch batch;
  batch.Put("a", "va");
  batch.Put("b", "vb");
  batch.Delete("a");
  batch.SetSequence(10);
  ASSERT_TRUE(batch.InsertInto(mem).ok());

  std::string value;
  Status s;
  LookupKey la("a", 100);
  ASSERT_TRUE(mem->Get(la, &value, &s));
  EXPECT_TRUE(s.IsNotFound());  // deleted at seq 12
  LookupKey lb("b", 100);
  ASSERT_TRUE(mem->Get(lb, &value, &s));
  EXPECT_EQ("vb", value);

  mem->Unref();
}

TEST(WriteBatchTest, AppendMergesBatches) {
  WriteBatch a, b;
  a.Put("x", "1");
  b.Put("y", "2");
  b.Delete("z");
  a.Append(b);
  EXPECT_EQ(3, a.Count());

  struct Collector : public WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(const Slice& key, const Slice& value) override {
      ops.push_back("put:" + key.ToString() + "=" + value.ToString());
    }
    void Delete(const Slice& key) override {
      ops.push_back("del:" + key.ToString());
    }
  };
  Collector collector;
  ASSERT_TRUE(a.Iterate(&collector).ok());
  EXPECT_EQ((std::vector<std::string>{"put:x=1", "put:y=2", "del:z"}),
            collector.ops);
}

TEST(WriteBatchTest, CorruptContentsRejected) {
  WriteBatch batch;
  batch.Put("k", "v");
  std::string contents = batch.Contents().ToString();
  contents[12] = '\x7f';  // invalid record tag
  WriteBatch corrupt;
  corrupt.SetContents(contents);
  struct NullHandler : public WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  };
  NullHandler handler;
  // Either a parse failure or a count mismatch — must not be OK.
  EXPECT_FALSE(corrupt.Iterate(&handler).ok());
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.Clear();
  EXPECT_EQ(0, batch.Count());
  EXPECT_EQ(12u, batch.ApproximateSize());  // header only
}

}  // namespace
}  // namespace shield
