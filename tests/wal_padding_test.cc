// WAL record padding (EncryptionOptions::wal_padding_buckets) at the
// DB level: padded, encrypted WALs must replay identically on crash
// recovery and on read-only replica catch-up — the padding envelope is
// a wire format detail that must never change what a reader recovers.
// Exercised across bucket ladders × both WAL formats (v1 CTR-only and
// v2 authenticated), with ticker assertions proving the padding was
// actually on the wire.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "lsm/write_batch.h"
#include "test_util.h"
#include "util/random.h"
#include "util/statistics.h"

namespace shield {
namespace {

// Copies every file under `dir` from one env to another while the
// source DB is still open — the on-disk state a crash would leave.
void SnapshotFiles(Env* from, Env* to, const std::string& dir) {
  to->CreateDirIfMissing(dir);
  std::vector<std::string> children;
  ASSERT_TRUE(from->GetChildren(dir, &children).ok());
  for (const std::string& child : children) {
    std::string contents;
    if (ReadFileToString(from, dir + "/" + child, &contents).ok()) {
      ASSERT_TRUE(
          WriteStringToFile(to, contents, dir + "/" + child, false).ok());
    }
  }
}

struct PaddingParam {
  std::vector<uint32_t> buckets;
  bool authenticate;
  const char* name;
};

class WalPaddingTest : public ::testing::TestWithParam<PaddingParam> {
 protected:
  WalPaddingTest() : env_(NewMemEnv()), kds_(std::make_shared<LocalKds>()) {}

  Options MakeOptions(Env* env) {
    Options options;
    options.env = env;
    options.write_buffer_size = 256 * 1024;  // keep everything in the WAL
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    options.encryption.encrypt_wal = true;
    options.encryption.authenticate_blocks = GetParam().authenticate;
    options.encryption.wal_padding_buckets = GetParam().buckets;
    options.statistics = stats_;
    return options;
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<LocalKds> kds_;
  std::shared_ptr<Statistics> stats_ = CreateDBStatistics();
};

// Crash mid-stream (storage snapshot of a live DB, no clean close) and
// recover from the copy: every synced write survives WAL replay, and
// the padding tickers prove padded records were what got replayed.
TEST_P(WalPaddingTest, CrashRecoveryReplaysPaddedWal) {
  // Declared before the DBs so it outlives the recovered instance.
  auto crashed_env = NewMemEnv();

  Options options = MakeOptions(env_.get());
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions synced;
  synced.sync = true;
  std::map<std::string, std::string> model;
  Random rnd(GetParam().authenticate ? 11 : 23);
  for (int i = 0; i < 400; i++) {
    const std::string key = "key" + std::to_string(i);
    // Spread values across bucket boundaries (and past the largest
    // bucket) so every padding path is on the replayed wire.
    const std::string value(1 + rnd.Uniform(6000), 'a' + i % 26);
    ASSERT_TRUE(db->Put(synced, key, value).ok());
    model[key] = value;
  }
  EXPECT_GT(stats_->GetTickerCount(Tickers::kShieldWalPaddingRecords), 0u);
  EXPECT_GT(stats_->GetTickerCount(Tickers::kShieldWalPaddingBytes), 0u);

  SnapshotFiles(env_.get(), crashed_env.get(), "/db");
  db.reset();

  Options recover_options = MakeOptions(crashed_env.get());
  raw = nullptr;
  Status s = DB::Open(recover_options, "/db", &raw);
  ASSERT_TRUE(s.ok()) << s.ToString();
  db.reset(raw);
  for (const auto& kv : model) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), kv.first, &value).ok())
        << "lost synced key " << kv.first;
    EXPECT_EQ(kv.second, value);
  }
}

// Clean close without a flush: reopening replays the padded WAL from
// its beginning (the padding-strip path with no torn tail).
TEST_P(WalPaddingTest, ReopenReplaysPaddedWal) {
  Options options = MakeOptions(env_.get());
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string value(32 + (i * 97) % 3000, 'b' + i % 20);
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  db.reset();

  raw = nullptr;
  ASSERT_TRUE(DB::Open(MakeOptions(env_.get()), "/db", &raw).ok());
  db.reset(raw);
  for (const auto& kv : model) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), kv.first, &value).ok())
        << "lost key " << kv.first;
    EXPECT_EQ(kv.second, value);
  }
}

// A read-only replica catching up over the writer's live padded WAL:
// TryCatchUp re-reads the encrypted WAL; every batch must come through
// whole with the padding stripped.
TEST_P(WalPaddingTest, ReplicaCatchUpOverPaddedWal) {
  Options options = MakeOptions(env_.get());
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> writer(raw);
  ASSERT_TRUE(writer->Flush().ok());  // publish an initial manifest

  raw = nullptr;
  ASSERT_TRUE(DB::OpenReadOnly(MakeOptions(env_.get()), "/db", &raw).ok());
  std::unique_ptr<DB> replica(raw);

  std::map<std::string, std::string> model;
  for (int round = 0; round < 4; round++) {
    WriteBatch batch;
    for (int i = 0; i < 50; i++) {
      const std::string key =
          "r" + std::to_string(round) + "-key" + std::to_string(i);
      const std::string value(16 + (i * 131) % 4500, 'c' + i % 20);
      batch.Put(key, value);
      model[key] = value;
    }
    // Synced: the WAL encryption buffer (Section 5.3) only guarantees
    // bytes are on the wire after a sync, and the replica can only
    // catch up to what is physically on the wire.
    WriteOptions synced;
    synced.sync = true;
    ASSERT_TRUE(writer->Write(synced, &batch).ok());

    ASSERT_TRUE(replica->TryCatchUp().ok());
    for (const auto& kv : model) {
      std::string value;
      ASSERT_TRUE(replica->Get(ReadOptions(), kv.first, &value).ok())
          << "replica missing " << kv.first << " after round " << round;
      EXPECT_EQ(kv.second, value);
    }
  }
  EXPECT_GT(stats_->GetTickerCount(Tickers::kShieldWalPaddingRecords), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, WalPaddingTest,
    ::testing::Values(
        PaddingParam{{256}, true, "auth_single256"},
        PaddingParam{{4096}, true, "auth_single4k"},
        PaddingParam{{64, 256, 1024, 4096}, true, "auth_ladder"},
        PaddingParam{{64, 256, 1024, 4096}, false, "v1_ladder"},
        PaddingParam{{512}, false, "v1_single512"}),
    [](const ::testing::TestParamInfo<PaddingParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace shield
