#ifndef SHIELD_TESTS_TEST_UTIL_H_
#define SHIELD_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "env/env.h"
#include "gtest/gtest.h"

namespace shield {
namespace test {

/// Creates a fresh scratch directory under /tmp for a test and removes
/// it (recursively, one level) on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) {
    static int counter = 0;
    char buf[256];
    snprintf(buf, sizeof(buf), "/tmp/shield_test_%s_%d_%d", name.c_str(),
             getpid(), counter++);
    path_ = buf;
    Cleanup();
    Env::Default()->CreateDirIfMissing(path_);
  }

  ~ScratchDir() { Cleanup(); }

  const std::string& path() const { return path_; }

 private:
  void Cleanup() {
    Env* env = Env::Default();
    std::vector<std::string> children;
    if (env->GetChildren(path_, &children).ok()) {
      for (const std::string& child : children) {
        env->RemoveFile(path_ + "/" + child);
      }
    }
    env->RemoveDir(path_);
  }

  std::string path_;
};

/// Hex decode helper for test vectors.
inline std::string FromHex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return 0;
  };
  std::string out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

inline std::string ToHex(const std::string& data) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (unsigned char c : data) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace test
}  // namespace shield

#endif  // SHIELD_TESTS_TEST_UTIL_H_
