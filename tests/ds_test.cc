#include <memory>

#include "ds/compaction_worker.h"
#include "ds/network_sim.h"
#include "ds/storage_service.h"
#include "gtest/gtest.h"
#include "kds/sim_kds.h"
#include "lsm/db.h"
#include "sim/sim_clock.h"
#include "test_util.h"
#include "util/clock.h"
#include "util/random.h"

namespace shield {
namespace {

// --- NetworkSimulator --------------------------------------------------------

TEST(NetworkSimTest, RttApplied) {
  NetworkSimOptions options;
  options.rtt_micros = 2000;
  options.bandwidth_bytes_per_sec = 1'000'000'000;
  NetworkSimulator net(options);

  const uint64_t t0 = NowMicros();
  net.SimulateTransfer(0, /*pay_rtt=*/true);
  EXPECT_GE(NowMicros() - t0, 1500u);
  EXPECT_EQ(1u, net.total_requests());
}

TEST(NetworkSimTest, BandwidthSerialization) {
  NetworkSimOptions options;
  options.rtt_micros = 0;
  options.bandwidth_bytes_per_sec = 10'000'000;  // 10 MB/s
  NetworkSimulator net(options);

  // 100 KB at 10 MB/s = 10ms.
  const uint64_t t0 = NowMicros();
  net.SimulateTransfer(100'000, /*pay_rtt=*/false);
  const uint64_t elapsed = NowMicros() - t0;
  EXPECT_GE(elapsed, 8000u);
  EXPECT_EQ(100'000u, net.total_bytes());
}

TEST(NetworkSimTest, RuntimeReconfiguration) {
  NetworkSimOptions options;
  options.rtt_micros = 0;
  options.bandwidth_bytes_per_sec = 1'000'000'000;
  NetworkSimulator net(options);
  net.set_rtt_micros(3000);
  EXPECT_EQ(3000u, net.rtt_micros());
  net.set_bandwidth_bytes_per_sec(0);  // clamped, no div-by-zero
  EXPECT_EQ(1u, net.bandwidth_bytes_per_sec());
}

// --- Partition windows (virtual time) ----------------------------------------
//
// These run on a SimClock so window arithmetic is exact: the simulator
// installs the clock process-wide, and the NetworkSimulator (built with
// clock = nullptr) picks it up through SystemClock().

class NetworkPartitionTest : public ::testing::Test {
 protected:
  NetworkPartitionTest() : override_(&clock_) {
    NetworkSimOptions options;
    options.rtt_micros = 0;
    options.bandwidth_bytes_per_sec = 1'000'000'000'000;
    net_ = std::make_unique<NetworkSimulator>(options);
  }

  sim::SimClock clock_;
  ScopedClockOverride override_;
  std::unique_ptr<NetworkSimulator> net_;
};

TEST_F(NetworkPartitionTest, TimedWindowHealsOnDeadline) {
  net_->StartPartitionFor(1000);
  EXPECT_TRUE(net_->partitioned());
  EXPECT_FALSE(net_->TryTransfer(10, false).ok());
  clock_.AdvanceBy(999);
  EXPECT_TRUE(net_->partitioned());
  clock_.AdvanceBy(2);
  EXPECT_FALSE(net_->partitioned());
  EXPECT_TRUE(net_->TryTransfer(10, false).ok());
}

TEST_F(NetworkPartitionTest, ShorterRearmNeverShortensActiveWindow) {
  // Regression test: re-arming used to overwrite the deadline, so a
  // short second window would heal the link early and sends queued
  // behind the first window slipped through before its deadline.
  net_->StartPartitionFor(1000);
  net_->StartPartitionFor(200);  // must NOT pull 1000 down to 200
  clock_.AdvanceBy(500);
  EXPECT_TRUE(net_->partitioned());
  EXPECT_FALSE(net_->TryTransfer(10, false).ok());
  clock_.AdvanceBy(600);  // past the original deadline
  EXPECT_FALSE(net_->partitioned());
}

TEST_F(NetworkPartitionTest, LongerRearmExtendsActiveWindow) {
  net_->StartPartitionFor(500);
  clock_.AdvanceBy(300);
  net_->StartPartitionFor(500);  // now until t=800
  clock_.AdvanceBy(300);         // t=600: original window would have healed
  EXPECT_TRUE(net_->partitioned());
  clock_.AdvanceBy(250);  // t=850
  EXPECT_FALSE(net_->partitioned());
}

TEST_F(NetworkPartitionTest, TimedRearmNeverDowngradesUnboundedPartition) {
  net_->StartPartition();  // unbounded: only HealPartition() ends it
  net_->StartPartitionFor(10);
  clock_.AdvanceBy(1'000'000);
  EXPECT_TRUE(net_->partitioned());
  EXPECT_FALSE(net_->TryTransfer(10, false).ok());
  net_->HealPartition();
  EXPECT_FALSE(net_->partitioned());
  EXPECT_TRUE(net_->TryTransfer(10, false).ok());
}

TEST_F(NetworkPartitionTest, HealThenRearmStartsAFreshWindow) {
  net_->StartPartitionFor(1000);
  net_->HealPartition();
  EXPECT_FALSE(net_->partitioned());
  // A stale (already-healed) window must not linger in the deadline.
  net_->StartPartitionFor(100);
  EXPECT_TRUE(net_->partitioned());
  clock_.AdvanceBy(150);
  EXPECT_FALSE(net_->partitioned());
}

// --- RemoteEnv over StorageService --------------------------------------------

class RemoteEnvTest : public ::testing::Test {
 protected:
  RemoteEnvTest() : backing_(NewMemEnv()) {
    NetworkSimOptions net;
    net.rtt_micros = 0;  // keep tests fast
    net.bandwidth_bytes_per_sec = 10ull << 30;
    service_ = std::make_unique<StorageService>(backing_.get(), net);
    remote_ = NewRemoteEnv(service_.get(), &client_stats_);
  }

  std::unique_ptr<Env> backing_;
  std::unique_ptr<StorageService> service_;
  IoStats client_stats_;
  std::unique_ptr<Env> remote_;
};

TEST_F(RemoteEnvTest, SharedNamespace) {
  ASSERT_TRUE(
      WriteStringToFile(remote_.get(), "remote data", "/shared/f", true).ok());
  // Visible from the storage server side and from another client.
  std::string contents;
  ASSERT_TRUE(
      ReadFileToString(service_->server_env(), "/shared/f", &contents).ok());
  EXPECT_EQ("remote data", contents);

  auto second_client = NewRemoteEnv(service_.get(), nullptr);
  contents.clear();
  ASSERT_TRUE(
      ReadFileToString(second_client.get(), "/shared/f", &contents).ok());
  EXPECT_EQ("remote data", contents);
}

TEST_F(RemoteEnvTest, TrafficAccounted) {
  ASSERT_TRUE(WriteStringToFile(remote_.get(), std::string(5000, 'x'),
                                "/d/000001.sst", false)
                  .ok());
  EXPECT_EQ(5000u, client_stats_.WriteBytes(FileKind::kSst));
  EXPECT_EQ(1u, client_stats_.WriteOps(FileKind::kSst));
  EXPECT_EQ(5000u, service_->media_stats()->WriteBytes(FileKind::kSst));
  EXPECT_EQ(5000u, service_->network()->total_bytes());
}

TEST_F(RemoteEnvTest, StatisticsSinkSeesFabricTraffic) {
  auto stats = CreateDBStatistics();
  service_->SetStatisticsSink(stats.get());
  ASSERT_TRUE(WriteStringToFile(remote_.get(), std::string(4096, 'y'),
                                "/d/000002.sst", false)
                  .ok());
  EXPECT_GE(stats->GetTickerCount(Tickers::kDsNetworkBytes), 4096u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kDsNetworkRequests), 0u);
  // Server-side media I/O lands on the same registry's io.* tickers.
  EXPECT_GE(stats->GetTickerCount(Tickers::kIoSstWriteBytes), 4096u);
  service_->SetStatisticsSink(nullptr);
}

TEST_F(RemoteEnvTest, DbRunsOverRemoteStorage) {
  Options options;
  options.env = remote_.get();
  options.write_buffer_size = 64 * 1024;
  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/dsdb", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(100, 'd'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key123", &value).ok());
  EXPECT_EQ(std::string(100, 'd'), value);
  EXPECT_GT(service_->network()->total_bytes(), 0u);
}

// --- Offloaded compaction -------------------------------------------------------

class OffloadTest : public ::testing::Test {
 protected:
  OffloadTest() : backing_(NewMemEnv()) {
    NetworkSimOptions net;
    net.rtt_micros = 0;
    net.bandwidth_bytes_per_sec = 10ull << 30;
    service_ = std::make_unique<StorageService>(backing_.get(), net);
    compute_env_ = NewRemoteEnv(service_.get(), nullptr);

    kds_ = std::make_shared<SimKds>(SimKdsOptions{
        .request_latency_us = 0,
        .one_time_provisioning = false,
        .require_authorization = true});
    kds_->AuthorizeServer("primary");
    kds_->AuthorizeServer("worker");
  }

  Options DbOptions() {
    Options options;
    options.env = compute_env_.get();
    options.write_buffer_size = 32 * 1024;
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    options.encryption.server_id = "primary";
    return options;
  }

  void StartWorker(const Options& db_options) {
    RemoteCompactionWorker::WorkerOptions worker_options;
    // The worker runs on the storage server: direct (no network) env.
    worker_options.env = service_->server_env();
    worker_options.db_options = db_options;
    worker_options.db_options.env = service_->server_env();
    worker_options.db_options.encryption.server_id = "worker";
    worker_options.server_id = "worker";
    worker_ = std::make_unique<RemoteCompactionWorker>(worker_options);
  }

  std::unique_ptr<Env> backing_;
  std::unique_ptr<StorageService> service_;
  std::unique_ptr<Env> compute_env_;
  std::shared_ptr<SimKds> kds_;
  std::unique_ptr<RemoteCompactionWorker> worker_;
};

TEST_F(OffloadTest, CompactionRunsOnWorker) {
  Options options = DbOptions();
  StartWorker(options);
  options.compaction_service = worker_.get();

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/dsdb", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  std::map<std::string, std::string> model;
  Random rnd(13);
  for (int i = 0; i < 4000; i++) {
    const std::string key = "key" + std::to_string(rnd.Uniform(1200));
    const std::string value = "value" + std::to_string(i) + std::string(80, 'o');
    model[key] = value;
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());
  db->WaitForIdle();

  EXPECT_GT(worker_->jobs_run(), 0u);
  // The worker resolved input DEKs + created output DEKs via the KDS.
  EXPECT_GT(worker_->kds_requests(), 0u);

  // The primary reads the worker's outputs (resolving their DEK-IDs
  // through the KDS).
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
}

TEST_F(OffloadTest, UnauthorizedWorkerFails) {
  Options options = DbOptions();
  // Keep background compaction out of the way so the revocation only
  // affects the manual compaction below.
  options.level0_file_num_compaction_trigger = 1000;
  StartWorker(options);
  options.compaction_service = worker_.get();

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/dsdb", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i % 500),
                        std::string(100, 'u'))
                    .ok());
  }
  // Breach detected: the KDS revokes the worker. The offloaded
  // compaction must fail — the worker can no longer resolve or create
  // DEKs.
  kds_->RevokeServer("worker");
  Status s = db->CompactRange(nullptr, nullptr);
  EXPECT_FALSE(s.ok());
}

TEST_F(OffloadTest, WorkerOnPlaintextDb) {
  // Offloaded compaction also works without encryption.
  Options options;
  options.env = compute_env_.get();
  options.write_buffer_size = 32 * 1024;
  RemoteCompactionWorker::WorkerOptions worker_options;
  worker_options.env = service_->server_env();
  worker_options.db_options = options;
  worker_options.db_options.env = service_->server_env();
  worker_ = std::make_unique<RemoteCompactionWorker>(worker_options);
  options.compaction_service = worker_.get();

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/plaindb", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i % 700),
                        std::string(90, 'p'))
                    .ok());
  }
  ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());
  EXPECT_GT(worker_->jobs_run(), 0u);
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key69", &value).ok());
}

// --- Read-only instances ----------------------------------------------------------

TEST_F(OffloadTest, ReadOnlyInstanceSharesStorage) {
  Options options = DbOptions();
  DB* raw_primary = nullptr;
  ASSERT_TRUE(DB::Open(options, "/dsdb", &raw_primary).ok());
  std::unique_ptr<DB> primary(raw_primary);

  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(primary->Put(WriteOptions(), "key" + std::to_string(i),
                             "generation-1")
                    .ok());
  }
  ASSERT_TRUE(primary->Flush().ok());

  // A read-only instance on another "server" (its own remote env and
  // KDS identity).
  auto reader_env = NewRemoteEnv(service_.get(), nullptr);
  kds_->AuthorizeServer("reader");
  Options reader_options = options;
  reader_options.env = reader_env.get();
  reader_options.encryption.server_id = "reader";
  DB* raw_reader = nullptr;
  ASSERT_TRUE(DB::OpenReadOnly(reader_options, "/dsdb", &raw_reader).ok());
  std::unique_ptr<DB> reader(raw_reader);

  std::string value;
  ASSERT_TRUE(reader->Get(ReadOptions(), "key7", &value).ok());
  EXPECT_EQ("generation-1", value);

  // Writes are rejected.
  EXPECT_TRUE(reader->Put(WriteOptions(), "x", "y").IsNotSupported());

  // Primary keeps writing; reader catches up on demand.
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(primary->Put(WriteOptions(), "key" + std::to_string(i),
                             "generation-2")
                    .ok());
  }
  ASSERT_TRUE(primary->Flush().ok());
  ASSERT_TRUE(reader->TryCatchUp().ok());
  ASSERT_TRUE(reader->Get(ReadOptions(), "key7", &value).ok());
  EXPECT_EQ("generation-2", value);
}

TEST(ReadOnlyTest, OpenMissingDbFails) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  DB* db = nullptr;
  EXPECT_FALSE(DB::OpenReadOnly(options, "/missing", &db).ok());
  EXPECT_EQ(nullptr, db);
}

TEST(ReadOnlyTest, SeesWalTailOfPrimary) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  DB* raw_primary = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_primary).ok());
  std::unique_ptr<DB> primary(raw_primary);
  // Unflushed data living only in the (synced) WAL.
  WriteOptions sync_options;
  sync_options.sync = true;
  ASSERT_TRUE(primary->Put(sync_options, "wal-only", "visible").ok());

  DB* raw_reader = nullptr;
  ASSERT_TRUE(DB::OpenReadOnly(options, "/db", &raw_reader).ok());
  std::unique_ptr<DB> reader(raw_reader);
  std::string value;
  ASSERT_TRUE(reader->Get(ReadOptions(), "wal-only", &value).ok());
  EXPECT_EQ("visible", value);
}

}  // namespace
}  // namespace shield
