// Property-based tests: a randomized operation stream is applied both
// to the DB and to an in-memory reference model (std::map); the two
// must agree at every checkpoint, across engines, compaction styles,
// flushes, manual compactions, iterators and reopens.

#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

struct PropertyParam {
  EncryptionMode mode;
  CompactionStyle style;
  size_t wal_buffer_size;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name;
  switch (info.param.mode) {
    case EncryptionMode::kNone:
      name += "Plain";
      break;
    case EncryptionMode::kEncFS:
      name += "EncFS";
      break;
    case EncryptionMode::kShield:
      name += "Shield";
      break;
  }
  switch (info.param.style) {
    case CompactionStyle::kLeveled:
      name += "Leveled";
      break;
    case CompactionStyle::kUniversal:
      name += "Universal";
      break;
    case CompactionStyle::kFifo:
      name += "Fifo";
      break;
  }
  name += "Seed" + std::to_string(info.param.seed);
  return name;
}

class DbModelTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  DbModelTest() : env_(NewMemEnv()) {}

  Options MakeOptions() {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 16 * 1024;  // force frequent flushes
    options.level0_file_num_compaction_trigger = 3;
    options.compaction_style = GetParam().style;
    options.fifo_max_table_files_size = 1ull << 30;  // never drop data
    options.encryption.mode = GetParam().mode;
    options.encryption.wal_buffer_size = GetParam().wal_buffer_size;
    if (GetParam().mode == EncryptionMode::kEncFS) {
      options.encryption.instance_key = std::string(16, 'p');
    }
    if (GetParam().mode == EncryptionMode::kShield) {
      if (kds_ == nullptr) {
        kds_ = std::make_shared<LocalKds>();
      }
      options.encryption.kds = kds_;
    }
    return options;
  }

  void Open() {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(MakeOptions(), "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void CheckModelMatches(const std::map<std::string, std::string>& model) {
    // Point lookups for every model key plus some absent probes.
    for (const auto& [key, value] : model) {
      std::string got;
      Status s = db_->Get(ReadOptions(), key, &got);
      ASSERT_TRUE(s.ok()) << "missing " << key << ": " << s.ToString();
      ASSERT_EQ(value, got) << key;
    }
    // Full scan equality (order + content), both directions.
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    iter->SeekToFirst();
    for (const auto& [key, value] : model) {
      ASSERT_TRUE(iter->Valid()) << "iterator ended before " << key;
      ASSERT_EQ(key, iter->key().ToString());
      ASSERT_EQ(value, iter->value().ToString());
      iter->Next();
    }
    ASSERT_FALSE(iter->Valid()) << "iterator has extra keys";

    iter->SeekToLast();
    for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
      ASSERT_TRUE(iter->Valid()) << "reverse scan ended before "
                                 << rit->first;
      ASSERT_EQ(rit->first, iter->key().ToString());
      ASSERT_EQ(rit->second, iter->value().ToString());
      iter->Prev();
    }
    ASSERT_FALSE(iter->Valid()) << "reverse scan has extra keys";
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<Kds> kds_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbModelTest, RandomOpsMatchReferenceModel) {
  Open();
  Random rnd(GetParam().seed);
  std::map<std::string, std::string> model;

  const int kOps = 4000;
  for (int i = 0; i < kOps; i++) {
    const int op = static_cast<int>(rnd.Uniform(100));
    const std::string key = "key" + std::to_string(rnd.Uniform(400));
    if (op < 60) {
      // Put with variable-size value.
      const std::string value =
          std::to_string(i) + std::string(rnd.Uniform(300), 'v');
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    } else if (op < 80) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else if (op < 90) {
      // Batched update.
      WriteBatch batch;
      for (int j = 0; j < 5; j++) {
        const std::string bkey = "key" + std::to_string(rnd.Uniform(400));
        if (rnd.OneIn(4)) {
          batch.Delete(bkey);
          model.erase(bkey);
        } else {
          batch.Put(bkey, "batched" + std::to_string(i * 10 + j));
          model[bkey] = "batched" + std::to_string(i * 10 + j);
        }
      }
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
    } else if (op < 95) {
      // Point check of a random key.
      std::string got;
      Status s = db_->Get(ReadOptions(), key, &got);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << key << " " << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
        ASSERT_EQ(it->second, got);
      }
    } else if (op < 98) {
      ASSERT_TRUE(db_->Flush().ok());
    } else {
      ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
    }
  }
  CheckModelMatches(model);
}

TEST_P(DbModelTest, ModelSurvivesReopens) {
  Open();
  Random rnd(GetParam().seed + 999);
  std::map<std::string, std::string> model;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 800; i++) {
      const std::string key = "key" + std::to_string(rnd.Uniform(300));
      if (rnd.OneIn(5)) {
        model.erase(key);
        ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
      } else {
        const std::string value =
            "r" + std::to_string(round) + "-" + std::to_string(i);
        model[key] = value;
        ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      }
    }
    Open();  // reopen mid-stream: recovery must preserve the model
    CheckModelMatches(model);
  }
}

TEST_P(DbModelTest, SnapshotReadsAreFrozen) {
  Open();
  Random rnd(GetParam().seed + 7);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; i++) {
    const std::string key = "key" + std::to_string(i);
    model[key] = "initial";
    ASSERT_TRUE(db_->Put(WriteOptions(), key, "initial").ok());
  }
  const Snapshot* snapshot = db_->GetSnapshot();
  const std::map<std::string, std::string> frozen = model;

  for (int i = 0; i < 300; i++) {
    if (rnd.OneIn(2)) {
      const std::string key = "key" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, "mutated").ok());
      model[key] = "mutated";
    }
  }
  ASSERT_TRUE(db_->Flush().ok());

  ReadOptions snapshot_reads;
  snapshot_reads.snapshot = snapshot;
  for (const auto& [key, value] : frozen) {
    std::string got;
    ASSERT_TRUE(db_->Get(snapshot_reads, key, &got).ok());
    ASSERT_EQ(value, got) << key;
  }
  db_->ReleaseSnapshot(snapshot);
  CheckModelMatches(model);
}

INSTANTIATE_TEST_SUITE_P(
    EngineMatrix, DbModelTest,
    ::testing::Values(
        PropertyParam{EncryptionMode::kNone, CompactionStyle::kLeveled, 0, 1},
        PropertyParam{EncryptionMode::kNone, CompactionStyle::kUniversal, 0,
                      2},
        PropertyParam{EncryptionMode::kNone, CompactionStyle::kFifo, 0, 3},
        PropertyParam{EncryptionMode::kEncFS, CompactionStyle::kLeveled, 0,
                      4},
        PropertyParam{EncryptionMode::kEncFS, CompactionStyle::kLeveled, 512,
                      5},
        PropertyParam{EncryptionMode::kShield, CompactionStyle::kLeveled, 0,
                      6},
        PropertyParam{EncryptionMode::kShield, CompactionStyle::kLeveled, 512,
                      7},
        PropertyParam{EncryptionMode::kShield, CompactionStyle::kUniversal,
                      512, 8},
        PropertyParam{EncryptionMode::kShield, CompactionStyle::kFifo, 512,
                      9}),
    ParamName);

}  // namespace
}  // namespace shield
