#include <map>

#include "gtest/gtest.h"
#include "lsm/block.h"
#include "lsm/block_builder.h"
#include "lsm/cache.h"
#include "lsm/sst_builder.h"
#include "lsm/sst_reader.h"
#include "lsm/table_format.h"
#include "util/random.h"

namespace shield {
namespace {

// --- BlockBuilder / Block ------------------------------------------------

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder;
  Slice raw = builder.Finish();
  std::string copy = raw.ToString();
  Block block(copy.data(), copy.size(), /*owned=*/false);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, RoundTripAndSeek) {
  std::map<std::string, std::string> model;
  BlockBuilder builder(/*restart_interval=*/4);
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    const std::string value = "value" + std::to_string(i);
    builder.Add(key, value);
    model[key] = value;
  }
  const std::string raw = builder.Finish().ToString();
  Block block(raw.data(), raw.size(), /*owned=*/false);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));

  // Full forward scan.
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Seeks.
  iter->Seek("key0050");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0050", iter->key().ToString());
  iter->Seek("key0050x");  // between keys
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0051", iter->key().ToString());
  iter->Seek("zzz");
  EXPECT_FALSE(iter->Valid());

  // Backward scan.
  iter->SeekToLast();
  for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(rit->first, iter->key().ToString());
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, PrefixCompressionPreservesKeys) {
  BlockBuilder builder(16);
  std::vector<std::string> keys = {"commonprefix_a", "commonprefix_b",
                                   "commonprefix_bb", "commonprefix_c",
                                   "different"};
  for (const auto& key : keys) {
    builder.Add(key, "v");
  }
  const std::string raw = builder.Finish().ToString();
  Block block(raw.data(), raw.size(), false);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  for (const auto& key : keys) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, iter->key().ToString());
    iter->Next();
  }
}

// --- Table properties -------------------------------------------------------

TEST(TablePropertiesTest, EncodeDecode) {
  TableProperties props;
  props["a"] = "1";
  props["shield.dek-id"] = std::string(16, '\x7f');
  const std::string encoded = EncodeTableProperties(props);
  TableProperties decoded;
  ASSERT_TRUE(DecodeTableProperties(encoded, &decoded).ok());
  EXPECT_EQ(props, decoded);
}

TEST(TablePropertiesTest, RejectsTruncated) {
  TableProperties props;
  props["key"] = "value";
  std::string encoded = EncodeTableProperties(props);
  encoded.resize(encoded.size() - 2);
  TableProperties decoded;
  EXPECT_FALSE(DecodeTableProperties(encoded, &decoded).ok());
}

// --- BlockHandle / Footer ----------------------------------------------------

TEST(TableFormatTest, BlockHandleRoundTrip) {
  BlockHandle handle;
  handle.set_offset(123456789);
  handle.set_size(987);
  std::string encoded;
  handle.EncodeTo(&encoded);
  BlockHandle decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(123456789u, decoded.offset());
  EXPECT_EQ(987u, decoded.size());
}

TEST(TableFormatTest, FooterRoundTrip) {
  Footer footer;
  BlockHandle props, index;
  props.set_offset(100);
  props.set_size(50);
  index.set_offset(200);
  index.set_size(75);
  footer.set_properties_handle(props);
  footer.set_index_handle(index);

  std::string encoded;
  footer.EncodeTo(&encoded);
  EXPECT_EQ(Footer::kEncodedLength, encoded.size());

  Footer decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(100u, decoded.properties_handle().offset());
  EXPECT_EQ(75u, decoded.index_handle().size());
}

TEST(TableFormatTest, FooterRejectsBadMagic) {
  std::string encoded(Footer::kEncodedLength, '\0');
  Footer decoded;
  Slice input(encoded);
  EXPECT_TRUE(decoded.DecodeFrom(&input).IsCorruption());
}

// --- TableBuilder / Table -----------------------------------------------------

class TableTest : public ::testing::Test {
 protected:
  TableTest() : env_(NewMemEnv()), icmp_(BytewiseComparator()) {
    options_.block_size = 512;  // small blocks: exercise many blocks
  }

  // Builds a table of internal keys from the model.
  void BuildTable(const std::map<std::string, std::string>& model) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/table.sst", &file).ok());
    TableBuilder builder(options_, &icmp_, file.get());
    SequenceNumber seq = 1;
    for (const auto& [key, value] : model) {
      InternalKey ikey(key, seq++, kTypeValue);
      builder.Add(ikey.Encode(), value);
    }
    builder.SetProperty("test.origin", "unit-test");
    ASSERT_TRUE(builder.Finish().ok());
    file_size_ = builder.FileSize();
    ASSERT_TRUE(file->Close().ok());
  }

  void OpenTable(std::shared_ptr<Cache> cache = nullptr) {
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env_->NewRandomAccessFile("/table.sst", &file).ok());
    ASSERT_TRUE(Table::Open(options_, &icmp_, "/table.sst", std::move(file), file_size_,
                            cache, &table_)
                    .ok());
  }

  std::string GetValue(const std::string& key, bool* found) {
    struct Result {
      bool found = false;
      std::string value;
      std::string user_key;
    } result;
    result.user_key = key;
    ReadOptions read_options;
    read_options.verify_checksums = true;
    LookupKey lkey(key, kMaxSequenceNumber);
    Status s = table_->InternalGet(
        read_options, lkey.internal_key(), &result,
        [](void* arg, const Slice& k, const Slice& v) {
          auto* r = reinterpret_cast<Result*>(arg);
          if (ExtractUserKey(k).ToString() == r->user_key) {
            r->found = true;
            r->value = v.ToString();
          }
        });
    EXPECT_TRUE(s.ok());
    *found = result.found;
    return result.value;
  }

  std::unique_ptr<Env> env_;
  InternalKeyComparator icmp_;
  Options options_;
  uint64_t file_size_ = 0;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, BuildAndScan) {
  std::map<std::string, std::string> model;
  Random rnd(17);
  for (int i = 0; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    model[key] = std::string(1 + rnd.Uniform(200), 'v');
  }
  BuildTable(model);
  OpenTable();

  ReadOptions read_options;
  read_options.verify_checksums = true;
  std::unique_ptr<Iterator> iter(table_->NewIterator(read_options));
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(key, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(value, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, PointLookups) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    model["key" + std::to_string(i * 2)] = "value" + std::to_string(i);
  }
  BuildTable(model);
  OpenTable();

  bool found;
  EXPECT_EQ("value100", GetValue("key200", &found));
  EXPECT_TRUE(found);
  GetValue("key201", &found);  // absent key
  EXPECT_FALSE(found);
}

TEST_F(TableTest, PropertiesPersisted) {
  std::map<std::string, std::string> model{{"a", "1"}, {"b", "2"}};
  BuildTable(model);
  OpenTable();
  const TableProperties& props = table_->properties();
  EXPECT_EQ("unit-test", props.at("test.origin"));
  EXPECT_EQ("2", props.at(kPropNumEntries));
}

TEST_F(TableTest, BlockCacheServesRepeatReads) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; i++) {
    model["key" + std::to_string(i)] = std::string(50, 'x');
  }
  BuildTable(model);
  auto cache = NewLRUCache(1 << 20);
  OpenTable(cache);

  bool found;
  GetValue("key100", &found);
  EXPECT_TRUE(found);
  const size_t charge_after_first = cache->TotalCharge();
  EXPECT_GT(charge_after_first, 0u);
  GetValue("key100", &found);
  EXPECT_TRUE(found);
  EXPECT_EQ(charge_after_first, cache->TotalCharge());  // cache hit
}

TEST_F(TableTest, ChecksumCorruptionDetected) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 100; i++) {
    model["key" + std::to_string(i)] = "payload payload payload";
  }
  BuildTable(model);

  // Flip a byte in the middle of the data section.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/table.sst", &contents).ok());
  contents[100] ^= 0x40;
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), contents, "/table.sst", false).ok());

  OpenTable();
  ReadOptions read_options;
  read_options.verify_checksums = true;
  std::unique_ptr<Iterator> iter(table_->NewIterator(read_options));
  iter->SeekToFirst();
  while (iter->Valid()) {
    iter->Next();
  }
  EXPECT_TRUE(iter->status().IsCorruption()) << iter->status().ToString();
}

TEST_F(TableTest, OpenRejectsTruncatedFile) {
  std::map<std::string, std::string> model{{"k", "v"}};
  BuildTable(model);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/table.sst", &contents).ok());
  contents.resize(10);
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), contents, "/table.sst", false).ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/table.sst", &file).ok());
  std::unique_ptr<Table> table;
  EXPECT_FALSE(
      Table::Open(options_, &icmp_, "/table.sst", std::move(file), 10, nullptr,
                  &table)
          .ok());
}

// --- LRU cache ------------------------------------------------------------

TEST(CacheTest, InsertLookupErase) {
  // Large enough that one entry plus its bookkeeping overhead fits in
  // a single shard (charges include per-entry metadata).
  auto cache = NewLRUCache(64 * 1024);
  int* value = new int(42);
  Cache::Handle* handle = cache->Insert(
      "key", value, 1, [](const Slice&, void* v) {
        delete reinterpret_cast<int*>(v);
      });
  cache->Release(handle);

  handle = cache->Lookup("key");
  ASSERT_NE(nullptr, handle);
  EXPECT_EQ(42, *reinterpret_cast<int*>(cache->Value(handle)));
  cache->Release(handle);

  cache->Erase("key");
  EXPECT_EQ(nullptr, cache->Lookup("key"));
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  auto cache = NewLRUCache(16);  // tiny: one entry per shard at most
  for (int i = 0; i < 100; i++) {
    const std::string key = "key" + std::to_string(i);
    Cache::Handle* handle =
        cache->Insert(key, new int(i), 1, [](const Slice&, void* v) {
          delete reinterpret_cast<int*>(v);
        });
    cache->Release(handle);
  }
  // Capacity respected (some early keys evicted).
  EXPECT_LE(cache->TotalCharge(), 16u);
}

TEST(CacheTest, PinnedEntriesSurviveEviction) {
  auto cache = NewLRUCache(1);
  Cache::Handle* pinned = cache->Insert(
      "pinned", new int(1), 1,
      [](const Slice&, void* v) { delete reinterpret_cast<int*>(v); });
  // Insert more entries to force eviction pressure.
  for (int i = 0; i < 10; i++) {
    Cache::Handle* handle = cache->Insert(
        "other" + std::to_string(i), new int(i), 1,
        [](const Slice&, void* v) { delete reinterpret_cast<int*>(v); });
    cache->Release(handle);
  }
  // The pinned handle's value must still be readable.
  EXPECT_EQ(1, *reinterpret_cast<int*>(cache->Value(pinned)));
  cache->Release(pinned);
}

TEST(CacheTest, NewIdsAreUnique) {
  auto cache = NewLRUCache(100);
  EXPECT_NE(cache->NewId(), cache->NewId());
}

}  // namespace
}  // namespace shield
