#include "crypto/secure_random.h"
#include "kds/dek.h"
#include "kds/local_kds.h"
#include "kds/secure_dek_cache.h"
#include "kds/sim_kds.h"
#include "shield/dek_manager.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/clock.h"

namespace shield {
namespace {

// --- DekId ------------------------------------------------------------

TEST(DekIdTest, HexRoundTrip) {
  const DekId id = DekId::Generate();
  const std::string hex = id.ToHex();
  EXPECT_EQ(32u, hex.size());
  DekId parsed;
  ASSERT_TRUE(DekId::FromHex(hex, &parsed));
  EXPECT_EQ(id, parsed);
}

TEST(DekIdTest, FromHexRejectsBadInput) {
  DekId id;
  EXPECT_FALSE(DekId::FromHex("short", &id));
  EXPECT_FALSE(DekId::FromHex(std::string(32, 'z'), &id));
}

TEST(DekIdTest, GenerateIsUnique) {
  EXPECT_NE(DekId::Generate(), DekId::Generate());
}

TEST(DekIdTest, SliceRoundTrip) {
  const DekId id = DekId::Generate();
  EXPECT_EQ(id, DekId::FromSlice(id.AsSlice()));
  EXPECT_FALSE(id.IsZero());
  EXPECT_TRUE(DekId().IsZero());
}

// --- LocalKds -----------------------------------------------------------

TEST(LocalKdsTest, CreateGetDelete) {
  LocalKds kds;
  Dek dek;
  ASSERT_TRUE(
      kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_EQ(16u, dek.key.size());
  EXPECT_EQ(1u, kds.NumDeks());

  Dek fetched;
  ASSERT_TRUE(kds.GetDek("s2", dek.id, &fetched).ok());
  EXPECT_EQ(dek.key, fetched.key);
  EXPECT_EQ(dek.cipher, fetched.cipher);

  ASSERT_TRUE(kds.DeleteDek("s1", dek.id).ok());
  EXPECT_TRUE(kds.GetDek("s1", dek.id, &fetched).IsNotFound());
  EXPECT_TRUE(kds.DeleteDek("s1", dek.id).IsNotFound());
}

TEST(LocalKdsTest, UniqueKeysPerDek) {
  LocalKds kds;
  Dek a, b;
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &a).ok());
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &b).ok());
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.key, b.key);
}

// --- SimKds --------------------------------------------------------------

TEST(SimKdsTest, LatencyIsApplied) {
  SimKdsOptions options;
  options.request_latency_us = 3000;
  SimKds kds(options);
  Dek dek;
  const uint64_t t0 = NowMicros();
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());
  const uint64_t elapsed = NowMicros() - t0;
  EXPECT_GE(elapsed, 2500u);  // allow scheduler slop downward
  EXPECT_EQ(1u, kds.num_requests());
}

TEST(SimKdsTest, AuthorizationEnforced) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  options.require_authorization = true;
  SimKds kds(options);

  Dek dek;
  EXPECT_TRUE(kds.CreateDek("rogue", crypto::CipherKind::kAes128Ctr, &dek)
                  .IsPermissionDenied());

  kds.AuthorizeServer("compute-1");
  ASSERT_TRUE(
      kds.CreateDek("compute-1", crypto::CipherKind::kAes128Ctr, &dek).ok());

  // Another authorized server can fetch by DEK-ID.
  kds.AuthorizeServer("worker-1");
  Dek fetched;
  ASSERT_TRUE(kds.GetDek("worker-1", dek.id, &fetched).ok());
  EXPECT_EQ(dek.key, fetched.key);

  // Unauthorized server cannot, even with the DEK-ID (the paper's
  // Section 5.4 safeguard).
  EXPECT_TRUE(kds.GetDek("attacker", dek.id, &fetched).IsPermissionDenied());
}

TEST(SimKdsTest, RevocationBlocksBreachedServer) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  options.require_authorization = true;
  SimKds kds(options);
  kds.AuthorizeServer("w");
  Dek dek;
  ASSERT_TRUE(kds.CreateDek("w", crypto::CipherKind::kAes128Ctr, &dek).ok());

  kds.RevokeServer("w");
  Dek fetched;
  EXPECT_TRUE(kds.GetDek("w", dek.id, &fetched).IsPermissionDenied());
  EXPECT_TRUE(kds.CreateDek("w", crypto::CipherKind::kAes128Ctr, &dek)
                  .IsPermissionDenied());
}

TEST(SimKdsTest, OneTimeProvisioning) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  options.one_time_provisioning = true;
  SimKds kds(options);

  Dek dek;
  ASSERT_TRUE(kds.CreateDek("a", crypto::CipherKind::kAes128Ctr, &dek).ok());

  // First fetch by another server succeeds; the second is denied — a
  // stolen DEK-ID alone cannot re-obtain the key.
  Dek fetched;
  ASSERT_TRUE(kds.GetDek("b", dek.id, &fetched).ok());
  EXPECT_TRUE(kds.GetDek("b", dek.id, &fetched).IsPermissionDenied());

  // The creator is also considered provisioned.
  EXPECT_TRUE(kds.GetDek("a", dek.id, &fetched).IsPermissionDenied());

  // A third server still gets its first (and only) fetch.
  ASSERT_TRUE(kds.GetDek("c", dek.id, &fetched).ok());
}

TEST(SimKdsTest, RuntimeLatencyAdjustment) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  SimKds kds(options);
  kds.set_request_latency_us(2000);
  Dek dek;
  const uint64_t t0 = NowMicros();
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_GE(NowMicros() - t0, 1500u);
}

// --- SecureDekCache ---------------------------------------------------------

class SecureDekCacheTest : public ::testing::Test {
 protected:
  SecureDekCacheTest() : env_(NewMemEnv()) {}

  Dek MakeDek() {
    Dek dek;
    dek.id = DekId::Generate();
    dek.cipher = crypto::CipherKind::kAes128Ctr;
    dek.key = crypto::SecureRandomString(16);
    return dek;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(SecureDekCacheTest, PutGetErase) {
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());

  const Dek dek = MakeDek();
  ASSERT_TRUE(cache->Put(dek).ok());
  Dek out;
  ASSERT_TRUE(cache->Get(dek.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
  EXPECT_EQ(dek.cipher, out.cipher);

  ASSERT_TRUE(cache->Erase(dek.id).ok());
  EXPECT_TRUE(cache->Get(dek.id, &out).IsNotFound());
  // Erasing again is idempotent.
  EXPECT_TRUE(cache->Erase(dek.id).ok());
}

TEST_F(SecureDekCacheTest, PersistsAcrossReopen) {
  const Dek dek = MakeDek();
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(
        SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
    ASSERT_TRUE(cache->Put(dek).ok());
  }
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
  EXPECT_EQ(1u, cache->NumDeks());
  Dek out;
  ASSERT_TRUE(cache->Get(dek.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
}

TEST_F(SecureDekCacheTest, WrongPasskeyRejected) {
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(
        SecureDekCache::Open(env_.get(), "/cache", "correct", &cache).ok());
    ASSERT_TRUE(cache->Put(MakeDek()).ok());
  }
  std::unique_ptr<SecureDekCache> cache;
  Status s = SecureDekCache::Open(env_.get(), "/cache", "wrong", &cache);
  EXPECT_TRUE(s.IsPermissionDenied()) << s.ToString();
}

TEST_F(SecureDekCacheTest, TamperingDetected) {
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(
        SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
    ASSERT_TRUE(cache->Put(MakeDek()).ok());
  }
  // Flip one ciphertext byte.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/cache", &contents).ok());
  contents[contents.size() / 2] ^= 0x1;
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), contents, "/cache", false).ok());

  std::unique_ptr<SecureDekCache> cache;
  Status s = SecureDekCache::Open(env_.get(), "/cache", "pass", &cache);
  EXPECT_TRUE(s.IsPermissionDenied()) << s.ToString();
}

TEST_F(SecureDekCacheTest, KeysNotPlaintextOnDisk) {
  Dek dek = MakeDek();
  dek.key = "VERYSECRETKEY16B";
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
  ASSERT_TRUE(cache->Put(dek).ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/cache", &contents).ok());
  EXPECT_EQ(std::string::npos, contents.find("VERYSECRETKEY16B"));
}

TEST_F(SecureDekCacheTest, RequiresPasskey) {
  std::unique_ptr<SecureDekCache> cache;
  EXPECT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "", &cache)
                  .IsInvalidArgument());
}

TEST_F(SecureDekCacheTest, SharedBetweenInstances) {
  // Two cache objects over the same file (two LSM-KVS instances on one
  // server sharing the cache, per the paper): writes by one are
  // visible to a later-opened other.
  std::unique_ptr<SecureDekCache> first;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &first).ok());
  const Dek dek = MakeDek();
  ASSERT_TRUE(first->Put(dek).ok());

  std::unique_ptr<SecureDekCache> second;
  ASSERT_TRUE(
      SecureDekCache::Open(env_.get(), "/cache", "pass", &second).ok());
  Dek out;
  EXPECT_TRUE(second->Get(dek.id, &out).ok());
}

// --- DekManager ------------------------------------------------------------

TEST(DekManagerTest, ResolutionChain) {
  auto kds = std::make_shared<LocalKds>();
  auto env = NewMemEnv();
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env.get(), "/c", "pk", &cache).ok());

  DekManager manager(kds.get(), "s1", cache.get());
  Dek dek;
  ASSERT_TRUE(manager.CreateDek(crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_EQ(1u, manager.kds_requests());

  // Memory hit: no extra KDS request.
  Dek out;
  ASSERT_TRUE(manager.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(1u, manager.kds_requests());
  EXPECT_EQ(1u, manager.cache_hits());

  // A fresh manager (simulating restart) hits the secure cache, not
  // the KDS.
  DekManager restarted(kds.get(), "s1", cache.get());
  ASSERT_TRUE(restarted.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(0u, restarted.kds_requests());
  EXPECT_EQ(dek.key, out.key);

  // Without the cache, resolution goes to the KDS.
  DekManager uncached(kds.get(), "s2", nullptr);
  ASSERT_TRUE(uncached.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(1u, uncached.kds_requests());
}

TEST(DekManagerTest, ForgetDekRemovesEverywhere) {
  auto kds = std::make_shared<LocalKds>();
  auto env = NewMemEnv();
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env.get(), "/c", "pk", &cache).ok());

  DekManager manager(kds.get(), "s1", cache.get());
  Dek dek;
  ASSERT_TRUE(manager.CreateDek(crypto::CipherKind::kAes128Ctr, &dek).ok());
  ASSERT_TRUE(manager.ForgetDek(dek.id).ok());

  EXPECT_EQ(0u, kds->NumDeks());
  EXPECT_EQ(0u, cache->NumDeks());
  Dek out;
  EXPECT_FALSE(manager.ResolveDek(dek.id, &out).ok());
}

TEST(DekManagerTest, ForgetUnknownDekIsOk) {
  auto kds = std::make_shared<LocalKds>();
  DekManager manager(kds.get(), "s1", nullptr);
  EXPECT_TRUE(manager.ForgetDek(DekId::Generate()).ok());
}

}  // namespace
}  // namespace shield
