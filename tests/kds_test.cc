#include <functional>

#include "crypto/secure_random.h"
#include "kds/dek.h"
#include "kds/failover_kds.h"
#include "kds/faulty_kds.h"
#include "kds/local_kds.h"
#include "kds/secure_dek_cache.h"
#include "kds/sim_kds.h"
#include "shield/dek_manager.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/clock.h"

namespace shield {
namespace {

// --- DekId ------------------------------------------------------------

TEST(DekIdTest, HexRoundTrip) {
  const DekId id = DekId::Generate();
  const std::string hex = id.ToHex();
  EXPECT_EQ(32u, hex.size());
  DekId parsed;
  ASSERT_TRUE(DekId::FromHex(hex, &parsed));
  EXPECT_EQ(id, parsed);
}

TEST(DekIdTest, FromHexRejectsBadInput) {
  DekId id;
  EXPECT_FALSE(DekId::FromHex("short", &id));
  EXPECT_FALSE(DekId::FromHex(std::string(32, 'z'), &id));
}

TEST(DekIdTest, GenerateIsUnique) {
  EXPECT_NE(DekId::Generate(), DekId::Generate());
}

TEST(DekIdTest, SliceRoundTrip) {
  const DekId id = DekId::Generate();
  EXPECT_EQ(id, DekId::FromSlice(id.AsSlice()));
  EXPECT_FALSE(id.IsZero());
  EXPECT_TRUE(DekId().IsZero());
}

// --- LocalKds -----------------------------------------------------------

TEST(LocalKdsTest, CreateGetDelete) {
  LocalKds kds;
  Dek dek;
  ASSERT_TRUE(
      kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_EQ(16u, dek.key.size());
  EXPECT_EQ(1u, kds.NumDeks());

  Dek fetched;
  ASSERT_TRUE(kds.GetDek("s2", dek.id, &fetched).ok());
  EXPECT_EQ(dek.key, fetched.key);
  EXPECT_EQ(dek.cipher, fetched.cipher);

  ASSERT_TRUE(kds.DeleteDek("s1", dek.id).ok());
  EXPECT_TRUE(kds.GetDek("s1", dek.id, &fetched).IsNotFound());
  EXPECT_TRUE(kds.DeleteDek("s1", dek.id).IsNotFound());
}

TEST(LocalKdsTest, UniqueKeysPerDek) {
  LocalKds kds;
  Dek a, b;
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &a).ok());
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &b).ok());
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.key, b.key);
}

// --- SimKds --------------------------------------------------------------

TEST(SimKdsTest, LatencyIsApplied) {
  SimKdsOptions options;
  options.request_latency_us = 3000;
  SimKds kds(options);
  Dek dek;
  const uint64_t t0 = NowMicros();
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());
  const uint64_t elapsed = NowMicros() - t0;
  EXPECT_GE(elapsed, 2500u);  // allow scheduler slop downward
  EXPECT_EQ(1u, kds.num_requests());
}

TEST(SimKdsTest, AuthorizationEnforced) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  options.require_authorization = true;
  SimKds kds(options);

  Dek dek;
  EXPECT_TRUE(kds.CreateDek("rogue", crypto::CipherKind::kAes128Ctr, &dek)
                  .IsPermissionDenied());

  kds.AuthorizeServer("compute-1");
  ASSERT_TRUE(
      kds.CreateDek("compute-1", crypto::CipherKind::kAes128Ctr, &dek).ok());

  // Another authorized server can fetch by DEK-ID.
  kds.AuthorizeServer("worker-1");
  Dek fetched;
  ASSERT_TRUE(kds.GetDek("worker-1", dek.id, &fetched).ok());
  EXPECT_EQ(dek.key, fetched.key);

  // Unauthorized server cannot, even with the DEK-ID (the paper's
  // Section 5.4 safeguard).
  EXPECT_TRUE(kds.GetDek("attacker", dek.id, &fetched).IsPermissionDenied());
}

TEST(SimKdsTest, RevocationBlocksBreachedServer) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  options.require_authorization = true;
  SimKds kds(options);
  kds.AuthorizeServer("w");
  Dek dek;
  ASSERT_TRUE(kds.CreateDek("w", crypto::CipherKind::kAes128Ctr, &dek).ok());

  kds.RevokeServer("w");
  Dek fetched;
  EXPECT_TRUE(kds.GetDek("w", dek.id, &fetched).IsPermissionDenied());
  EXPECT_TRUE(kds.CreateDek("w", crypto::CipherKind::kAes128Ctr, &dek)
                  .IsPermissionDenied());
}

TEST(SimKdsTest, OneTimeProvisioning) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  options.one_time_provisioning = true;
  SimKds kds(options);

  Dek dek;
  ASSERT_TRUE(kds.CreateDek("a", crypto::CipherKind::kAes128Ctr, &dek).ok());

  // First fetch by another server succeeds; the second is denied — a
  // stolen DEK-ID alone cannot re-obtain the key.
  Dek fetched;
  ASSERT_TRUE(kds.GetDek("b", dek.id, &fetched).ok());
  EXPECT_TRUE(kds.GetDek("b", dek.id, &fetched).IsPermissionDenied());

  // The creator is also considered provisioned.
  EXPECT_TRUE(kds.GetDek("a", dek.id, &fetched).IsPermissionDenied());

  // A third server still gets its first (and only) fetch.
  ASSERT_TRUE(kds.GetDek("c", dek.id, &fetched).ok());
}

TEST(SimKdsTest, RuntimeLatencyAdjustment) {
  SimKdsOptions options;
  options.request_latency_us = 0;
  SimKds kds(options);
  kds.set_request_latency_us(2000);
  Dek dek;
  const uint64_t t0 = NowMicros();
  ASSERT_TRUE(kds.CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_GE(NowMicros() - t0, 1500u);
}

// --- SecureDekCache ---------------------------------------------------------

class SecureDekCacheTest : public ::testing::Test {
 protected:
  SecureDekCacheTest() : env_(NewMemEnv()) {}

  Dek MakeDek() {
    Dek dek;
    dek.id = DekId::Generate();
    dek.cipher = crypto::CipherKind::kAes128Ctr;
    dek.key = crypto::SecureRandomString(16);
    return dek;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(SecureDekCacheTest, PutGetErase) {
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());

  const Dek dek = MakeDek();
  ASSERT_TRUE(cache->Put(dek).ok());
  Dek out;
  ASSERT_TRUE(cache->Get(dek.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
  EXPECT_EQ(dek.cipher, out.cipher);

  ASSERT_TRUE(cache->Erase(dek.id).ok());
  EXPECT_TRUE(cache->Get(dek.id, &out).IsNotFound());
  // Erasing again is idempotent.
  EXPECT_TRUE(cache->Erase(dek.id).ok());
}

TEST_F(SecureDekCacheTest, PersistsAcrossReopen) {
  const Dek dek = MakeDek();
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(
        SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
    ASSERT_TRUE(cache->Put(dek).ok());
  }
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
  EXPECT_EQ(1u, cache->NumDeks());
  Dek out;
  ASSERT_TRUE(cache->Get(dek.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
}

TEST_F(SecureDekCacheTest, WrongPasskeyRejected) {
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(
        SecureDekCache::Open(env_.get(), "/cache", "correct", &cache).ok());
    ASSERT_TRUE(cache->Put(MakeDek()).ok());
  }
  std::unique_ptr<SecureDekCache> cache;
  Status s = SecureDekCache::Open(env_.get(), "/cache", "wrong", &cache);
  EXPECT_TRUE(s.IsPermissionDenied()) << s.ToString();
}

TEST_F(SecureDekCacheTest, TamperingDetected) {
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(
        SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
    ASSERT_TRUE(cache->Put(MakeDek()).ok());
  }
  // Flip one ciphertext byte.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/cache", &contents).ok());
  contents[contents.size() / 2] ^= 0x1;
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), contents, "/cache", false).ok());

  std::unique_ptr<SecureDekCache> cache;
  Status s = SecureDekCache::Open(env_.get(), "/cache", "pass", &cache);
  EXPECT_TRUE(s.IsPermissionDenied()) << s.ToString();
}

TEST_F(SecureDekCacheTest, KeysNotPlaintextOnDisk) {
  Dek dek = MakeDek();
  dek.key = "VERYSECRETKEY16B";
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
  ASSERT_TRUE(cache->Put(dek).ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/cache", &contents).ok());
  EXPECT_EQ(std::string::npos, contents.find("VERYSECRETKEY16B"));
}

TEST_F(SecureDekCacheTest, RequiresPasskey) {
  std::unique_ptr<SecureDekCache> cache;
  EXPECT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "", &cache)
                  .IsInvalidArgument());
}

TEST_F(SecureDekCacheTest, SharedBetweenInstances) {
  // Two cache objects over the same file (two LSM-KVS instances on one
  // server sharing the cache, per the paper): writes by one are
  // visible to a later-opened other.
  std::unique_ptr<SecureDekCache> first;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &first).ok());
  const Dek dek = MakeDek();
  ASSERT_TRUE(first->Put(dek).ok());

  std::unique_ptr<SecureDekCache> second;
  ASSERT_TRUE(
      SecureDekCache::Open(env_.get(), "/cache", "pass", &second).ok());
  Dek out;
  EXPECT_TRUE(second->Get(dek.id, &out).ok());
}

// --- DekManager ------------------------------------------------------------

TEST(DekManagerTest, ResolutionChain) {
  auto kds = std::make_shared<LocalKds>();
  auto env = NewMemEnv();
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env.get(), "/c", "pk", &cache).ok());

  DekManager manager(kds.get(), "s1", cache.get());
  Dek dek;
  ASSERT_TRUE(manager.CreateDek(crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_EQ(1u, manager.kds_requests());

  // Memory hit: no extra KDS request.
  Dek out;
  ASSERT_TRUE(manager.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(1u, manager.kds_requests());
  EXPECT_EQ(1u, manager.cache_hits());

  // A fresh manager (simulating restart) hits the secure cache, not
  // the KDS.
  DekManager restarted(kds.get(), "s1", cache.get());
  ASSERT_TRUE(restarted.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(0u, restarted.kds_requests());
  EXPECT_EQ(dek.key, out.key);

  // Without the cache, resolution goes to the KDS.
  DekManager uncached(kds.get(), "s2", nullptr);
  ASSERT_TRUE(uncached.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(1u, uncached.kds_requests());
}

TEST(DekManagerTest, ForgetDekRemovesEverywhere) {
  auto kds = std::make_shared<LocalKds>();
  auto env = NewMemEnv();
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env.get(), "/c", "pk", &cache).ok());

  DekManager manager(kds.get(), "s1", cache.get());
  Dek dek;
  ASSERT_TRUE(manager.CreateDek(crypto::CipherKind::kAes128Ctr, &dek).ok());
  ASSERT_TRUE(manager.ForgetDek(dek.id).ok());

  EXPECT_EQ(0u, kds->NumDeks());
  EXPECT_EQ(0u, cache->NumDeks());
  Dek out;
  EXPECT_FALSE(manager.ResolveDek(dek.id, &out).ok());
}

TEST(DekManagerTest, ForgetUnknownDekIsOk) {
  auto kds = std::make_shared<LocalKds>();
  DekManager manager(kds.get(), "s1", nullptr);
  EXPECT_TRUE(manager.ForgetDek(DekId::Generate()).ok());
}


// --- RewrapDek --------------------------------------------------------------

TEST(RewrapDekTest, LocalKdsIssuesNewIdWithSameKeyMaterial) {
  LocalKds kds;
  Dek dek;
  ASSERT_TRUE(
      kds.CreateDek("source", crypto::CipherKind::kAes128Ctr, &dek).ok());
  Dek rewrapped;
  ASSERT_TRUE(kds.RewrapDek("source", dek.id, "target", &rewrapped).ok());
  EXPECT_NE(dek.id, rewrapped.id);
  EXPECT_EQ(dek.key, rewrapped.key);
  EXPECT_EQ(dek.cipher, rewrapped.cipher);

  // Both ids resolve independently: deleting one does not affect the
  // other (a restored backup must survive the source id being purged).
  Dek out;
  ASSERT_TRUE(kds.DeleteDek("source", dek.id).ok());
  EXPECT_TRUE(kds.GetDek("target", rewrapped.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);

  EXPECT_TRUE(
      kds.RewrapDek("source", DekId::Generate(), "target", &out).IsNotFound());
}

TEST(RewrapDekTest, SimKdsDeniesRevokedParticipants) {
  SimKdsOptions opts;
  opts.request_latency_us = 0;
  opts.require_authorization = true;
  SimKds kds(opts);
  kds.AuthorizeServer("source");
  kds.AuthorizeServer("target");

  Dek dek;
  ASSERT_TRUE(
      kds.CreateDek("source", crypto::CipherKind::kAes128Ctr, &dek).ok());

  Dek rewrapped;
  kds.RevokeServer("target");
  EXPECT_TRUE(kds.RewrapDek("source", dek.id, "target", &rewrapped)
                  .IsPermissionDenied());

  kds.AuthorizeServer("target");
  ASSERT_TRUE(kds.RewrapDek("source", dek.id, "target", &rewrapped).ok());

  // A revoked *source* cannot mint new wrappings either.
  kds.RevokeServer("source");
  Dek again;
  EXPECT_TRUE(kds.RewrapDek("source", dek.id, "target", &again)
                  .IsPermissionDenied());
  // But the target identity keeps working with its own wrapping.
  Dek out;
  EXPECT_TRUE(kds.GetDek("target", rewrapped.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
}

TEST(RewrapDekTest, OneTimeProvisioningLetsTargetFetchRewrappedId) {
  SimKdsOptions opts;
  opts.request_latency_us = 0;
  opts.one_time_provisioning = true;
  SimKds kds(opts);

  Dek dek;
  ASSERT_TRUE(
      kds.CreateDek("source", crypto::CipherKind::kAes128Ctr, &dek).ok());
  Dek rewrapped;
  ASSERT_TRUE(kds.RewrapDek("source", dek.id, "target", &rewrapped).ok());

  // Only the source is recorded as having consumed the new id, so the
  // target's first fetch must still succeed.
  Dek out;
  EXPECT_TRUE(kds.GetDek("target", rewrapped.id, &out).ok());
}

// --- FailoverKds ------------------------------------------------------------

// Scripts an endpoint: the next `n` requests answer `status` before
// the base KDS is consulted, and every request is counted.
class ScriptedKds : public Kds {
 public:
  explicit ScriptedKds(std::shared_ptr<Kds> base) : base_(std::move(base)) {}

  void FailNextWith(const Status& status, int n) {
    fail_status_ = status;
    fail_remaining_ = n;
  }
  int calls() const { return calls_; }

  Status CreateDek(const std::string& server_id, crypto::CipherKind kind,
                   Dek* out) override {
    return Intercept([&] { return base_->CreateDek(server_id, kind, out); });
  }
  Status GetDek(const std::string& server_id, const DekId& id,
                Dek* out) override {
    return Intercept([&] { return base_->GetDek(server_id, id, out); });
  }
  Status DeleteDek(const std::string& server_id, const DekId& id) override {
    return Intercept([&] { return base_->DeleteDek(server_id, id); });
  }
  Status RewrapDek(const std::string& server_id, const DekId& id,
                   const std::string& target_server_id, Dek* out) override {
    return Intercept([&] {
      return base_->RewrapDek(server_id, id, target_server_id, out);
    });
  }

 private:
  Status Intercept(const std::function<Status()>& op) {
    calls_++;
    if (fail_remaining_ > 0) {
      fail_remaining_--;
      return fail_status_;
    }
    return op();
  }

  std::shared_ptr<Kds> base_;
  Status fail_status_;
  int fail_remaining_ = 0;
  int calls_ = 0;
};

class FailoverKdsTest : public ::testing::Test {
 protected:
  FailoverKdsTest()
      : store_(std::make_shared<LocalKds>()),
        primary_(std::make_shared<ScriptedKds>(store_)),
        secondary_(std::make_shared<ScriptedKds>(store_)) {}

  // Both endpoints front the same store, as replicas of one KDS would.
  FailoverKds Make(FailoverKdsOptions options = {}) {
    return FailoverKds({primary_, secondary_}, options);
  }

  std::shared_ptr<LocalKds> store_;
  std::shared_ptr<ScriptedKds> primary_;
  std::shared_ptr<ScriptedKds> secondary_;
};

TEST_F(FailoverKdsTest, DefinitiveAnswersDoNotFailOver) {
  FailoverKds kds = Make();
  Dek dek;
  ASSERT_TRUE(
      store_->CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());

  // NotFound is an answer, not an outage: the secondary (which could
  // answer OK) must not be consulted.
  Dek out;
  EXPECT_TRUE(kds.GetDek("s", DekId::Generate(), &out).IsNotFound());
  EXPECT_EQ(0, secondary_->calls());

  // PermissionDenied especially must not fail over, or a revoked
  // server could shop for a more permissive replica.
  primary_->FailNextWith(Status::PermissionDenied("revoked"), 1);
  EXPECT_TRUE(kds.GetDek("s", dek.id, &out).IsPermissionDenied());
  EXPECT_EQ(0, secondary_->calls());
  EXPECT_EQ(0u, kds.failovers());
}

TEST_F(FailoverKdsTest, TransientErrorFailsOverToSecondary) {
  FailoverKds kds = Make();
  Dek dek;
  ASSERT_TRUE(
      store_->CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());

  primary_->FailNextWith(Status::TryAgain("kds down"), 1);
  Dek out;
  EXPECT_TRUE(kds.GetDek("s", dek.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
  EXPECT_EQ(1u, kds.failovers());
  EXPECT_EQ(1, secondary_->calls());
  // One failure is below the threshold: the breaker stays closed.
  EXPECT_EQ(FailoverKds::BreakerState::kClosed, kds.endpoint_state(0));
}

TEST_F(FailoverKdsTest, BreakerOpensAfterThresholdAndSkipsEndpoint) {
  FailoverKdsOptions options;
  options.failure_threshold = 3;
  options.open_micros = 60ull * 1000 * 1000;  // no half-open this test
  FailoverKds kds = Make(options);
  Dek dek;
  ASSERT_TRUE(
      store_->CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());

  primary_->FailNextWith(Status::TryAgain("kds down"), 100);
  Dek out;
  for (int i = 0; i < 3; i++) {
    EXPECT_TRUE(kds.GetDek("s", dek.id, &out).ok());  // secondary serves
  }
  EXPECT_EQ(FailoverKds::BreakerState::kOpen, kds.endpoint_state(0));
  EXPECT_EQ(1u, kds.breaker_opens());
  EXPECT_EQ(3, primary_->calls());

  // While open, the primary is not even consulted.
  EXPECT_TRUE(kds.GetDek("s", dek.id, &out).ok());
  EXPECT_EQ(3, primary_->calls());
  EXPECT_GE(kds.breaker_rejections(), 1u);
}

TEST_F(FailoverKdsTest, HalfOpenProbeClosesBreakerOnRecovery) {
  FailoverKdsOptions options;
  options.failure_threshold = 3;
  options.open_micros = 0;  // cooldown elapses immediately
  FailoverKds kds = Make(options);
  Dek dek;
  ASSERT_TRUE(
      store_->CreateDek("s", crypto::CipherKind::kAes128Ctr, &dek).ok());

  primary_->FailNextWith(Status::TryAgain("kds down"), 3);
  Dek out;
  for (int i = 0; i < 3; i++) {
    EXPECT_TRUE(kds.GetDek("s", dek.id, &out).ok());
  }
  EXPECT_EQ(FailoverKds::BreakerState::kOpen, kds.endpoint_state(0));

  // Cooldown over: the next request probes the (now healthy) primary
  // and closes the breaker.
  EXPECT_TRUE(kds.GetDek("s", dek.id, &out).ok());
  EXPECT_EQ(4, primary_->calls());
  EXPECT_EQ(FailoverKds::BreakerState::kClosed, kds.endpoint_state(0));
}

TEST_F(FailoverKdsTest, AllEndpointsDownReturnsTransientError) {
  FailoverKds kds = Make();
  primary_->FailNextWith(Status::TryAgain("down"), 1);
  secondary_->FailNextWith(Status::Busy("down"), 1);
  Dek out;
  Status s = kds.GetDek("s", DekId::Generate(), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
}

// --- Torn secure cache falls through to the KDS -----------------------------

TEST_F(SecureDekCacheTest, TornCacheFileQuarantinedAndFallsThroughToKds) {
  auto kds = std::make_shared<LocalKds>();
  Dek dek;
  {
    std::unique_ptr<SecureDekCache> cache;
    ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
    DekManager manager(kds.get(), "s1", cache.get());
    ASSERT_TRUE(manager.CreateDek(crypto::CipherKind::kAes128Ctr, &dek).ok());
    ASSERT_EQ(1u, cache->NumDeks());
  }

  // Tear the cache file in half (crash mid-write on a filesystem
  // without atomic rename, bad sector, ...).
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/cache", &contents).ok());
  contents.resize(contents.size() / 2);
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), contents, "/cache", /*sync=*/true).ok());

  // Reopen: recovered, quarantined, empty — NOT a failed open.
  std::unique_ptr<SecureDekCache> cache;
  ASSERT_TRUE(SecureDekCache::Open(env_.get(), "/cache", "pass", &cache).ok());
  EXPECT_TRUE(cache->recovered_from_corruption());
  EXPECT_EQ(0u, cache->NumDeks());
  EXPECT_TRUE(env_->FileExists("/cache.corrupt"));
  Dek out;
  EXPECT_TRUE(cache->Get(dek.id, &out).IsNotFound());

  // Resolution falls through to the KDS and re-populates the cache.
  DekManager manager(kds.get(), "s1", cache.get());
  ASSERT_TRUE(manager.ResolveDek(dek.id, &out).ok());
  EXPECT_EQ(dek.key, out.key);
  EXPECT_EQ(1u, manager.cache_misses());
  EXPECT_EQ(1u, cache->NumDeks());
}

// --- Persistent pending-delete queue ----------------------------------------

TEST(DekManagerTest, FailedKdsDeleteIsQueuedPersistedAndDrainedLater) {
  auto env = NewMemEnv();
  auto local = std::make_shared<LocalKds>();
  auto faulty = std::make_shared<FaultyKds>(local, FaultyKdsOptions());

  Dek dek;
  {
    DekManager manager(faulty.get(), "s1", nullptr);
    ASSERT_TRUE(manager.ConfigurePendingDeletes(env.get(), "/pending").ok());
    ASSERT_TRUE(manager.CreateDek(crypto::CipherKind::kAes128Ctr, &dek).ok());

    // Every request fails while the KDS is down: the delete must be
    // deferred (OK, queued, persisted), never lost.
    faulty->FailNextRequests(1000);
    ASSERT_TRUE(manager.ForgetDek(dek.id).ok());
    EXPECT_EQ(1u, manager.pending_deletes());
    EXPECT_EQ(1u, local->NumDeks());  // the key still exists in the KDS
  }

  // A restarted manager reloads the queue from disk and drains it once
  // the KDS is reachable again.
  faulty->FailNextRequests(0);
  DekManager restarted(faulty.get(), "s1", nullptr);
  ASSERT_TRUE(restarted.ConfigurePendingDeletes(env.get(), "/pending").ok());
  EXPECT_EQ(1u, restarted.pending_deletes());
  ASSERT_TRUE(restarted.TryDrainPendingDeletes().ok());
  EXPECT_EQ(0u, restarted.pending_deletes());
  EXPECT_EQ(0u, local->NumDeks());

  // The drain is durable too: yet another restart finds nothing queued.
  DekManager again(faulty.get(), "s1", nullptr);
  ASSERT_TRUE(again.ConfigurePendingDeletes(env.get(), "/pending").ok());
  EXPECT_EQ(0u, again.pending_deletes());
}

}  // namespace
}  // namespace shield
