// Read-only replica catch-up consistency: a replica calling
// TryCatchUp() while the writer is mid-flush / mid-batch — and while
// the storage layer is injecting transient faults — must never observe
// a partially durable version: a WriteBatch is visible all-or-nothing,
// and a manifest mid-rewrite never yields a mixed file set.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/iterator.h"
#include "lsm/write_batch.h"

namespace shield {
namespace {

constexpr int kKeysPerGeneration = 24;

std::string GenKey(int i) { return "gen-key-" + std::to_string(i); }
std::string GenValue(int g) {
  return "generation-" + std::to_string(g) + std::string(32, 'p');
}

class ReplicaCatchupTest : public ::testing::Test {
 protected:
  ReplicaCatchupTest() : base_(NewMemEnv()) {
    FaultInjectionOptions fopts;
    fopts.seed = 71;
    fault_env_ = std::make_unique<FaultInjectionEnv>(base_.get(), fopts);
    fault_env_->SetFaultsEnabled(false);
  }

  Options DbOptions() {
    Options options;
    options.env = fault_env_.get();
    options.write_buffer_size = 8 * 1024;
    return options;
  }

  void OpenWriterAndReplica() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(DbOptions(), "/catchup", &raw).ok());
    writer_.reset(raw);
    ASSERT_TRUE(writer_->Flush().ok());  // publish an initial manifest
    raw = nullptr;
    ASSERT_TRUE(DB::OpenReadOnly(DbOptions(), "/catchup", &raw).ok());
    replica_.reset(raw);
  }

  /// Writes one atomic generation: all keys move to generation `g` in
  /// a single WriteBatch (one WAL record).
  void WriteGeneration(int g) {
    WriteBatch batch;
    for (int i = 0; i < kKeysPerGeneration; i++) {
      batch.Put(GenKey(i), GenValue(g));
    }
    ASSERT_TRUE(writer_->Write(WriteOptions(), &batch).ok());
  }

  /// Scans the replica's generation keys. Fails the test if the view
  /// is torn (some keys on one generation, some on another). Returns
  /// the observed generation value, or "" when no keys are visible.
  std::string ObservedGeneration() {
    std::map<std::string, std::string> seen;
    std::unique_ptr<Iterator> it(replica_->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      const std::string key = it->key().ToString();
      if (key.rfind("gen-key-", 0) == 0) {
        seen[key] = it->value().ToString();
      }
    }
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
    if (seen.empty()) {
      return "";
    }
    // All-or-nothing: every key present, every value identical.
    EXPECT_EQ(static_cast<size_t>(kKeysPerGeneration), seen.size())
        << "replica observed a partial generation";
    const std::string& first = seen.begin()->second;
    for (const auto& kv : seen) {
      EXPECT_EQ(first, kv.second)
          << "replica observed a torn generation at " << kv.first;
    }
    return first;
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::unique_ptr<DB> writer_;
  std::unique_ptr<DB> replica_;
};

// Interleaved single-threaded schedule with transient storage faults
// active during every catch-up: the replica's manifest + WAL re-read
// hits injected errors, and whenever TryCatchUp does report success,
// the state it exposes must be a complete generation.
TEST_F(ReplicaCatchupTest, FaultedCatchUpNeverObservesPartialGeneration) {
  OpenWriterAndReplica();

  FaultInjectionOptions faulty;
  faulty.seed = 71;
  faulty.read_error_probability = 0.25;
  faulty.metadata_error_probability = 0.15;
  faulty.permanent_error_ratio = 0.0;

  int catchup_successes = 0;
  int catchup_failures = 0;
  for (int g = 1; g <= 30; g++) {
    WriteGeneration(g);
    if (g % 3 == 0) {
      // The flush publishes a new SST + manifest edit; catch-up right
      // after exercises the manifest-catch-up path specifically.
      ASSERT_TRUE(writer_->Flush().ok());
    }

    fault_env_->SetOptions(faulty);
    fault_env_->SetFaultsEnabled(true);
    Status s;
    for (int attempt = 0; attempt < 50; attempt++) {
      s = replica_->TryCatchUp();
      if (s.ok()) {
        break;
      }
      // A failed catch-up must leave the previous consistent view
      // intact — check the invariant on every failure too (with
      // injection paused so the check itself reads cleanly).
      fault_env_->SetFaultsEnabled(false);
      ObservedGeneration();
      fault_env_->SetFaultsEnabled(true);
      catchup_failures++;
    }
    fault_env_->SetFaultsEnabled(false);
    if (!s.ok()) {
      // Clean retry must succeed once faults stop.
      s = replica_->TryCatchUp();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    catchup_successes++;

    const std::string observed = ObservedGeneration();
    // After a successful catch-up the replica replays the writer's
    // WAL, so it is fully current, not just durable-as-of-last-flush.
    EXPECT_EQ(GenValue(g), observed);
  }
  EXPECT_EQ(30, catchup_successes);
  // The fault schedule must actually have bitten at least once for
  // this test to mean anything.
  EXPECT_GT(catchup_failures, 0);
}

// True concurrency: the writer keeps writing batches and flushing on
// its own thread while the replica catches up as fast as it can. Any
// successful catch-up, sampled at any point relative to an in-flight
// flush, must expose an atomic generation.
TEST_F(ReplicaCatchupTest, ConcurrentCatchUpSeesOnlyAtomicGenerations) {
  OpenWriterAndReplica();

  constexpr int kGenerations = 120;
  std::atomic<bool> writer_done{false};
  std::thread writer_thread([&] {
    for (int g = 1; g <= kGenerations; g++) {
      WriteGeneration(g);
      if (g % 5 == 0) {
        EXPECT_TRUE(writer_->Flush().ok());
      }
    }
    writer_done.store(true);
  });

  int views = 0;
  while (!writer_done.load()) {
    Status s = replica_->TryCatchUp();
    if (s.ok()) {
      ObservedGeneration();  // asserts atomicity internally
      views++;
    }
    std::this_thread::yield();
  }
  writer_thread.join();

  // Final catch-up on the quiesced writer must land on the last
  // generation exactly.
  ASSERT_TRUE(replica_->TryCatchUp().ok());
  EXPECT_EQ(GenValue(kGenerations), ObservedGeneration());
  EXPECT_GT(views, 0);
}

// The catch-up lag properties quantify how far a replica trails the
// shared manifest: zero on a caught-up replica, nonzero once the
// writer publishes new version edits, and back to zero after the next
// successful TryCatchUp (the same signal the replica.catchup health
// detector and the shield_replica_catchup_lag_* gauges consume).
TEST_F(ReplicaCatchupTest, LagPropertiesDrainToZeroAfterCatchUp) {
  OpenWriterAndReplica();

  auto lag = [&](const char* prop) {
    std::string v;
    EXPECT_TRUE(replica_->GetProperty(prop, &v)) << prop;
    return v.empty() ? 0ull : std::stoull(v);
  };

  ASSERT_TRUE(replica_->TryCatchUp().ok());
  EXPECT_EQ(0u, lag("shield.replica.catchup-lag-generations"));
  EXPECT_EQ(0u, lag("shield.replica.catchup-lag-bytes"));

  // A flush appends version edits past the replica's applied prefix.
  WriteGeneration(1);
  ASSERT_TRUE(writer_->Flush().ok());
  EXPECT_GT(lag("shield.replica.catchup-lag-generations"), 0u);
  EXPECT_GT(lag("shield.replica.catchup-lag-bytes"), 0u);

  ASSERT_TRUE(replica_->TryCatchUp().ok());
  EXPECT_EQ(0u, lag("shield.replica.catchup-lag-generations"));
  EXPECT_EQ(0u, lag("shield.replica.catchup-lag-bytes"));
  EXPECT_EQ(GenValue(1), ObservedGeneration());

  // The writer's own probe never reports lag: the properties are
  // replica-only by construction.
  std::string v;
  ASSERT_TRUE(writer_->GetProperty("shield.replica.catchup-lag-bytes", &v));
  EXPECT_EQ("0", v);
}

}  // namespace
}  // namespace shield
