// Crash-simulation tests: snapshot the backing filesystem of a LIVE
// database (as a system crash would leave it — no clean close, no
// final buffer drains) and recover from the copy. Synced writes must
// survive; the recovered store must be internally consistent.

#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "kds/faulty_kds.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

// Copies every file under /db from one env to another, byte-for-byte,
// while the source may still be open by a running DB.
void SnapshotFiles(Env* from, Env* to, const std::string& dir) {
  to->CreateDirIfMissing(dir);
  std::vector<std::string> children;
  ASSERT_TRUE(from->GetChildren(dir, &children).ok());
  for (const std::string& child : children) {
    std::string contents;
    if (ReadFileToString(from, dir + "/" + child, &contents).ok()) {
      ASSERT_TRUE(
          WriteStringToFile(to, contents, dir + "/" + child, false).ok());
    }
  }
}

struct CrashParam {
  EncryptionMode mode;
  size_t wal_buffer_size;
  const char* name;
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashParam> {
 protected:
  Options MakeOptions(Env* env) {
    Options options;
    options.env = env;
    options.write_buffer_size = 64 * 1024;
    options.encryption.mode = GetParam().mode;
    options.encryption.wal_buffer_size = GetParam().wal_buffer_size;
    if (GetParam().mode == EncryptionMode::kEncFS) {
      options.encryption.instance_key = std::string(16, 'c');
    }
    if (GetParam().mode == EncryptionMode::kShield) {
      if (kds_ == nullptr) {
        kds_ = std::make_shared<LocalKds>();
      }
      options.encryption.kds = kds_;
    }
    return options;
  }

  std::shared_ptr<Kds> kds_;
};

TEST_P(CrashRecoveryTest, SyncedWritesSurviveCrash) {
  auto live_env = NewMemEnv();
  Options options = MakeOptions(live_env.get());

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  WriteOptions synced;
  synced.sync = true;
  std::map<std::string, std::string> synced_model;
  Random rnd(GetParam().wal_buffer_size + 1);
  for (int i = 0; i < 300; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = "value" + std::to_string(rnd.Next());
    // Mix synced and unsynced writes; only synced ones are guaranteed.
    if (i % 3 == 0) {
      ASSERT_TRUE(db->Put(synced, key, value).ok());
      synced_model[key] = value;
    } else {
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    }
  }

  // "Crash": snapshot the storage while the DB is still running.
  auto crashed_env = NewMemEnv();
  SnapshotFiles(live_env.get(), crashed_env.get(), "/db");
  db.reset();  // shut the original down (state no longer matters)

  Options recovered_options = MakeOptions(crashed_env.get());
  DB* raw_recovered = nullptr;
  Status s = DB::Open(recovered_options, "/db", &raw_recovered);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::unique_ptr<DB> recovered(raw_recovered);

  for (const auto& [key, value] : synced_model) {
    std::string got;
    Status get_status = recovered->Get(ReadOptions(), key, &got);
    ASSERT_TRUE(get_status.ok())
        << key << ": " << get_status.ToString();
    EXPECT_EQ(value, got) << key;
  }
}

TEST_P(CrashRecoveryTest, CrashAfterFlushKeepsSstData) {
  auto live_env = NewMemEnv();
  Options options = MakeOptions(live_env.get());
  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "sst-key" + std::to_string(i),
                        std::string(100, 's'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // More (unflushed, unsynced) writes after the flush.
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "late-key" + std::to_string(i), "x").ok());
  }

  auto crashed_env = NewMemEnv();
  SnapshotFiles(live_env.get(), crashed_env.get(), "/db");
  db.reset();

  Options recovered_options = MakeOptions(crashed_env.get());
  DB* raw_recovered = nullptr;
  ASSERT_TRUE(DB::Open(recovered_options, "/db", &raw_recovered).ok());
  std::unique_ptr<DB> recovered(raw_recovered);
  for (int i = 0; i < 1000; i++) {
    std::string value;
    ASSERT_TRUE(recovered
                    ->Get(ReadOptions(), "sst-key" + std::to_string(i),
                          &value)
                    .ok())
        << i;
  }
}

TEST_P(CrashRecoveryTest, RepeatedCrashesStayConsistent) {
  auto env = NewMemEnv();
  std::map<std::string, std::string> synced_model;
  Random rnd(99);

  for (int round = 0; round < 4; round++) {
    Options options = MakeOptions(env.get());
    DB* raw_db = nullptr;
    ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
    std::unique_ptr<DB> db(raw_db);

    // Everything synced from previous rounds must still be there.
    for (const auto& [key, value] : synced_model) {
      std::string got;
      ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
      ASSERT_EQ(value, got);
    }

    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < 200; i++) {
      const std::string key =
          "r" + std::to_string(round) + "-" + std::to_string(i);
      const std::string value = std::to_string(rnd.Next());
      ASSERT_TRUE(db->Put(synced, key, value).ok());
      synced_model[key] = value;
    }

    // Crash: snapshot to a fresh env and continue on the snapshot.
    auto next_env = NewMemEnv();
    SnapshotFiles(env.get(), next_env.get(), "/db");
    db.reset();
    env = std::move(next_env);
  }
}

// Recovery needs the KDS to decrypt every SST and WAL it replays. A
// KDS that is briefly unavailable when the instance comes back up must
// delay recovery, not fail it: the retry budget on DEK lookups rides
// out the outage.
TEST(KdsOutageRecoveryTest, RecoveryRetriesThroughKdsOutage) {
  auto env = NewMemEnv();
  auto local = std::make_shared<LocalKds>();
  auto faulty = std::make_shared<FaultyKds>(local, FaultyKdsOptions());

  Options options;
  options.env = env.get();
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = faulty;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  {
    std::unique_ptr<DB> db(raw);
    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(
          db->Put(synced, "key" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }

  // The first few KDS requests of the reopen fail transiently; the
  // per-lookup retry policy (8 attempts) must absorb them.
  faulty->FailNextRequests(5);
  DB* raw2 = nullptr;
  Status s = DB::Open(options, "/db", &raw2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::unique_ptr<DB> recovered(raw2);
  EXPECT_GE(faulty->outage_rejections(), 5u);
  for (int i = 0; i < 200; i++) {
    std::string value;
    ASSERT_TRUE(
        recovered->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("value", value);
  }
}

// A tampered secure DEK cache must fail authentication, and that
// failure must fail DB::Open — silently ignoring it would let an
// attacker feed the engine chosen keys.
TEST(DekCacheCorruptionTest, TamperedCacheFailsOpen) {
  auto env = NewMemEnv();
  auto kds = std::make_shared<LocalKds>();

  Options options;
  options.env = env.get();
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = kds;
  options.encryption.use_secure_dek_cache = true;
  options.encryption.passkey = "crash-test-passkey";

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  {
    std::unique_ptr<DB> db(raw);
    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put(synced, "key" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }

  // Flip one byte in the persisted cache.
  std::string cache;
  ASSERT_TRUE(ReadFileToString(env.get(), "/db/DEK_CACHE", &cache).ok());
  ASSERT_FALSE(cache.empty());
  cache[cache.size() / 2] ^= 0x01;
  ASSERT_TRUE(
      WriteStringToFile(env.get(), cache, "/db/DEK_CACHE", true).ok());

  DB* raw2 = nullptr;
  Status s = DB::Open(options, "/db", &raw2);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsPermissionDenied() || s.IsCorruption()) << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Engines, CrashRecoveryTest,
    ::testing::Values(CrashParam{EncryptionMode::kNone, 0, "Plain"},
                      CrashParam{EncryptionMode::kEncFS, 0, "EncFS"},
                      CrashParam{EncryptionMode::kShield, 0, "Shield"},
                      CrashParam{EncryptionMode::kShield, 512,
                                 "ShieldWalBuf"}),
    [](const ::testing::TestParamInfo<CrashParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace shield
