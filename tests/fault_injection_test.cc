// Fault-injection tests: seeded, deterministic fault schedules across
// the storage env (FaultInjectionEnv), the KDS (FaultyKds) and the
// disaggregated-storage fabric (NetworkSimulator/RemoteEnv), plus the
// retry/backoff machinery that rides them out. The randomized harness
// runs open/write/flush/crash/reopen cycles under injected faults and
// asserts — against a shadow in-memory model — that no acknowledged
// durable write is ever lost (EncFS and SHIELD).
//
// Stress knobs (also used by the `fault_injection_stress` CTest entry):
//   SHIELD_FAULT_SEED_BASE   first seed of the randomized schedules
//   SHIELD_FAULT_SEED_COUNT  seeds per engine configuration

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "ds/storage_service.h"
#include "env/fault_injection_env.h"
#include "env/readahead_file.h"
#include "gtest/gtest.h"
#include "kds/faulty_kds.h"
#include "kds/local_kds.h"
#include "lsm/compaction_service.h"
#include "lsm/db.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/statistics.h"
#include "util/status.h"

namespace shield {
namespace {

uint64_t SeedBase() {
  const char* v = std::getenv("SHIELD_FAULT_SEED_BASE");
  return v != nullptr ? strtoull(v, nullptr, 10) : 1;
}

int SeedCount() {
  const char* v = std::getenv("SHIELD_FAULT_SEED_COUNT");
  return v != nullptr ? atoi(v) : 13;
}

// --- Status / RetryPolicy ---------------------------------------------

TEST(StatusTransientTest, ClassifiesTransientCodes) {
  EXPECT_TRUE(Status::TryAgain("x").IsTryAgain());
  EXPECT_TRUE(Status::TryAgain("x").IsTransient());
  EXPECT_TRUE(Status::Busy("x").IsTransient());
  EXPECT_FALSE(Status::IOError("x").IsTransient());
  EXPECT_FALSE(Status::Corruption("x").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_NE(Status::TryAgain("x").ToString().find("TryAgain"),
            std::string::npos);
}

TEST(RetryPolicyTest, RetriesTransientUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_micros = 10;
  policy.max_backoff_micros = 50;
  int calls = 0;
  int attempts = 0;
  Status s = RunWithRetry(
      policy,
      [&] {
        calls++;
        return calls < 3 ? Status::TryAgain("flaky") : Status::OK();
      },
      &attempts);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(3, calls);
  EXPECT_EQ(3, attempts);
}

TEST(RetryPolicyTest, DoesNotRetryPermanentErrors) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Status s = RunWithRetry(policy, [&] {
    calls++;
    return Status::IOError("disk gone");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(1, calls);
}

TEST(RetryPolicyTest, ExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 10;
  policy.max_backoff_micros = 20;
  int calls = 0;
  Status s = RunWithRetry(policy, [&] {
    calls++;
    return Status::Busy("still down");
  });
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(3, calls);
}

TEST(RetryPolicyTest, BackoffIsDeterministicAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 1000;
  policy.multiplier = 2.0;
  policy.seed = 77;

  uint64_t state_a = policy.seed;
  uint64_t state_b = policy.seed;
  for (int attempt = 1; attempt <= 8; attempt++) {
    const uint64_t a = policy.BackoffMicros(attempt, &state_a);
    const uint64_t b = policy.BackoffMicros(attempt, &state_b);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    EXPECT_LE(a, policy.max_backoff_micros);
  }
  EXPECT_EQ(0u, policy.BackoffMicros(1, &state_a));  // no sleep before 1st
}

// --- FaultInjectionEnv ------------------------------------------------

TEST(FaultInjectionEnvTest, CrashKeepsOnlySyncedPrefix) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.torn_write_probability = 0.0;  // exact synced prefix
  FaultInjectionEnv fenv(base.get(), fopts);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile("/f1", &file).ok());
  ASSERT_TRUE(file->Append("synced-part").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("unsynced-tail").ok());
  // No Sync, no Close before the crash.
  ASSERT_TRUE(fenv.SimulateCrash().ok());
  file.reset();

  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f1", &contents).ok());
  EXPECT_EQ("synced-part", contents);
  EXPECT_EQ(1u, fenv.crashes());
  EXPECT_EQ(strlen("unsynced-tail"), fenv.dropped_bytes());
}

TEST(FaultInjectionEnvTest, CloseDoesNotMakeDataDurable) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.torn_write_probability = 0.0;
  FaultInjectionEnv fenv(base.get(), fopts);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile("/f2", &file).ok());
  ASSERT_TRUE(file->Append("never-synced").ok());
  ASSERT_TRUE(file->Close().ok());
  file.reset();
  ASSERT_TRUE(fenv.SimulateCrash().ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f2", &contents).ok());
  EXPECT_EQ("", contents);
}

TEST(FaultInjectionEnvTest, TornTailIsAPrefixOfTheUnsyncedData) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = 1234;
  fopts.torn_write_probability = 1.0;
  FaultInjectionEnv fenv(base.get(), fopts);

  const std::string synced = "AAAA";
  const std::string unsynced = "BBBBBBBB";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile("/f3", &file).ok());
  ASSERT_TRUE(file->Append(synced).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(unsynced).ok());
  ASSERT_TRUE(fenv.SimulateCrash().ok());
  file.reset();

  std::string contents;
  ASSERT_TRUE(ReadFileToString(base.get(), "/f3", &contents).ok());
  ASSERT_GE(contents.size(), synced.size());
  ASSERT_LE(contents.size(), synced.size() + unsynced.size());
  EXPECT_EQ((synced + unsynced).substr(0, contents.size()), contents);
}

TEST(FaultInjectionEnvTest, KindMaskTargetsOnlySelectedFiles) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.write_error_probability = 1.0;
  fopts.fault_kind_mask = FileKindBit(FileKind::kWal);
  FaultInjectionEnv fenv(base.get(), fopts);

  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(fenv.NewWritableFile("/db/000001.log", &wal).ok());
  EXPECT_FALSE(wal->Append("x").ok());  // WAL writes always fail

  std::unique_ptr<WritableFile> sst;
  ASSERT_TRUE(fenv.NewWritableFile("/db/000002.sst", &sst).ok());
  EXPECT_TRUE(sst->Append("x").ok());  // SSTs are outside the mask
  EXPECT_GT(fenv.injected_errors(), 0u);
}

TEST(FaultInjectionEnvTest, TransientVersusPermanentErrors) {
  auto base = NewMemEnv();
  ASSERT_TRUE(WriteStringToFile(base.get(), "payload", "/f4", true).ok());

  FaultInjectionOptions fopts;
  fopts.read_error_probability = 1.0;
  fopts.permanent_error_ratio = 0.0;
  FaultInjectionEnv fenv(base.get(), fopts);
  {
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(fenv.NewSequentialFile("/f4", &file).ok());
    char scratch[16];
    Slice result;
    Status s = file->Read(sizeof(scratch), &result, scratch);
    EXPECT_TRUE(s.IsTransient()) << s.ToString();
  }

  fopts.permanent_error_ratio = 1.0;
  fenv.SetOptions(fopts);
  {
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(fenv.NewSequentialFile("/f4", &file).ok());
    char scratch[16];
    Slice result;
    Status s = file->Read(sizeof(scratch), &result, scratch);
    EXPECT_TRUE(s.IsIOError()) << s.ToString();
  }
}

TEST(FaultInjectionEnvTest, ShortReadsOnlyOnPositionalReads) {
  auto base = NewMemEnv();
  const std::string payload(1024, 'p');
  ASSERT_TRUE(WriteStringToFile(base.get(), payload, "/f5", true).ok());

  FaultInjectionOptions fopts;
  fopts.seed = 7;
  fopts.short_read_probability = 1.0;
  FaultInjectionEnv fenv(base.get(), fopts);

  // Positional read: shortened, OK status.
  std::unique_ptr<RandomAccessFile> ra;
  ASSERT_TRUE(fenv.NewRandomAccessFile("/f5", &ra).ok());
  std::string scratch(payload.size(), 0);
  Slice result;
  ASSERT_TRUE(ra->Read(0, payload.size(), &result, scratch.data()).ok());
  EXPECT_LT(result.size(), payload.size());

  // Sequential read: never shortened (EOF semantics must stay exact).
  std::unique_ptr<SequentialFile> seq;
  ASSERT_TRUE(fenv.NewSequentialFile("/f5", &seq).ok());
  std::string seq_scratch(payload.size(), 0);
  Slice seq_result;
  ASSERT_TRUE(
      seq->Read(payload.size(), &seq_result, seq_scratch.data()).ok());
  EXPECT_EQ(payload.size(), seq_result.size());
  EXPECT_GT(fenv.injected_short_reads(), 0u);
}

// --- Readahead under injected faults ----------------------------------

// Every positional read torn: the prefetch window can never fill, so
// the wrapper must degrade to exact direct reads. Whatever bytes come
// back must be byte-correct — a short result is acceptable, a wrong
// one never is.
TEST(ReadaheadFaultTest, TornPrefetchDegradesWithoutCorruption) {
  auto base = NewMemEnv();
  Random rnd(9);
  std::string payload;
  for (int i = 0; i < 128 * 1024; i++) {
    payload.push_back(static_cast<char>(rnd.Uniform(256)));
  }
  ASSERT_TRUE(WriteStringToFile(base.get(), payload, "/ra", true).ok());

  FaultInjectionOptions fopts;
  fopts.seed = 11;
  fopts.short_read_probability = 1.0;
  FaultInjectionEnv fenv(base.get(), fopts);
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(fenv.NewRandomAccessFile("/ra", &file).ok());

  ReadaheadRandomAccessFile ra(file.get(), 4 * 1024, 64 * 1024,
                               /*stats=*/nullptr);
  uint64_t offset = 0;
  while (offset < payload.size()) {
    char scratch[1024];
    Slice result;
    const size_t want =
        std::min<size_t>(sizeof(scratch), payload.size() - offset);
    ASSERT_TRUE(ra.Read(offset, want, &result, scratch).ok());
    ASSERT_LE(result.size(), want);
    EXPECT_EQ(0, memcmp(result.data(), payload.data() + offset,
                        result.size()))
        << "corrupt readahead bytes at offset " << offset;
    offset += std::max<size_t>(result.size(), 1);
  }
  EXPECT_GT(fenv.injected_short_reads(), 0u);

  // Faults off: the same wrapper must serve the whole file exactly,
  // now actually hitting the prefetch window.
  fenv.SetFaultsEnabled(false);
  auto stats = CreateDBStatistics();
  ReadaheadRandomAccessFile healthy(file.get(), 4 * 1024, 64 * 1024,
                                    stats.get());
  for (uint64_t off = 0; off < payload.size(); off += 1024) {
    char scratch[1024];
    Slice result;
    const size_t want = std::min<size_t>(1024, payload.size() - off);
    ASSERT_TRUE(healthy.Read(off, want, &result, scratch).ok());
    ASSERT_EQ(want, result.size());
    ASSERT_EQ(0, memcmp(result.data(), payload.data() + off, want));
  }
  EXPECT_GT(stats->GetTickerCount(Tickers::kIoReadaheadHit), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kIoReadaheadBytes), 0u);
}

// End-to-end: a readahead scan and MultiGet batches over an encrypted
// DB keep returning exact values while the storage layer tears reads.
// (Block reads retry transient shorts; a short coalesced MultiGet span
// falls back to per-block reads.)
TEST(ReadaheadFaultTest, ScanAndMultiGetSurviveShortReads) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = 23;
  FaultInjectionEnv fenv(base.get(), fopts);
  fenv.SetFaultsEnabled(false);  // clean fill

  auto kds = std::make_shared<LocalKds>();
  Options options;
  options.env = &fenv;
  options.write_buffer_size = 16 * 1024;
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = kds;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 1200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%05d", i);
    const std::string value = "value" + std::to_string(i * 2654435761ull);
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    model[key] = value;
    if (i % 400 == 399) {
      ASSERT_TRUE(db->Flush().ok());
      db->WaitForIdle();
    }
  }
  ASSERT_TRUE(db->Flush().ok());
  db->WaitForIdle();

  fopts.short_read_probability = 0.1;
  fenv.SetOptions(fopts);
  fenv.SetFaultsEnabled(true);

  ReadOptions scan_options;
  scan_options.readahead_size = 32 * 1024;
  scan_options.fill_cache = false;
  std::unique_ptr<Iterator> it(db->NewIterator(scan_options));
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(model.end(), mit);
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  ASSERT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_EQ(model.end(), mit);
  it.reset();

  ReadOptions batch_options;
  batch_options.fill_cache = false;
  std::vector<std::string> batch;
  for (int i = 0; i < 1200; i += 3) {
    char key[32];
    snprintf(key, sizeof(key), "key%05d", i);
    batch.push_back(key);
  }
  std::vector<Slice> keys(batch.begin(), batch.end());
  std::vector<std::string> values;
  std::vector<Status> statuses = db->MultiGet(batch_options, keys, &values);
  for (size_t i = 0; i < batch.size(); i++) {
    ASSERT_TRUE(statuses[i].ok())
        << batch[i] << ": " << statuses[i].ToString();
    EXPECT_EQ(model[batch[i]], values[i]) << batch[i];
  }
  EXPECT_GT(fenv.injected_short_reads(), 0u);
}

// --- FaultyKds --------------------------------------------------------

TEST(FaultyKdsTest, OutageWindowByRequestCount) {
  auto base = std::make_shared<LocalKds>();
  FaultyKds kds(base, FaultyKdsOptions());
  kds.FailNextRequests(2);

  Dek dek;
  EXPECT_TRUE(kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek)
                  .IsTransient());
  EXPECT_TRUE(kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek)
                  .IsTransient());
  EXPECT_TRUE(kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek).ok());
  EXPECT_EQ(2u, kds.outage_rejections());

  Dek fetched;
  EXPECT_TRUE(kds.GetDek("s1", dek.id, &fetched).ok());
  EXPECT_EQ(dek.key, fetched.key);
}

TEST(FaultyKdsTest, WallClockOutageHeals) {
  auto base = std::make_shared<LocalKds>();
  FaultyKds kds(base, FaultyKdsOptions());

  Dek dek;
  ASSERT_TRUE(kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek).ok());

  kds.StartOutageFor(60ull * 1000 * 1000);  // a minute — heal manually
  Dek fetched;
  EXPECT_TRUE(kds.GetDek("s1", dek.id, &fetched).IsTransient());
  kds.HealOutage();
  EXPECT_TRUE(kds.GetDek("s1", dek.id, &fetched).ok());
}

TEST(FaultyKdsTest, StaleReplicaServesDeletedDek) {
  auto base = std::make_shared<LocalKds>();
  FaultyKdsOptions fopts;
  fopts.stale_probability = 1.0;
  FaultyKds kds(base, fopts);

  Dek dek;
  ASSERT_TRUE(kds.CreateDek("s1", crypto::CipherKind::kAes128Ctr, &dek).ok());
  ASSERT_TRUE(kds.DeleteDek("s1", dek.id).ok());

  // The base KDS no longer has it, but the "stale replica" still does.
  Dek stale;
  EXPECT_TRUE(kds.GetDek("s1", dek.id, &stale).ok());
  EXPECT_EQ(dek.key, stale.key);
  EXPECT_GE(kds.stale_served(), 1u);
}

// --- NetworkSimulator fault modes ------------------------------------

TEST(NetworkFaultTest, PartitionFailsTransferUntilHealed) {
  NetworkSimOptions nopts;
  nopts.rtt_micros = 0;
  NetworkSimulator net(nopts);

  EXPECT_TRUE(net.TryTransfer(100, true).ok());
  net.StartPartition();
  EXPECT_TRUE(net.partitioned());
  EXPECT_TRUE(net.TryTransfer(100, true).IsTransient());
  net.HealPartition();
  EXPECT_FALSE(net.partitioned());
  EXPECT_TRUE(net.TryTransfer(100, true).ok());
  EXPECT_GE(net.injected_faults(), 1u);
}

TEST(NetworkFaultTest, TimedPartitionAutoHeals) {
  NetworkSimOptions nopts;
  nopts.rtt_micros = 0;
  NetworkSimulator net(nopts);

  net.StartPartitionFor(2000);
  EXPECT_TRUE(net.TryTransfer(1, true).IsTransient());
  SleepForMicros(3000);
  EXPECT_TRUE(net.TryTransfer(1, true).ok());
}

TEST(NetworkFaultTest, PacketErrorsFailRequests) {
  NetworkSimOptions nopts;
  nopts.rtt_micros = 0;
  nopts.error_probability = 1.0;
  NetworkSimulator net(nopts);
  EXPECT_TRUE(net.TryTransfer(100, true).IsTransient());
  EXPECT_GE(net.injected_faults(), 1u);
}

// --- RemoteEnv (disaggregated storage) under fabric faults ------------

TEST(RemoteEnvFaultTest, RetriesRideOutPacketErrors) {
  auto backing = NewMemEnv();
  NetworkSimOptions nopts;
  nopts.rtt_micros = 10;
  nopts.bandwidth_bytes_per_sec = 10ull * 1000 * 1000 * 1000;
  nopts.fault_seed = 42;
  nopts.error_probability = 0.1;  // every request flips a seeded coin
  StorageService service(backing.get(), nopts);
  auto remote = NewRemoteEnv(&service, nullptr);

  Options options;
  options.env = remote.get();
  options.write_buffer_size = 16 * 1024;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 200; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(i % 4 == 0 ? synced : WriteOptions(), key,
                        "v" + std::to_string(i))
                    .ok())
        << i;
  }
  ASSERT_TRUE(db->Flush().ok());
  for (int i = 0; i < 200; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("v" + std::to_string(i), value);
  }
  db.reset();

  // Reopen over the same faulty fabric: recovery must retry too.
  DB* raw2 = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw2).ok());
  std::unique_ptr<DB> reopened(raw2);
  for (int i = 0; i < 200; i++) {
    std::string value;
    ASSERT_TRUE(
        reopened->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
        << i;
  }
  EXPECT_GT(service.network()->injected_faults(), 0u)
      << "the schedule never actually injected a fault";
}

TEST(RemoteEnvFaultTest, ShortPartitionHealsWithinRetryBudget) {
  auto backing = NewMemEnv();
  NetworkSimOptions nopts;
  nopts.rtt_micros = 10;
  nopts.bandwidth_bytes_per_sec = 10ull * 1000 * 1000 * 1000;
  StorageService service(backing.get(), nopts);
  auto remote = NewRemoteEnv(&service, nullptr);

  Options options;
  options.env = remote.get();
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  // 500 us partition vs a ~3 ms client retry budget: the write must
  // succeed without the application ever seeing the fault.
  service.network()->StartPartitionFor(500);
  WriteOptions synced;
  synced.sync = true;
  Status s = db->Put(synced, "key", "value");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(service.network()->injected_faults(), 1u);

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key", &value).ok());
  EXPECT_EQ("value", value);
}

// --- Offloaded compaction fallback ------------------------------------

/// A compaction service whose requests always fail transiently — an
/// unreachable or overloaded remote worker.
class UnavailableCompactionService : public CompactionService {
 public:
  Status RunCompaction(const CompactionJobSpec& /*job*/,
                       CompactionJobResult* /*result*/) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return Status::TryAgain("compaction worker unreachable");
  }
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> calls_{0};
};

TEST(OffloadFallbackTest, FallsBackToLocalCompaction) {
  auto env = NewMemEnv();
  UnavailableCompactionService service;

  Options options;
  options.env = env.get();
  options.write_buffer_size = 16 * 1024;
  options.compaction_service = &service;
  options.offload_max_attempts = 2;
  options.offload_fallback_to_local = true;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                        std::string(100, 'v'))
                    .ok());
  }
  Status s = db->CompactRange(nullptr, nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  db->WaitForIdle();

  EXPECT_GE(service.calls(), 2u);  // the retry budget was spent first
  std::string fallbacks;
  ASSERT_TRUE(db->GetProperty("shield.offload-fallbacks", &fallbacks));
  EXPECT_GE(strtoull(fallbacks.c_str(), nullptr, 10), 1u);

  for (int i = 0; i < 400; i++) {
    std::string value;
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ(std::string(100, 'v'), value);
  }
}

TEST(OffloadFallbackTest, NoFallbackSurfacesTheError) {
  auto env = NewMemEnv();
  UnavailableCompactionService service;

  Options options;
  options.env = env.get();
  options.compaction_service = &service;
  options.offload_max_attempts = 2;
  options.offload_fallback_to_local = false;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "key" + std::to_string(i), "value").ok());
  }
  Status s = db->CompactRange(nullptr, nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  EXPECT_GE(service.calls(), 2u);
}

// --- Hardened recovery -------------------------------------------------

TEST(RecoveryHardeningTest, TornManifestTailToleratedUnlessParanoid) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  {
    std::unique_ptr<DB> db(raw);
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), "key" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }

  // Damage the MANIFEST tail: append a well-formed log record whose
  // checksum is wrong, as a bit-flipped crash remnant would leave. (A
  // record that merely runs past EOF is indistinguishable from a torn
  // tail and is always tolerated; a checksum mismatch is reported.)
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("/db", &children).ok());
  std::string manifest;
  for (const std::string& child : children) {
    if (child.compare(0, 9, "MANIFEST-") == 0) {
      manifest = "/db/" + child;
    }
  }
  ASSERT_FALSE(manifest.empty());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), manifest, &contents).ok());
  const std::string payload(20, 'z');
  char header[7];
  header[0] = header[1] = header[2] = header[3] = '\x5a';  // bad crc
  header[4] = static_cast<char>(payload.size());
  header[5] = 0;
  header[6] = 1;  // kFullType
  contents.append(header, sizeof(header));
  contents.append(payload);
  ASSERT_TRUE(WriteStringToFile(env.get(), contents, manifest, true).ok());

  // Paranoid mode refuses the damaged descriptor...
  Options paranoid = options;
  paranoid.paranoid_checks = true;
  DB* raw_paranoid = nullptr;
  Status ps = DB::Open(paranoid, "/db", &raw_paranoid);
  ASSERT_FALSE(ps.ok());
  EXPECT_TRUE(ps.IsCorruption()) << ps.ToString();

  // ...default mode salvages the intact prefix and serves all data.
  DB* raw_default = nullptr;
  Status ds = DB::Open(options, "/db", &raw_default);
  ASSERT_TRUE(ds.ok()) << ds.ToString();
  std::unique_ptr<DB> recovered(raw_default);
  for (int i = 0; i < 100; i++) {
    std::string value;
    ASSERT_TRUE(
        recovered->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ("value", value);
  }
}

TEST(RecoveryHardeningTest, WalTruncatedBelowShieldHeaderTolerated) {
  auto env = NewMemEnv();
  auto kds = std::make_shared<LocalKds>();
  Options options;
  options.env = env.get();
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = kds;
  options.encryption.wal_buffer_size = 512;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  {
    std::unique_ptr<DB> db(raw);
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "flushed" + std::to_string(i),
                          "value")
                      .ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    // A little unsynced data so the live WAL is non-trivial.
    ASSERT_TRUE(db->Put(WriteOptions(), "tail", "lost").ok());
  }

  // Truncate the newest WAL below the 64-byte SHIELD file header — a
  // crash during the very first buffered append.
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("/db", &children).ok());
  std::string newest_log;
  uint64_t newest_number = 0;
  for (const std::string& child : children) {
    const size_t dot = child.find(".log");
    if (dot != std::string::npos) {
      const uint64_t number = strtoull(child.c_str(), nullptr, 10);
      if (number >= newest_number) {
        newest_number = number;
        newest_log = "/db/" + child;
      }
    }
  }
  ASSERT_FALSE(newest_log.empty());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), newest_log, &contents).ok());
  ASSERT_TRUE(WriteStringToFile(env.get(), contents.substr(0, 10), newest_log,
                                true)
                  .ok());

  // Paranoid mode surfaces the truncation...
  Options paranoid = options;
  paranoid.paranoid_checks = true;
  DB* raw_paranoid = nullptr;
  EXPECT_FALSE(DB::Open(paranoid, "/db", &raw_paranoid).ok());

  // ...default mode salvages: everything flushed is still there.
  DB* raw_default = nullptr;
  Status s = DB::Open(options, "/db", &raw_default);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::unique_ptr<DB> recovered(raw_default);
  for (int i = 0; i < 100; i++) {
    std::string value;
    ASSERT_TRUE(recovered
                    ->Get(ReadOptions(), "flushed" + std::to_string(i),
                          &value)
                    .ok())
        << i;
  }
  std::string salvaged;
  ASSERT_TRUE(
      recovered->GetProperty("shield.recovery-salvaged-logs", &salvaged));
  EXPECT_GE(strtoull(salvaged.c_str(), nullptr, 10), 1u);
}

TEST(RecoveryHardeningTest, ShieldRidesOutFlakyKds) {
  auto env = NewMemEnv();
  auto local = std::make_shared<LocalKds>();
  FaultyKdsOptions fopts;
  fopts.seed = 9;
  fopts.error_probability = 0.3;  // well inside the 8-attempt budget
  auto faulty = std::make_shared<FaultyKds>(local, fopts);

  Options options;
  options.env = env.get();
  options.write_buffer_size = 16 * 1024;
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = faulty;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  {
    std::unique_ptr<DB> db(raw);
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                          std::string(100, 'v'))
                      .ok())
          << i;
    }
    ASSERT_TRUE(db->Flush().ok());
  }

  DB* raw2 = nullptr;
  Status s = DB::Open(options, "/db", &raw2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::unique_ptr<DB> reopened(raw2);
  for (int i = 0; i < 300; i++) {
    std::string value;
    ASSERT_TRUE(
        reopened->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
  }
  EXPECT_GT(faulty->injected_errors(), 0u);
}

// --- Randomized seeded schedules --------------------------------------

/// One full fault schedule: several cycles of (verify, faulty workload,
/// crash). A shadow model tracks what the DB acknowledged; `dirty`
/// holds keys whose durable value is ambiguous (written since the last
/// durability barrier, or whose write failed). After each crash, clean
/// keys must match the model exactly; dirty keys are re-synced from the
/// recovered DB (any acknowledged-but-unsynced value may legitimately
/// have been lost).
void RunFaultSchedule(uint64_t seed, EncryptionMode mode,
                      size_t wal_buffer) {
  SCOPED_TRACE("schedule seed " + std::to_string(seed));

  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = seed;
  fopts.read_error_probability = 0.02;
  fopts.write_error_probability = 0.02;
  fopts.metadata_error_probability = 0.01;
  fopts.permanent_error_ratio = 0.1;
  fopts.short_read_probability = 0.02;
  fopts.torn_write_probability = 0.5;
  FaultInjectionEnv fenv(base.get(), fopts);

  auto kds = std::make_shared<LocalKds>();
  auto make_options = [&] {
    Options options;
    options.env = &fenv;
    options.write_buffer_size = 16 * 1024;
    options.encryption.mode = mode;
    options.encryption.wal_buffer_size = wal_buffer;
    if (mode == EncryptionMode::kEncFS) {
      options.encryption.instance_key = std::string(16, 'k');
    }
    if (mode == EncryptionMode::kShield) {
      options.encryption.kds = kds;  // the KDS survives "crashes"
    }
    return options;
  };

  std::map<std::string, std::string> model;  // acknowledged state
  std::set<std::string> dirty;               // durability-ambiguous keys
  std::set<std::string> universe;            // every key ever touched

  Random rnd(seed * 2654435761ull + 17);

  for (int cycle = 0; cycle < 3; cycle++) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));

    fenv.SetFaultsEnabled(false);
    Options options = make_options();
    DB* raw = nullptr;
    Status open_status = DB::Open(options, "/db", &raw);
    ASSERT_TRUE(open_status.ok()) << open_status.ToString();
    std::unique_ptr<DB> db(raw);

    // Re-sync ambiguous keys to whatever actually survived the crash.
    for (const std::string& key : dirty) {
      std::string got;
      Status s = db->Get(ReadOptions(), key, &got);
      if (s.ok()) {
        model[key] = got;
      } else if (s.IsNotFound()) {
        model.erase(key);
      } else {
        FAIL() << "corrupt read of dirty key " << key << ": "
               << s.ToString();
      }
    }
    dirty.clear();

    // Every durably acknowledged key must read back exactly.
    for (const std::string& key : universe) {
      std::string got;
      Status s = db->Get(ReadOptions(), key, &got);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
        ASSERT_EQ(it->second, got) << key;
      } else {
        ASSERT_TRUE(s.IsNotFound()) << key << ": " << s.ToString();
      }
    }

    // Faulty workload phase.
    fenv.SetFaultsEnabled(true);
    for (int op = 0; op < 120; op++) {
      const std::string key = "key" + std::to_string(rnd.Uniform(64));
      universe.insert(key);
      const uint64_t dice = rnd.Uniform(100);
      if (dice < 8) {
        Status s = db->Delete(WriteOptions(), key);
        if (s.ok()) {
          model.erase(key);
        }
        dirty.insert(key);  // unsynced (or failed): ambiguous either way
      } else if (dice < 22) {
        WriteOptions synced;
        synced.sync = true;
        const std::string value = "v" + std::to_string(rnd.Next64());
        Status s = db->Put(synced, key, value);
        if (s.ok()) {
          model[key] = value;
          dirty.erase(key);  // this key's value is durable now
        } else {
          dirty.insert(key);
        }
      } else if (dice < 26) {
        if (db->Flush().ok()) {
          // A write that failed its durability step may still have been
          // applied to the memtable (the group is applied before the WAL
          // sync so non-sync followers can be released early); the flush
          // just made whatever landed durable. Dirty keys are ambiguous
          // until observed, so adopt the live state before clearing.
          // (Pure observation: pause injection so reads can't fault.)
          fenv.SetFaultsEnabled(false);
          for (const std::string& dkey : dirty) {
            std::string got;
            Status s = db->Get(ReadOptions(), dkey, &got);
            if (s.ok()) {
              model[dkey] = got;
            } else if (s.IsNotFound()) {
              model.erase(dkey);
            } else {
              FAIL() << "corrupt read of dirty key " << dkey << ": "
                     << s.ToString();
            }
          }
          fenv.SetFaultsEnabled(true);
          dirty.clear();  // everything acknowledged is now in SSTs
        }
      } else {
        const std::string value = "v" + std::to_string(rnd.Next64());
        Status s = db->Put(WriteOptions(), key, value);
        if (s.ok()) {
          model[key] = value;
        }
        dirty.insert(key);
      }
    }

    // Crash: stop injecting, drop the process, then lose unsynced data.
    fenv.SetFaultsEnabled(false);
    db.reset();
    ASSERT_TRUE(fenv.SimulateCrash().ok());
  }

  // The schedule must have actually exercised the fault paths.
  EXPECT_GT(fenv.crashes(), 0u);
}

TEST(FaultScheduleTest, EncFs) {
  const uint64_t base_seed = SeedBase();
  const int count = SeedCount();
  for (int i = 0; i < count; i++) {
    RunFaultSchedule(base_seed + static_cast<uint64_t>(i),
                     EncryptionMode::kEncFS, 0);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST(FaultScheduleTest, ShieldWalBuffered) {
  const uint64_t base_seed = SeedBase() + 100;
  const int count = SeedCount();
  for (int i = 0; i < count; i++) {
    RunFaultSchedule(base_seed + static_cast<uint64_t>(i),
                     EncryptionMode::kShield, 512);
    if (HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace shield
