#include "lsm/log_reader.h"
#include "lsm/log_writer.h"

#include <set>

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace shield {
namespace log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : env_(NewMemEnv()) { Reset(); }

  void Reset() {
    env_->NewWritableFile("/log", &dest_);
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& record) {
    ASSERT_TRUE(writer_->AddRecord(record).ok());
  }

  struct CountingReporter : public Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruptions = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      corruptions++;
    }
  };

  std::vector<std::string> ReadAll(CountingReporter* reporter = nullptr) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile("/log", &file).ok());
    Reader reader(file.get(), reporter, /*checksum=*/true);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  // Direct byte-level tampering of the backing file.
  void CorruptByte(size_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] ^= 0x7f;
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());
  }

  void TruncateTo(size_t size) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    contents.resize(size);
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());
  }

  void ResetPadded(const std::vector<uint32_t>& buckets) {
    env_->NewWritableFile("/log", &dest_);
    writer_ = std::make_unique<Writer>(dest_.get(), 0, buckets, nullptr);
  }

  // One on-wire record header as the storage tier sees it.
  struct PhysRecord {
    uint8_t type;
    uint32_t length;
  };

  // Walks the physical block structure the way an observer of the
  // raw file would: headers in sequence, zero-type/zero-length skips
  // the rest of the block (trailer fill).
  std::vector<PhysRecord> PhysicalRecords() {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    std::vector<PhysRecord> out;
    size_t offset = 0;
    while (offset + kHeaderSize <= contents.size()) {
      const size_t block_left = kBlockSize - (offset % kBlockSize);
      if (block_left < kHeaderSize) {
        offset += block_left;
        continue;
      }
      const uint8_t* p =
          reinterpret_cast<const uint8_t*>(contents.data() + offset);
      const uint32_t length =
          static_cast<uint32_t>(p[4]) | (static_cast<uint32_t>(p[5]) << 8);
      const uint8_t type = p[6];
      if (type == kZeroType && length == 0) {
        offset += block_left;  // trailer fill
        continue;
      }
      out.push_back({type, length});
      offset += kHeaderSize + length;
    }
    return out;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
};

// Forwards to a base file but fails exactly one Append on demand,
// simulating a transient WAL write fault.
class FlakyFile : public WritableFile {
 public:
  explicit FlakyFile(WritableFile* base) : base_(base) {}

  Status Append(const Slice& data) override {
    if (fail_next_) {
      fail_next_ = false;
      return Status::IOError("injected append failure");
    }
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }
  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

  void FailNextAppend() { fail_next_ = true; }

 private:
  WritableFile* const base_;
  bool fail_next_ = false;
};

TEST_F(LogTest, EmptyLog) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(LogTest, SmallRecords) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  const auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
}

TEST_F(LogTest, RecordSpanningBlocks) {
  // Larger than one 32 KiB block: forces FIRST/MIDDLE/LAST fragments.
  const std::string big(100000, 'A');
  const std::string small = "small";
  Write(big);
  Write(small);
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(big, records[0]);
  EXPECT_EQ(small, records[1]);
}

TEST_F(LogTest, ManyRandomRecords) {
  Random rnd(301);
  std::vector<std::string> expected;
  for (int i = 0; i < 500; i++) {
    std::string record(rnd.Skewed(12), static_cast<char>('a' + i % 26));
    expected.push_back(record);
    Write(record);
  }
  EXPECT_EQ(expected, ReadAll());
}

TEST_F(LogTest, BlockBoundaryHeaderPadding) {
  // Fill so that < 7 bytes remain in the block; the writer must pad
  // and move to the next block.
  const std::string just_under(kBlockSize - kHeaderSize - 3, 'x');
  Write(just_under);
  Write("next");
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(just_under, records[0]);
  EXPECT_EQ("next", records[1]);
}

TEST_F(LogTest, ChecksumMismatchDropsRecord) {
  Write("payload-one");
  Write("payload-two");
  CorruptByte(kHeaderSize + 2);  // inside the first record's payload

  CountingReporter reporter;
  const auto records = ReadAll(&reporter);
  // First record dropped, second (same block, also dropped since the
  // whole block is skipped on checksum failure) — at minimum the
  // corruption was noticed and no garbage surfaced.
  EXPECT_GE(reporter.corruptions, 1);
  for (const auto& record : records) {
    EXPECT_TRUE(record == "payload-one" || record == "payload-two");
  }
}

TEST_F(LogTest, TruncatedTailIsCleanEof) {
  Write("complete");
  Write("this-record-will-be-torn-apart-by-a-crash");
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
  TruncateTo(contents.size() - 10);

  CountingReporter reporter;
  const auto records = ReadAll(&reporter);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("complete", records[0]);
  // A torn tail is an expected crash artifact, not a corruption.
  EXPECT_EQ(0, reporter.corruptions);
}

TEST_F(LogTest, ResumeAppendPosition) {
  Write("first");
  uint64_t size = dest_->GetFileSize();
  // Simulate reopening the log for append.
  writer_ = std::make_unique<Writer>(dest_.get(), size);
  Write("second");
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("first", records[0]);
  EXPECT_EQ("second", records[1]);
}

TEST_F(LogTest, PaddedRoundTripAcrossBucketConfigs) {
  const std::vector<std::vector<uint32_t>> configs = {
      {64}, {512}, {64, 256, 1024, 4096}};
  const size_t sizes[] = {0, 1, 59, 60, 100, 255, 1000, 4092, 5000, 100000};
  for (const auto& buckets : configs) {
    ResetPadded(buckets);
    std::vector<std::string> expected;
    int c = 0;
    for (size_t n : sizes) {
      expected.emplace_back(n, static_cast<char>('a' + (c++ % 26)));
      Write(expected.back());
    }
    CountingReporter reporter;
    EXPECT_EQ(expected, ReadAll(&reporter));
    EXPECT_EQ(0, reporter.corruptions);
  }
}

TEST_F(LogTest, PaddedPhysicalRecordSizesAreBucketed) {
  // The side-channel property itself: with padding enabled, the record
  // sizes visible to the storage tier come from the bucket set alone.
  const std::vector<uint32_t> buckets = {64, 256, 1024, 4096};
  ResetPadded(buckets);
  Random rnd(172);
  std::vector<std::string> expected;
  for (int i = 0; i < 400; i++) {
    const size_t n = rnd.Uniform(4000);
    expected.emplace_back(n, static_cast<char>('a' + i % 26));
    Write(expected.back());
  }
  EXPECT_EQ(expected, ReadAll());

  const std::set<uint32_t> allowed(buckets.begin(), buckets.end());
  std::set<uint32_t> seen;
  for (const PhysRecord& rec : PhysicalRecords()) {
    // Every record fits one bucket, so none fragments: the only type
    // on the wire is the padded-full type, at a bucketed length.
    EXPECT_EQ(kPadFullType, rec.type);
    EXPECT_TRUE(allowed.count(rec.length) > 0)
        << "on-wire record length " << rec.length << " not a bucket";
    seen.insert(rec.length);
  }
  EXPECT_LE(seen.size(), allowed.size());
}

TEST_F(LogTest, PaddedOversizeRecordRoundTrip) {
  // Larger than the largest bucket: the envelope rounds up to the next
  // bucket multiple and fragments across blocks like any big record.
  ResetPadded({64});
  const std::string big(100000, 'B');
  Write(big);
  Write("after");
  CountingReporter reporter;
  const auto records = ReadAll(&reporter);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(big, records[0]);
  EXPECT_EQ("after", records[1]);
  EXPECT_EQ(0, reporter.corruptions);
}

TEST_F(LogTest, NoEmptyFirstFragmentAtBlockEdge) {
  // Leave exactly kHeaderSize bytes in the first block: the writer
  // must roll to a fresh block instead of emitting a zero-length
  // kFirstType fragment there.
  const std::string filler(kBlockSize - 2 * kHeaderSize, 'x');
  Write(filler);
  Write("tail");
  for (const PhysRecord& rec : PhysicalRecords()) {
    if (rec.type == kFirstType || rec.type == kMiddleType) {
      EXPECT_GT(rec.length, 0u)
          << "zero-length continuation fragment emitted at block edge";
    }
  }
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(filler, records[0]);
  EXPECT_EQ("tail", records[1]);
}

TEST_F(LogTest, LegacyEmptyFirstFragmentStillReads) {
  // Logs written before the block-edge fix carry a zero-length
  // kFirstType fragment in the last 7 bytes of a block, with the
  // payload continuing in the next block. Hand-craft those bytes and
  // prove the reader still reassembles them.
  auto make_record = [](RecordType type, const std::string& payload) {
    char t = static_cast<char>(type);
    uint32_t crc =
        crc32c::Extend(crc32c::Value(&t, 1), payload.data(), payload.size());
    crc = crc32c::Mask(crc);
    std::string rec;
    PutFixed32(&rec, crc);
    rec.push_back(static_cast<char>(payload.size() & 0xff));
    rec.push_back(static_cast<char>(payload.size() >> 8));
    rec.push_back(t);
    rec.append(payload);
    return rec;
  };
  const std::string filler(kBlockSize - 2 * kHeaderSize, 'y');
  std::string contents = make_record(kFullType, filler);
  contents += make_record(kFirstType, "");  // legacy empty fragment
  ASSERT_EQ(static_cast<size_t>(kBlockSize), contents.size());
  contents += make_record(kLastType, "tail");
  ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());

  CountingReporter reporter;
  const auto records = ReadAll(&reporter);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(filler, records[0]);
  EXPECT_EQ("tail", records[1]);
  EXPECT_EQ(0, reporter.corruptions);
}

TEST_F(LogTest, FailedAppendDoesNotAdvanceOffsets) {
  // A failed Append must leave the writer's block accounting where it
  // was: the retried records land at the physical offset the writer
  // believes, headers stay block-aligned, and everything after the
  // fault recovers cleanly across block boundaries.
  env_->NewWritableFile("/log", &dest_);
  FlakyFile flaky(dest_.get());
  writer_ = std::make_unique<Writer>(&flaky);

  ASSERT_TRUE(writer_->AddRecord("one").ok());
  flaky.FailNextAppend();
  ASSERT_FALSE(writer_->AddRecord("lost-to-the-fault").ok());

  std::vector<std::string> expected = {"one"};
  Random rnd(9);
  for (int i = 0; i < 12; i++) {
    // Large enough that the survivors cross several block boundaries.
    expected.emplace_back(6000 + rnd.Uniform(4000),
                          static_cast<char>('a' + i));
    ASSERT_TRUE(writer_->AddRecord(expected.back()).ok());
  }
  CountingReporter reporter;
  EXPECT_EQ(expected, ReadAll(&reporter));
  EXPECT_EQ(0, reporter.corruptions);
}

TEST_F(LogTest, FailedAppendDoesNotAdvanceOffsetsPadded) {
  // Same fault with padding enabled: the pre-roll and trailer-fill
  // logic also depend on block_offset_ staying truthful.
  env_->NewWritableFile("/log", &dest_);
  FlakyFile flaky(dest_.get());
  writer_ =
      std::make_unique<Writer>(&flaky, 0, std::vector<uint32_t>{64, 1024},
                               nullptr);

  ASSERT_TRUE(writer_->AddRecord("one").ok());
  flaky.FailNextAppend();
  ASSERT_FALSE(writer_->AddRecord("lost-to-the-fault").ok());

  std::vector<std::string> expected = {"one"};
  for (int i = 0; i < 60; i++) {
    expected.emplace_back(900 + i, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(writer_->AddRecord(expected.back()).ok());
  }
  CountingReporter reporter;
  EXPECT_EQ(expected, ReadAll(&reporter));
  EXPECT_EQ(0, reporter.corruptions);
}

}  // namespace
}  // namespace log
}  // namespace shield
