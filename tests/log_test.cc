#include "lsm/log_reader.h"
#include "lsm/log_writer.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : env_(NewMemEnv()) { Reset(); }

  void Reset() {
    env_->NewWritableFile("/log", &dest_);
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& record) {
    ASSERT_TRUE(writer_->AddRecord(record).ok());
  }

  struct CountingReporter : public Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruptions = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      corruptions++;
    }
  };

  std::vector<std::string> ReadAll(CountingReporter* reporter = nullptr) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile("/log", &file).ok());
    Reader reader(file.get(), reporter, /*checksum=*/true);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  // Direct byte-level tampering of the backing file.
  void CorruptByte(size_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] ^= 0x7f;
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());
  }

  void TruncateTo(size_t size) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
    contents.resize(size);
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, "/log", false).ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
};

TEST_F(LogTest, EmptyLog) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(LogTest, SmallRecords) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  const auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
}

TEST_F(LogTest, RecordSpanningBlocks) {
  // Larger than one 32 KiB block: forces FIRST/MIDDLE/LAST fragments.
  const std::string big(100000, 'A');
  const std::string small = "small";
  Write(big);
  Write(small);
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(big, records[0]);
  EXPECT_EQ(small, records[1]);
}

TEST_F(LogTest, ManyRandomRecords) {
  Random rnd(301);
  std::vector<std::string> expected;
  for (int i = 0; i < 500; i++) {
    std::string record(rnd.Skewed(12), static_cast<char>('a' + i % 26));
    expected.push_back(record);
    Write(record);
  }
  EXPECT_EQ(expected, ReadAll());
}

TEST_F(LogTest, BlockBoundaryHeaderPadding) {
  // Fill so that < 7 bytes remain in the block; the writer must pad
  // and move to the next block.
  const std::string just_under(kBlockSize - kHeaderSize - 3, 'x');
  Write(just_under);
  Write("next");
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(just_under, records[0]);
  EXPECT_EQ("next", records[1]);
}

TEST_F(LogTest, ChecksumMismatchDropsRecord) {
  Write("payload-one");
  Write("payload-two");
  CorruptByte(kHeaderSize + 2);  // inside the first record's payload

  CountingReporter reporter;
  const auto records = ReadAll(&reporter);
  // First record dropped, second (same block, also dropped since the
  // whole block is skipped on checksum failure) — at minimum the
  // corruption was noticed and no garbage surfaced.
  EXPECT_GE(reporter.corruptions, 1);
  for (const auto& record : records) {
    EXPECT_TRUE(record == "payload-one" || record == "payload-two");
  }
}

TEST_F(LogTest, TruncatedTailIsCleanEof) {
  Write("complete");
  Write("this-record-will-be-torn-apart-by-a-crash");
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/log", &contents).ok());
  TruncateTo(contents.size() - 10);

  CountingReporter reporter;
  const auto records = ReadAll(&reporter);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("complete", records[0]);
  // A torn tail is an expected crash artifact, not a corruption.
  EXPECT_EQ(0, reporter.corruptions);
}

TEST_F(LogTest, ResumeAppendPosition) {
  Write("first");
  uint64_t size = dest_->GetFileSize();
  // Simulate reopening the log for append.
  writer_ = std::make_unique<Writer>(dest_.get(), size);
  Write("second");
  const auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("first", records[0]);
  EXPECT_EQ("second", records[1]);
}

}  // namespace
}  // namespace log
}  // namespace shield
