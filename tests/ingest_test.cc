// DB::IngestExternalFile / DB::DumpRange / DB::RestoreDump: bulk data
// lifecycle between fleet members. Plaintext SSTs are rebuilt through
// the target's encryption path; SHIELD-encrypted SSTs are adopted
// byte-for-byte with their embedded DEK re-wrapped onto the target's
// identity — so a dump stays restorable after the source instance's
// own DEKs are revoked at the KDS. Malformed inputs must fail closed
// and leave the target untouched.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "shield/file_crypto.h"
#include "test_util.h"
#include "util/random.h"
#include "util/statistics.h"

namespace shield {
namespace {

std::string IngestKey(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "ikey-%06d", i);
  return buf;
}
std::string IngestValue(int i) {
  return "ivalue-" + std::to_string(i) + std::string(24, 'v');
}

class IngestTest : public ::testing::Test {
 protected:
  IngestTest() : env_(NewMemEnv()), kds_(std::make_shared<LocalKds>()) {}

  Options PlainOptions() {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 * 1024;
    return options;
  }

  Options ShieldOptions(const std::string& server_id) {
    Options options = PlainOptions();
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    options.encryption.server_id = server_id;
    options.statistics = stats_;
    return options;
  }

  std::unique_ptr<DB> OpenDb(const Options& options, const std::string& name) {
    DB* raw = nullptr;
    Status s = DB::Open(options, name, &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  // Fills [0, n) keys and flushes so the data sits in SSTs.
  void FillAndFlush(DB* db, int n) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), IngestKey(i), IngestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }

  // Copies the (single expected) SST out of `dbname` to `staging`.
  void ExportOneSst(const std::string& dbname, const std::string& staging) {
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren(dbname, &children).ok());
    std::string sst;
    for (const std::string& child : children) {
      if (child.size() > 4 &&
          child.compare(child.size() - 4, 4, ".sst") == 0) {
        ASSERT_TRUE(sst.empty()) << "expected exactly one SST";
        sst = child;
      }
    }
    ASSERT_FALSE(sst.empty()) << "no SST produced by flush";
    std::string contents;
    ASSERT_TRUE(
        ReadFileToString(env_.get(), dbname + "/" + sst, &contents).ok());
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, staging, false).ok());
  }

  void ExpectKeys(DB* db, int n) {
    for (int i = 0; i < n; i++) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), IngestKey(i), &value).ok())
          << "missing " << IngestKey(i);
      EXPECT_EQ(IngestValue(i), value);
    }
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<LocalKds> kds_;
  std::shared_ptr<Statistics> stats_ = CreateDBStatistics();
};

TEST_F(IngestTest, PlaintextSstIntoPlaintextDb) {
  {
    auto source = OpenDb(PlainOptions(), "/src");
    FillAndFlush(source.get(), 300);
  }
  ExportOneSst("/src", "/staging.sst");

  auto target = OpenDb(PlainOptions(), "/dst");
  IngestResult result;
  Status s = target->IngestExternalFile("/staging.sst", IngestOptions(),
                                        &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(300u, result.entries);
  EXPECT_FALSE(result.dek_rewrapped);
  ExpectKeys(target.get(), 300);
}

TEST_F(IngestTest, PlaintextSstIntoShieldDbIsReencrypted) {
  {
    auto source = OpenDb(PlainOptions(), "/src");
    FillAndFlush(source.get(), 250);
  }
  ExportOneSst("/src", "/staging.sst");

  auto target = OpenDb(ShieldOptions("target-1"), "/dst");
  IngestResult result;
  ASSERT_TRUE(target
                  ->IngestExternalFile("/staging.sst", IngestOptions(),
                                       &result)
                  .ok());
  EXPECT_EQ(250u, result.entries);
  ExpectKeys(target.get(), 250);

  // The installed copy must be SHIELD ciphertext, not the plaintext
  // source bytes: its header parses and the marker values are absent
  // from the raw file.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/dst", &children).ok());
  bool saw_sst = false;
  for (const std::string& child : children) {
    if (child.size() > 4 && child.compare(child.size() - 4, 4, ".sst") == 0) {
      saw_sst = true;
      ShieldFileHeader header;
      EXPECT_TRUE(
          ReadShieldFileHeader(env_.get(), "/dst/" + child, &header).ok());
      std::string raw;
      ASSERT_TRUE(
          ReadFileToString(env_.get(), "/dst/" + child, &raw).ok());
      EXPECT_EQ(std::string::npos, raw.find("ivalue-"));
    }
  }
  EXPECT_TRUE(saw_sst);
}

TEST_F(IngestTest, EncryptedSstAdoptedWithRewrappedDek) {
  {
    auto source = OpenDb(ShieldOptions("source-1"), "/src");
    FillAndFlush(source.get(), 200);
  }
  ExportOneSst("/src", "/staging.sst");
  ShieldFileHeader before;
  ASSERT_TRUE(ReadShieldFileHeader(env_.get(), "/staging.sst", &before).ok());

  auto target = OpenDb(ShieldOptions("target-1"), "/dst");
  IngestResult result;
  Status s = target->IngestExternalFile("/staging.sst", IngestOptions(),
                                        &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(200u, result.entries);
  EXPECT_TRUE(result.dek_rewrapped);
  ExpectKeys(target.get(), 200);

  // The adopted file carries a fresh DEK id minted for the target over
  // the same key material — revoking the source's id must not affect
  // reads through the target.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/dst", &children).ok());
  for (const std::string& child : children) {
    if (child.size() > 4 && child.compare(child.size() - 4, 4, ".sst") == 0) {
      ShieldFileHeader after;
      ASSERT_TRUE(
          ReadShieldFileHeader(env_.get(), "/dst/" + child, &after).ok());
      EXPECT_FALSE(after.dek_id == before.dek_id);
    }
  }
  ASSERT_TRUE(kds_->DeleteDek("source-1", before.dek_id).ok());
  ExpectKeys(target.get(), 200);
}

TEST_F(IngestTest, IngestedEntriesSurviveReopen) {
  // Regression: the sequence-horizon bump must land in the manifest
  // edit LogAndApply writes, or a reopen recovers a LastSequence below
  // the ingested entries and hides them.
  {
    auto source = OpenDb(ShieldOptions("source-1"), "/src");
    FillAndFlush(source.get(), 120);
  }
  ExportOneSst("/src", "/staging.sst");

  Options target_options = ShieldOptions("target-1");
  {
    auto target = OpenDb(target_options, "/dst");
    IngestResult result;
    ASSERT_TRUE(target
                    ->IngestExternalFile("/staging.sst", IngestOptions(),
                                         &result)
                    .ok());
    ExpectKeys(target.get(), 120);
  }
  auto reopened = OpenDb(target_options, "/dst");
  ExpectKeys(reopened.get(), 120);
}

TEST_F(IngestTest, MoveFileDeletesSource) {
  {
    auto source = OpenDb(PlainOptions(), "/src");
    FillAndFlush(source.get(), 50);
  }
  ExportOneSst("/src", "/staging.sst");

  auto target = OpenDb(ShieldOptions("target-1"), "/dst");
  IngestOptions ingest;
  ingest.move_file = true;
  IngestResult result;
  ASSERT_TRUE(
      target->IngestExternalFile("/staging.sst", ingest, &result).ok());
  EXPECT_FALSE(env_->FileExists("/staging.sst"));
  ExpectKeys(target.get(), 50);
}

TEST_F(IngestTest, MalformedInputsRejectedAndTargetUntouched) {
  auto target = OpenDb(ShieldOptions("target-1"), "/dst");

  // Missing file.
  IngestResult result;
  EXPECT_FALSE(target
                   ->IngestExternalFile("/nope.sst", IngestOptions(), &result)
                   .ok());

  // SHIELD magic with a garbage header: claimed by SHIELD, so it must
  // surface as corruption — never fall back to the plaintext path.
  // (Valid version byte so the garbage reaches the field validation.)
  std::string claimed = "SHLDFIL1" + std::string(56, '\xff');
  claimed[8] = 1;
  ASSERT_TRUE(WriteStringToFile(env_.get(), claimed, "/claimed.sst", false)
                  .ok());
  Status s =
      target->IngestExternalFile("/claimed.sst", IngestOptions(), &result);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Unknown future version: fail closed as NotSupported, still never
  // the plaintext path.
  std::string future = claimed;
  future[8] = '\x63';
  ASSERT_TRUE(WriteStringToFile(env_.get(), future, "/future.sst", false)
                  .ok());
  s = target->IngestExternalFile("/future.sst", IngestOptions(), &result);
  EXPECT_TRUE(s.IsNotSupported()) << s.ToString();

  // Plain junk that is not an SST.
  ASSERT_TRUE(WriteStringToFile(env_.get(), std::string(4096, 'j'),
                                "/junk.sst", false)
                  .ok());
  EXPECT_FALSE(
      target->IngestExternalFile("/junk.sst", IngestOptions(), &result).ok());

  // Nothing installed; the DB still works and holds no ingested keys.
  std::string value;
  EXPECT_TRUE(
      target->Get(ReadOptions(), IngestKey(0), &value).IsNotFound());
  ASSERT_TRUE(target->Put(WriteOptions(), "live", "yes").ok());
  ASSERT_TRUE(target->Get(ReadOptions(), "live", &value).ok());
}

TEST_F(IngestTest, DumpRestoreSurvivesSourceDekRevocation) {
  // The fleet-migration story end to end: dump under a target
  // identity, revoke every DEK the source instance holds, then restore
  // under the target identity and read everything back.
  const int kKeys = 500;
  {
    auto source = OpenDb(ShieldOptions("source-1"), "/src");
    FillAndFlush(source.get(), kKeys);

    DumpOptions dump;
    dump.target_server_id = "migrated-1";
    Status s = source->DumpRange("/dump", nullptr, nullptr, dump);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_GT(stats_->GetTickerCount(Tickers::kShieldDumpFiles), 0u);

  // Revoke the source's own DEKs (every live file in /src).
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/src", &children).ok());
  int revoked = 0;
  for (const std::string& child : children) {
    ShieldFileHeader header;
    if (ReadShieldFileHeader(env_.get(), "/src/" + child, &header).ok()) {
      ASSERT_TRUE(kds_->DeleteDek("source-1", header.dek_id).ok());
      revoked++;
    }
  }
  ASSERT_GT(revoked, 0);

  Options target_options = ShieldOptions("migrated-1");
  ASSERT_TRUE(
      DB::VerifyDump(target_options, "/dump", RestoreOptions()).ok());
  Status s =
      DB::RestoreDump(target_options, "/dump", "/restored", RestoreOptions());
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto restored = OpenDb(target_options, "/restored");
  ExpectKeys(restored.get(), kKeys);
}

TEST_F(IngestTest, DumpRangeHonorsBounds) {
  auto source = OpenDb(ShieldOptions("source-1"), "/src");
  FillAndFlush(source.get(), 100);

  const std::string begin = IngestKey(20);
  const std::string end = IngestKey(59);
  Slice begin_slice(begin), end_slice(end);
  DumpOptions dump;
  ASSERT_TRUE(
      source->DumpRange("/dump", &begin_slice, &end_slice, dump).ok());

  Options target_options = ShieldOptions("source-1");
  ASSERT_TRUE(
      DB::RestoreDump(target_options, "/dump", "/restored", RestoreOptions())
          .ok());
  auto restored = OpenDb(target_options, "/restored");
  for (int i = 0; i < 100; i++) {
    std::string value;
    Status s = restored->Get(ReadOptions(), IngestKey(i), &value);
    if (i >= 20 && i <= 59) {
      ASSERT_TRUE(s.ok()) << "missing in-range " << IngestKey(i);
      EXPECT_EQ(IngestValue(i), value);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << "out-of-range key " << IngestKey(i)
                                  << " leaked into dump";
    }
  }
}

TEST_F(IngestTest, DumpRefusesExistingDump) {
  auto source = OpenDb(ShieldOptions("source-1"), "/src");
  FillAndFlush(source.get(), 30);
  ASSERT_TRUE(
      source->DumpRange("/dump", nullptr, nullptr, DumpOptions()).ok());
  EXPECT_FALSE(
      source->DumpRange("/dump", nullptr, nullptr, DumpOptions()).ok());
}

}  // namespace
}  // namespace shield
