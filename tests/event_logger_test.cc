// Tests for the structured event-logging plane: JsonWriter escaping,
// EventLogger emission, the DB's JSON-lines info LOG (every line must
// parse as valid JSON), LOG rotation, and the observability properties
// (shield.levelstats, shield.dek-cache-stats, shield.metrics).

#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "lsm/file_names.h"
#include "test_util.h"
#include "util/event_logger.h"
#include "util/logger.h"
#include "util/statistics.h"

namespace shield {
namespace {

// --- A strict little JSON parser -------------------------------------------
// Validates RFC 8259 syntax; used to prove every emitted line is real
// JSON, not something JSON-shaped.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"' || !ParseString()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      pos_++;
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    pos_++;  // '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        pos_++;
        return true;
      }
      if (c < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      if (c == '\\') {
        pos_++;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; i++) {
            pos_++;
            if (pos_ >= text_.size() || !isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      pos_++;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') {
      pos_++;
    }
    while (isdigit(static_cast<unsigned char>(Peek()))) {
      pos_++;
    }
    if (Peek() == '.') {
      pos_++;
      while (isdigit(static_cast<unsigned char>(Peek()))) {
        pos_++;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      pos_++;
      if (Peek() == '+' || Peek() == '-') {
        pos_++;
      }
      while (isdigit(static_cast<unsigned char>(Peek()))) {
        pos_++;
      }
    }
    return pos_ > start && isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(const char* lit) {
    const size_t len = strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonParser(text).Valid();
}

// LOG lines are framed "<walltime> <LEVEL> <payload>"; the payload of
// an event line is the JSON object. Returns false if no payload.
bool ExtractJsonPayload(const std::string& line, std::string* payload) {
  const size_t brace = line.find('{');
  if (brace == std::string::npos) {
    return false;
  }
  *payload = line.substr(brace);
  return true;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start) {
      lines.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return lines;
}

// Pulls the "event" name out of a parsed-valid event line.
std::string EventName(const std::string& json) {
  const std::string key = "\"event\":\"";
  const size_t at = json.find(key);
  if (at == std::string::npos) {
    return "";
  }
  const size_t begin = at + key.size();
  const size_t end = json.find('"', begin);
  return json.substr(begin, end - begin);
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonParserTest, SelfCheck) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("{\"a\":1,\"b\":[1,2],\"c\":\"x\",\"d\":true}"));
  EXPECT_TRUE(IsValidJson("{\"a\":-1.5e3,\"b\":null}"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\":}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1} trailing"));
  EXPECT_FALSE(IsValidJson("{\"a\":\"unterminated}"));
  EXPECT_FALSE(IsValidJson(std::string("{\"a\":\"\x01\"}")));  // raw control
  EXPECT_FALSE(IsValidJson("{\"a\":\"bad\\escape\"}"));
}

TEST(JsonWriterTest, AllValueTypes) {
  JsonWriter w;
  w.Add("str", Slice("plain"));
  w.Add("stdstr", std::string("s2"));
  w.Add("cstr", "s3");
  w.Add("u64", static_cast<uint64_t>(18446744073709551615ull));
  w.Add("i64", static_cast<int64_t>(-42));
  w.Add("i", 7);
  w.Add("dbl", 1.5);
  w.Add("yes", true);
  w.Add("no", false);
  w.AddArray("arr", {1, 2, 3});
  w.AddArray("empty", {});
  const std::string out = w.Finish();
  EXPECT_TRUE(IsValidJson(out)) << out;
  EXPECT_NE(std::string::npos, out.find("\"u64\":18446744073709551615"));
  EXPECT_NE(std::string::npos, out.find("\"i64\":-42"));
  EXPECT_NE(std::string::npos, out.find("\"arr\":[1,2,3]"));
  EXPECT_NE(std::string::npos, out.find("\"empty\":[]"));
  // Finish is idempotent: no double closing brace.
  EXPECT_EQ(out, w.Finish());
}

TEST(JsonWriterTest, EscapesHostileStrings) {
  JsonWriter w;
  w.Add("quote", "a\"b");
  w.Add("backslash", "a\\b");
  w.Add("newline", "a\nb");
  w.Add("tab", "a\tb");
  w.Add("cr", "a\rb");
  w.Add("ctrl", Slice("a\x01\x1f", 3));
  const std::string out = w.Finish();
  EXPECT_TRUE(IsValidJson(out)) << out;
  EXPECT_NE(std::string::npos, out.find("\"quote\":\"a\\\"b\""));
  EXPECT_NE(std::string::npos, out.find("\"backslash\":\"a\\\\b\""));
  EXPECT_NE(std::string::npos, out.find("\"newline\":\"a\\nb\""));
  EXPECT_NE(std::string::npos, out.find("\"tab\":\"a\\tb\""));
  EXPECT_NE(std::string::npos, out.find("\"cr\":\"a\\rb\""));
  EXPECT_NE(std::string::npos, out.find("\"ctrl\":\"a\\u0001\\u001f\""));
}

TEST(JsonWriterTest, AppendEscapedStandalone) {
  std::string out;
  JsonWriter::AppendEscaped(&out, Slice("he said \"hi\"\n"));
  EXPECT_EQ("\"he said \\\"hi\\\"\\n\"", out);
}

// --- EventLogger ------------------------------------------------------------

// Captures LogRaw payloads verbatim, like the file logger minus framing.
class CapturingLogger final : public Logger {
 public:
  void Logv(InfoLogLevel level, const char* format, va_list ap) override {
    char buf[512];
    vsnprintf(buf, sizeof(buf), format, ap);
    LogRaw(level, Slice(buf));
  }
  void LogRaw(InfoLogLevel level, const Slice& line) override {
    if (level < GetInfoLogLevel()) {
      return;
    }
    lines.emplace_back(line.data(), line.size());
  }
  std::vector<std::string> lines;
};

TEST(EventLoggerTest, EmitsOneValidJsonObjectPerEvent) {
  CapturingLogger logger;
  auto stats = CreateDBStatistics();
  EventLogger events(&logger, stats.get());
  ASSERT_TRUE(events.enabled());

  JsonWriter w = events.NewEvent("flush_begin");
  w.Add("file_number", static_cast<uint64_t>(12));
  w.Add("path", "sst/000012.sst\n");  // hostile value
  events.Emit(&w);

  JsonWriter w2 = events.NewEvent("flush_end");
  w2.Add("ok", true);
  events.Emit(&w2);

  ASSERT_EQ(2u, logger.lines.size());
  for (const std::string& line : logger.lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
    EXPECT_NE(std::string::npos, line.find("\"ts_micros\":"));
  }
  EXPECT_EQ("flush_begin", EventName(logger.lines[0]));
  EXPECT_EQ("flush_end", EventName(logger.lines[1]));
  EXPECT_EQ(2u, stats->GetTickerCount(Tickers::kShieldEventsEmitted));
}

TEST(EventLoggerTest, NullLoggerSwallowsEverything) {
  EventLogger events(nullptr);
  EXPECT_FALSE(events.enabled());
  JsonWriter w = events.NewEvent("ignored");
  w.Add("k", 1);
  events.Emit(&w);  // must not crash
}

// --- The DB's info LOG ------------------------------------------------------

class DBLogTest : public ::testing::Test {
 protected:
  DBLogTest() : env_(NewMemEnv()) {}

  Options MakeOptions() {
    Options options;
    options.env = env_.get();
    return options;
  }

  void Open(const Options& options) {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(options, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void FillAndFlush(int base, int n) {
    for (int i = 0; i < n; i++) {
      char key[16];
      snprintf(key, sizeof(key), "key%06d", base + i);
      ASSERT_TRUE(
          db_->Put(WriteOptions(), key, std::string(100, 'v')).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  std::string ReadLog() {
    std::string contents;
    EXPECT_TRUE(
        ReadFileToString(env_.get(), InfoLogFileName("/db"), &contents).ok());
    return contents;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBLogTest, EveryLogLineIsValidJson) {
  Open(MakeOptions());
  // Overlapping key ranges: the manual compaction below must merge
  // both L0 files (a trivial move would skip the compaction events).
  FillAndFlush(0, 50);
  FillAndFlush(25, 50);
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  db_.reset();  // flush the logger

  const std::vector<std::string> lines = SplitLines(ReadLog());
  ASSERT_FALSE(lines.empty());
  std::set<std::string> seen;
  for (const std::string& line : lines) {
    std::string payload;
    ASSERT_TRUE(ExtractJsonPayload(line, &payload))
        << "non-event line in LOG: " << line;
    EXPECT_TRUE(IsValidJson(payload)) << payload;
    EXPECT_NE(std::string::npos, payload.find("\"ts_micros\":")) << payload;
    seen.insert(EventName(payload));
  }
  // The workload exercised open, two flushes (with WAL rolls) and a
  // forced compaction; all of them must have left events.
  for (const char* want : {"db_open", "wal_roll", "flush_begin", "flush_end",
                           "compaction_begin", "compaction_end"}) {
    EXPECT_TRUE(seen.count(want)) << "missing event: " << want;
  }
}

TEST_F(DBLogTest, DbOpenEventRecordsSanitizedConfig) {
  Options options = MakeOptions();
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = std::make_shared<LocalKds>();
  Open(options);
  db_.reset();

  const std::vector<std::string> lines = SplitLines(ReadLog());
  std::string db_open;
  for (const std::string& line : lines) {
    std::string payload;
    if (ExtractJsonPayload(line, &payload) &&
        EventName(payload) == "db_open") {
      db_open = payload;
      break;
    }
  }
  ASSERT_FALSE(db_open.empty());
  EXPECT_TRUE(IsValidJson(db_open)) << db_open;
  EXPECT_NE(std::string::npos, db_open.find("\"encryption_mode\":\"shield\""));
  EXPECT_NE(std::string::npos, db_open.find("\"write_buffer_size\":"));
  // The LOG is plaintext by design: no key material may ever appear.
  const std::string log = ReadLog();
  EXPECT_EQ(std::string::npos, log.find("\"key\""));
  EXPECT_EQ(std::string::npos, log.find("passkey"));
}

TEST_F(DBLogTest, LogRotatesAtSizeLimitAndPrunes) {
  Options options = MakeOptions();
  options.max_log_file_size = 2048;  // tiny: a few events per file
  options.keep_log_file_num = 2;
  Open(options);
  for (int round = 0; round < 8; round++) {
    FillAndFlush(round * 10, 10);
  }
  db_.reset();

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  size_t rotated = 0;
  bool has_current = false;
  for (const std::string& child : children) {
    if (child == "LOG") {
      has_current = true;
    } else if (child.rfind("LOG.old.", 0) == 0) {
      rotated++;
    }
  }
  EXPECT_TRUE(has_current);
  EXPECT_GE(rotated, 1u);
  EXPECT_LE(rotated, options.keep_log_file_num);

  // Rotated files hold valid JSON event lines too.
  for (const std::string& child : children) {
    if (child.rfind("LOG.old.", 0) != 0) {
      continue;
    }
    std::string contents;
    ASSERT_TRUE(
        ReadFileToString(env_.get(), "/db/" + child, &contents).ok());
    for (const std::string& line : SplitLines(contents)) {
      std::string payload;
      ASSERT_TRUE(ExtractJsonPayload(line, &payload)) << line;
      EXPECT_TRUE(IsValidJson(payload)) << payload;
    }
  }
}

TEST_F(DBLogTest, ReopenRotatesPreviousLogAside) {
  Open(MakeOptions());
  db_.reset();
  Open(MakeOptions());
  db_.reset();

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  bool has_rotated = false;
  for (const std::string& child : children) {
    has_rotated = has_rotated || child.rfind("LOG.old.", 0) == 0;
  }
  // The first run's LOG survives the second Open as LOG.old.1.
  EXPECT_TRUE(has_rotated);
}

// --- Observability properties -----------------------------------------------

TEST_F(DBLogTest, LevelStatsProperty) {
  Open(MakeOptions());
  FillAndFlush(0, 50);
  FillAndFlush(50, 50);

  std::string value;
  ASSERT_TRUE(db_->GetProperty("shield.levelstats", &value));
  const std::vector<std::string> lines = SplitLines(value);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ("level files bytes", lines[0]);
  int level = -1, files = -1;
  long long bytes = -1;
  ASSERT_EQ(3, sscanf(lines[1].c_str(), "%d %d %lld", &level, &files,
                      &bytes));
  EXPECT_EQ(0, level);
  EXPECT_EQ(2, files);  // two flushed L0 tables
  EXPECT_GT(bytes, 0);
  // One row per configured level after the header.
  Options defaults;
  EXPECT_EQ(static_cast<size_t>(defaults.num_levels) + 1, lines.size());
}

TEST_F(DBLogTest, DekCacheStatsProperty) {
  // Without SHIELD encryption there is no DEK manager: all-zero stats.
  Open(MakeOptions());
  std::string value;
  ASSERT_TRUE(db_->GetProperty("shield.dek-cache-stats", &value));
  EXPECT_EQ("hits=0 misses=0 evictions=0 entries=0", value);
  db_.reset();

  Options options = MakeOptions();
  options.env = env_.get();
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = std::make_shared<LocalKds>();
  db_.reset();
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db2", &raw).ok());
  db_.reset(raw);
  FillAndFlush(0, 30);
  std::string got;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key000005", &got).ok());

  ASSERT_TRUE(db_->GetProperty("shield.dek-cache-stats", &value));
  unsigned long long hits = 0, misses = 0, evictions = 0, entries = 0;
  ASSERT_EQ(4, sscanf(value.c_str(),
                      "hits=%llu misses=%llu evictions=%llu entries=%llu",
                      &hits, &misses, &evictions, &entries));
  // Creating and reading files exercised the DEK cache.
  EXPECT_GT(hits + misses, 0ull);
  EXPECT_GT(entries, 0ull);
}

TEST_F(DBLogTest, MetricsPropertyRequiresStatistics) {
  Open(MakeOptions());
  std::string value;
  EXPECT_FALSE(db_->GetProperty("shield.metrics", &value));
  db_.reset();

  Options options = MakeOptions();
  options.statistics = CreateDBStatistics();
  Open(options);
  FillAndFlush(0, 20);
  ASSERT_TRUE(db_->GetProperty("shield.metrics", &value));
  EXPECT_NE(std::string::npos, value.find("# TYPE "));
  EXPECT_NE(std::string::npos, value.find("shield_"));
  EXPECT_NE(std::string::npos, value.find("shield_level_files{level=\"0\"}"));
  EXPECT_NE(std::string::npos, value.find("shield_level_bytes"));
}

}  // namespace
}  // namespace shield
