#include "util/statistics.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "env/io_stats.h"
#include "lsm/db.h"
#include "util/histogram.h"
#include "util/perf_context.h"
#include "util/thread_pool.h"

namespace shield {
namespace {

// --- Ticker registry ----------------------------------------------------

TEST(StatisticsTest, TickerNamesAreUniqueAndDotted) {
  std::vector<std::string> seen;
  for (size_t i = 0; i < kNumTickers; i++) {
    const char* name = TickerName(static_cast<Tickers>(i));
    ASSERT_NE(nullptr, name);
    EXPECT_NE(std::string::npos, std::string(name).find('.')) << name;
    for (const std::string& other : seen) {
      EXPECT_NE(other, name);
    }
    seen.push_back(name);
  }
  for (size_t i = 0; i < kNumHistograms; i++) {
    ASSERT_NE(nullptr, HistogramName(static_cast<Histograms>(i)));
  }
}

TEST(StatisticsTest, IoTickerLayout) {
  EXPECT_EQ(Tickers::kIoWalReadBytes,
            IoTicker(FileKind::kWal, /*read=*/true, /*bytes=*/true));
  EXPECT_EQ(Tickers::kIoWalWriteOps,
            IoTicker(FileKind::kWal, /*read=*/false, /*bytes=*/false));
  EXPECT_EQ(Tickers::kIoSstWriteBytes,
            IoTicker(FileKind::kSst, /*read=*/false, /*bytes=*/true));
  EXPECT_EQ(Tickers::kIoManifestReadOps,
            IoTicker(FileKind::kManifest, /*read=*/true, /*bytes=*/false));
  EXPECT_EQ(Tickers::kIoOtherWriteBytes,
            IoTicker(FileKind::kOther, /*read=*/false, /*bytes=*/true));
}

TEST(StatisticsTest, RecordAndResetTickers) {
  Statistics stats;
  stats.RecordTick(Tickers::kKdsRequests, 3);
  stats.RecordTick(Tickers::kKdsRequests);
  EXPECT_EQ(4u, stats.GetTickerCount(Tickers::kKdsRequests));
  EXPECT_EQ(0u, stats.GetTickerCount(Tickers::kKdsFailures));

  stats.MeasureTime(Histograms::kKdsLatencyMicros, 100);
  EXPECT_EQ(1u, stats.GetHistogram(Histograms::kKdsLatencyMicros).Count());

  const std::string dump = stats.ToString();
  EXPECT_NE(std::string::npos, dump.find("kds.requests"));

  stats.Reset();
  EXPECT_EQ(0u, stats.GetTickerCount(Tickers::kKdsRequests));
  EXPECT_EQ(0u, stats.GetHistogram(Histograms::kKdsLatencyMicros).Count());
}

TEST(StatisticsTest, NullSafeHelpers) {
  RecordTick(nullptr, Tickers::kKdsRequests, 7);  // must not crash
  MeasureTime(nullptr, Histograms::kDbGetMicros, 5);
  { StopWatch watch(nullptr, Histograms::kDbGetMicros); }
  uint64_t elapsed = 123;
  { StopWatch watch(nullptr, Histograms::kDbGetMicros, &elapsed); }
  EXPECT_LT(elapsed, 123u);  // measured (≈0), not left at the sentinel
}

TEST(StatisticsTest, ConcurrentTickersLoseNoCounts) {
  Statistics stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  ThreadPool pool(kThreads);
  std::atomic<int> done{0};
  for (int t = 0; t < kThreads; t++) {
    pool.Schedule([&] {
      for (int i = 0; i < kPerThread; i++) {
        stats.RecordTick(Tickers::kCryptoBytesEncrypted, 2);
      }
      done.fetch_add(1);
    });
  }
  while (done.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(uint64_t{kThreads} * kPerThread * 2,
            stats.GetTickerCount(Tickers::kCryptoBytesEncrypted));
}

TEST(StatisticsTest, DetachRegistryDrainsConcurrentUse) {
  // Regression for a use-after-free: AttachRegistry(nullptr) — the
  // ~DBImpl path when the Statistics object outlives the DB that owns
  // the registry — must not return while another thread is mid-use of
  // a registry-owned instrument. The registry here is scoped tighter
  // than the worker threads, exactly like a DB closing under load;
  // under TSan/ASan the old code races and touches freed memory.
  Statistics stats;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&] {
      while (!stop.load()) {
        stats.MeasureTime(Histograms::kDbGetMicros, 10);
        stats.RecordTick(Tickers::kKdsRequests, 1);
        stats.SyncRegistry();
      }
    });
  }
  for (int round = 0; round < 50; round++) {
    MetricsRegistry registry;
    stats.AttachRegistry(&registry, "node");
    for (int i = 0; i < 100; i++) {
      stats.MeasureTime(Histograms::kDbWriteMicros, 5);
    }
    (void)stats.ToPrometheusText();
    stats.AttachRegistry(nullptr, std::string());
    // registry destroyed here; no worker may still hold its pointers.
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  // Detached: samples still land in the cumulative histograms.
  EXPECT_GT(stats.GetHistogram(Histograms::kDbGetMicros).Count(), 0u);
}

// --- Histogram properties ------------------------------------------------

TEST(HistogramTest, PercentileMonotoneInP) {
  Histogram h;
  // A spread that spans several buckets, including repeats.
  for (uint64_t v : {1, 1, 2, 5, 10, 50, 100, 1000, 5000, 100000}) {
    h.Add(v);
  }
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, prev) << "p=" << p;
    prev = value;
  }
  EXPECT_LE(h.Percentile(100.0), static_cast<double>(h.Max()) + 1e-9);
}

TEST(HistogramTest, ValuesAboveTopBucketLimit) {
  Histogram h;
  const uint64_t huge = uint64_t{1} << 62;  // beyond every bucket limit
  h.Add(huge);
  h.Add(10);
  EXPECT_EQ(2u, h.Count());
  EXPECT_EQ(huge, h.Max());
  // Percentiles must stay finite and ordered even with an off-scale
  // value parked in the overflow bucket.
  const double p50 = h.Percentile(50.0);
  const double p99 = h.Percentile(99.0);
  EXPECT_GE(p99, p50);
  EXPECT_GT(p99, 0.0);
}

TEST(HistogramTest, ConcurrentAddLosesNoCounts) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ThreadPool pool(kThreads);
  std::atomic<int> done{0};
  for (int t = 0; t < kThreads; t++) {
    pool.Schedule([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        h.Add(static_cast<uint64_t>(t * kPerThread + i) % 997 + 1);
      }
      done.fetch_add(1);
    });
  }
  while (done.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(uint64_t{kThreads} * kPerThread, h.Count());
  EXPECT_GE(h.Max(), 1u);
  EXPECT_GE(h.Average(), 1.0);
}

// --- PerfContext ---------------------------------------------------------

TEST(PerfContextTest, LevelsGateAccumulation) {
  const PerfLevel saved = GetPerfLevel();
  GetPerfContext()->Reset();

  SetPerfLevel(PerfLevel::kDisable);
  PerfAdd(&PerfContext::decrypt_bytes, 100);
  EXPECT_EQ(0u, GetPerfContext()->decrypt_bytes);

  SetPerfLevel(PerfLevel::kEnableCount);
  PerfAdd(&PerfContext::decrypt_bytes, 100);
  EXPECT_EQ(100u, GetPerfContext()->decrypt_bytes);
  {
    // Counts-only: wall-clock timers stay off.
    PerfTimer timer(&GetPerfContext()->decrypt_micros);
  }
  EXPECT_EQ(0u, GetPerfContext()->decrypt_micros);

  SetPerfLevel(PerfLevel::kEnableTime);
  {
    PerfTimer timer(&GetPerfContext()->hmac_micros);
    // Body intentionally trivial; even ~0us must be recorded as >= 0
    // without crashing. Touch the context to keep the block non-empty.
    PerfAdd(&PerfContext::hmac_compute_count, 1);
  }
  EXPECT_EQ(1u, GetPerfContext()->hmac_compute_count);

  const std::string dump = GetPerfContext()->ToString();
  EXPECT_NE(std::string::npos, dump.find("decrypt_bytes"));

  GetPerfContext()->Reset();
  EXPECT_EQ(0u, GetPerfContext()->decrypt_bytes);
  SetPerfLevel(saved);
}

TEST(PerfContextTest, ThreadLocalIsolation) {
  GetPerfContext()->Reset();
  PerfAdd(&PerfContext::kds_request_count, 5);
  uint64_t other_thread_count = 99;
  std::thread t([&] {
    GetPerfContext()->Reset();
    other_thread_count = GetPerfContext()->kds_request_count;
  });
  t.join();
  EXPECT_EQ(0u, other_thread_count);
  EXPECT_EQ(5u, GetPerfContext()->kds_request_count);
  GetPerfContext()->Reset();
}

// --- End-to-end: tickers vs PerfContext through a SHIELD DB --------------

class StatisticsDBTest : public ::testing::Test {
 protected:
  StatisticsDBTest() : env_(NewMemEnv()) {
    options_.env = env_.get();
    options_.statistics = CreateDBStatistics();
    options_.write_buffer_size = 64 * 1024;
    options_.block_cache_size = 0;  // every read hits the decrypt path
    options_.encryption.mode = EncryptionMode::kShield;
    options_.encryption.wal_buffer_size = 512;
  }

  ~StatisticsDBTest() override { db_.reset(); }

  void Open() {
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(StatisticsDBTest, WritePathPopulatesTickers) {
  Open();
  const std::string value(100, 'v');
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  db_->WaitForIdle();

  Statistics* stats = options_.statistics.get();
  // The bench acceptance set: all three must be nonzero after a fill.
  EXPECT_GT(stats->GetTickerCount(Tickers::kCryptoBytesEncrypted), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kKdsRequests), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kIoSstWriteBytes), 0u);
  // Plus the SHIELD plane details.
  EXPECT_GT(stats->GetTickerCount(Tickers::kShieldDekCreated), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kShieldWalBufferDrains), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kLsmFlushBytesWritten), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kIoWalWriteBytes), 0u);
  EXPECT_GT(stats->GetTickerCount(Tickers::kCryptoHmacComputed), 0u);
  EXPECT_GT(stats->GetHistogram(Histograms::kDbWriteMicros).Count(), 0u);
  EXPECT_GT(stats->GetHistogram(Histograms::kFlushMicros).Count(), 0u);

  // The property dump carries the same registry.
  std::string dump;
  ASSERT_TRUE(db_->GetProperty("shield.stats", &dump));
  EXPECT_NE(std::string::npos, dump.find("crypto.bytes.encrypted"));
  EXPECT_NE(std::string::npos, dump.find("kds.requests"));

  std::string io;
  ASSERT_TRUE(db_->GetProperty("shield.io-stats", &io));
  EXPECT_NE(std::string::npos, io.find("sst"));
}

// Every crypto byte is accounted at one site into both the global
// ticker and the caller's thread-local PerfContext, so across any set
// of reader threads: sum(per-thread decrypt_bytes) == ticker delta.
TEST_F(StatisticsDBTest, DecryptBytesConsistentUnderConcurrentReaders) {
  Open();
  const std::string value(100, 'v');
  constexpr int kKeys = 400;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  db_->WaitForIdle();  // quiesce: no background decrypts during reads

  Statistics* stats = options_.statistics.get();
  const uint64_t decrypted_before =
      stats->GetTickerCount(Tickers::kCryptoBytesDecrypted);

  constexpr int kThreads = 4;
  std::atomic<uint64_t> perf_sum{0};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      GetPerfContext()->Reset();
      ReadOptions ro;
      ro.fill_cache = false;
      for (int i = t; i < kKeys; i += kThreads) {
        std::string result;
        if (!db_->Get(ro, Key(i), &result).ok() || result != value) {
          read_errors.fetch_add(1);
        }
      }
      perf_sum.fetch_add(GetPerfContext()->decrypt_bytes);
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(0u, read_errors.load());
  const uint64_t decrypted_after =
      stats->GetTickerCount(Tickers::kCryptoBytesDecrypted);
  EXPECT_GT(decrypted_after, decrypted_before);
  EXPECT_EQ(decrypted_after - decrypted_before, perf_sum.load());
}

}  // namespace
}  // namespace shield
