#include "shield/file_crypto.h"

#include "crypto/secure_random.h"
#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "shield/chunk_encryptor.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

// --- File header -------------------------------------------------------

TEST(ShieldHeaderTest, EncodeParseRoundTrip) {
  ShieldFileHeader header;
  header.cipher = crypto::CipherKind::kAes128Ctr;
  header.dek_id = DekId::Generate();
  header.nonce = crypto::SecureRandomString(16);

  const std::string encoded = EncodeShieldFileHeader(header);
  EXPECT_EQ(kShieldHeaderSize, encoded.size());

  ShieldFileHeader parsed;
  ASSERT_TRUE(ParseShieldFileHeader(encoded, &parsed).ok());
  EXPECT_EQ(header.cipher, parsed.cipher);
  EXPECT_EQ(header.dek_id, parsed.dek_id);
  EXPECT_EQ(header.nonce, parsed.nonce);
}

TEST(ShieldHeaderTest, ChaChaNonceLength) {
  ShieldFileHeader header;
  header.cipher = crypto::CipherKind::kChaCha20;
  header.dek_id = DekId::Generate();
  header.nonce = crypto::SecureRandomString(12);
  ShieldFileHeader parsed;
  ASSERT_TRUE(
      ParseShieldFileHeader(EncodeShieldFileHeader(header), &parsed).ok());
  EXPECT_EQ(12u, parsed.nonce.size());
}

TEST(ShieldHeaderTest, RejectsGarbage) {
  ShieldFileHeader parsed;
  EXPECT_TRUE(ParseShieldFileHeader(Slice("too short"), &parsed)
                  .IsCorruption());
  std::string not_magic(kShieldHeaderSize, 'x');
  EXPECT_TRUE(ParseShieldFileHeader(not_magic, &parsed).IsCorruption());
}

TEST(ShieldHeaderTest, RejectsMalformedHeaders) {
  // The parser runs on attacker-supplied bytes (restore, external-SST
  // ingest): every field that is not exactly what the encoder emits
  // must fail closed. Each case mutates one byte of a valid header.
  ShieldFileHeader valid;
  valid.cipher = crypto::CipherKind::kAes128Ctr;
  valid.dek_id = DekId::Generate();
  valid.nonce = crypto::SecureRandomString(16);
  const std::string good = EncodeShieldFileHeader(valid);

  struct Case {
    const char* name;
    size_t offset;     // byte to overwrite (ignored when truncate_to set)
    char value;
    size_t truncate_to;  // when nonzero, truncate instead of mutate
    bool expect_not_supported;  // else Corruption
  };
  const Case cases[] = {
      {"truncated to magic only", 0, 0, 8, false},
      {"truncated mid-header", 0, 0, kShieldHeaderSize - 1, false},
      {"corrupt magic byte", 3, 'x', 0, false},
      {"unknown version", 8, 99, 0, true},
      {"version zero", 8, 0, 0, true},
      {"unknown cipher id", 9, 77, 0, false},
      {"nonce_len over 16", 10, 17, 0, false},
      {"nonce_len over 16 (255)", 10, static_cast<char>(255), 0, false},
      {"nonce_len mismatching cipher", 10, 12, 0, false},
      {"nonce_len zero", 10, 0, 0, false},
      {"nonzero reserved byte", 11, 1, 0, false},
  };
  for (const Case& c : cases) {
    std::string bytes = good;
    if (c.truncate_to != 0) {
      bytes.resize(c.truncate_to);
    } else {
      bytes[c.offset] = c.value;
    }
    ShieldFileHeader parsed;
    Status s = ParseShieldFileHeader(bytes, &parsed);
    EXPECT_FALSE(s.ok()) << c.name;
    if (c.expect_not_supported) {
      EXPECT_TRUE(s.IsNotSupported()) << c.name << ": " << s.ToString();
    } else {
      EXPECT_TRUE(s.IsCorruption()) << c.name << ": " << s.ToString();
    }
  }

  // Sanity: the unmutated header still parses.
  ShieldFileHeader parsed;
  EXPECT_TRUE(ParseShieldFileHeader(good, &parsed).ok());
}

TEST(ShieldHeaderTest, ReadFromFile) {
  auto env = NewMemEnv();
  ShieldFileHeader header;
  header.cipher = crypto::CipherKind::kAes256Ctr;
  header.dek_id = DekId::Generate();
  header.nonce = crypto::SecureRandomString(16);
  ASSERT_TRUE(WriteStringToFile(env.get(),
                                EncodeShieldFileHeader(header) + "payload",
                                "/f", false)
                  .ok());
  ShieldFileHeader parsed;
  ASSERT_TRUE(ReadShieldFileHeader(env.get(), "/f", &parsed).ok());
  EXPECT_EQ(header.dek_id, parsed.dek_id);
}

// --- ChunkEncryptor -------------------------------------------------------

TEST(ChunkEncryptorTest, ParallelMatchesSerial) {
  std::unique_ptr<crypto::StreamCipher> cipher;
  ASSERT_TRUE(crypto::NewStreamCipher(crypto::CipherKind::kAes128Ctr,
                                      crypto::SecureRandomString(16),
                                      crypto::SecureRandomString(16), &cipher)
                  .ok());

  Random rnd(77);
  std::string data(512 * 1024, '\0');
  for (auto& c : data) {
    c = static_cast<char>(rnd.Uniform(256));
  }

  std::string serial = data;
  ChunkEncryptor serial_encryptor(cipher.get(), nullptr, 1);
  serial_encryptor.Encrypt(1000, serial.data(), serial.size());

  ThreadPool pool(4);
  std::string parallel = data;
  ChunkEncryptor parallel_encryptor(cipher.get(), &pool, 4);
  parallel_encryptor.Encrypt(1000, parallel.data(), parallel.size());

  EXPECT_EQ(serial, parallel);
}

TEST(ChunkEncryptorTest, SmallBuffersStaySerial) {
  std::unique_ptr<crypto::StreamCipher> cipher;
  ASSERT_TRUE(crypto::NewStreamCipher(crypto::CipherKind::kAes128Ctr,
                                      crypto::SecureRandomString(16),
                                      crypto::SecureRandomString(16), &cipher)
                  .ok());
  ThreadPool pool(2);
  ChunkEncryptor encryptor(cipher.get(), &pool, 2);
  std::string tiny(100, 't');
  const std::string original = tiny;
  encryptor.Encrypt(0, tiny.data(), tiny.size());  // must not deadlock
  EXPECT_NE(original, tiny);
}

// Regression test for the tail-shard computation: buffer sizes at exact
// shard multiples (and one byte either side) must neither drop bytes
// nor schedule an empty shard whose `n - begin` underflows. Every
// combination must match the serial result, and a second pass must
// restore the plaintext (CTR is its own inverse).
TEST(ChunkEncryptorTest, ShardBoundarySizes) {
  std::unique_ptr<crypto::StreamCipher> cipher;
  ASSERT_TRUE(crypto::NewStreamCipher(crypto::CipherKind::kAes128Ctr,
                                      crypto::SecureRandomString(16),
                                      crypto::SecureRandomString(16), &cipher)
                  .ok());
  ThreadPool pool(4);
  Random rnd(123);
  const size_t kShard = ChunkEncryptor::kMinShardBytes;
  for (size_t multiple : {1u, 2u, 3u, 4u}) {
    for (int delta : {-1, 0, 1}) {
      const size_t n = multiple * kShard + delta;
      std::string data(n, '\0');
      for (auto& c : data) {
        c = static_cast<char>(rnd.Uniform(256));
      }
      std::string serial = data;
      ChunkEncryptor serial_encryptor(cipher.get(), nullptr, 1);
      ASSERT_TRUE(serial_encryptor.Encrypt(4096, serial.data(), n).ok());

      // Thread counts below, at, and far above the shard count the
      // buffer can sustain (the last forces the shards-clamp path).
      for (int threads : {2, 3, 4, 64}) {
        std::string parallel = data;
        ChunkEncryptor encryptor(cipher.get(), &pool, threads);
        ASSERT_TRUE(encryptor.Encrypt(4096, parallel.data(), n).ok())
            << "n=" << n << " threads=" << threads;
        EXPECT_EQ(serial, parallel) << "n=" << n << " threads=" << threads;
        ASSERT_TRUE(encryptor.Encrypt(4096, parallel.data(), n).ok());
        EXPECT_EQ(data, parallel) << "decrypt n=" << n
                                  << " threads=" << threads;
      }
    }
  }
}

// --- ShieldFileFactory -----------------------------------------------------

class ShieldFactoryTest : public ::testing::Test {
 protected:
  ShieldFactoryTest()
      : env_(NewMemEnv()),
        kds_(std::make_shared<LocalKds>()),
        dek_manager_(kds_.get(), "test-server", nullptr) {}

  std::unique_ptr<DataFileFactory> MakeFactory(EncryptionOptions opts = {}) {
    opts.mode = EncryptionMode::kShield;
    return NewShieldFileFactory(env_.get(), &dek_manager_, opts, nullptr);
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<LocalKds> kds_;
  DekManager dek_manager_;
};

TEST_F(ShieldFactoryTest, WriteReadRoundTrip) {
  auto factory = MakeFactory();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(
        factory->NewWritableFile("/000001.sst", FileKind::kSst, &file).ok());
    ASSERT_TRUE(file->Append("hello encrypted world").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  {
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(factory->NewRandomAccessFile("/000001.sst", &file).ok());
    char scratch[64];
    Slice result;
    ASSERT_TRUE(file->Read(6, 9, &result, scratch).ok());
    EXPECT_EQ("encrypted", result.ToString());
    uint64_t size;
    ASSERT_TRUE(file->Size(&size).ok());
    EXPECT_EQ(strlen("hello encrypted world"), size);
  }
  {
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(factory->NewSequentialFile("/000001.sst", &file).ok());
    char scratch[64];
    Slice result;
    ASSERT_TRUE(file->Read(5, &result, scratch).ok());
    EXPECT_EQ("hello", result.ToString());
  }
}

TEST_F(ShieldFactoryTest, CiphertextOnDisk) {
  auto factory = MakeFactory();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(
      factory->NewWritableFile("/000002.sst", FileKind::kSst, &file).ok());
  ASSERT_TRUE(file->Append("SUPER_SECRET_PAYLOAD").ok());
  ASSERT_TRUE(file->Close().ok());

  std::string raw;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/000002.sst", &raw).ok());
  EXPECT_EQ(std::string::npos, raw.find("SUPER_SECRET_PAYLOAD"));
  EXPECT_EQ(kShieldHeaderSize + strlen("SUPER_SECRET_PAYLOAD"), raw.size());
}

TEST_F(ShieldFactoryTest, WalBufferSemantics) {
  EncryptionOptions opts;
  opts.wal_buffer_size = 512;
  auto factory = MakeFactory(opts);

  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(
      factory->NewWritableFile("/000003.log", FileKind::kWal, &wal).ok());
  ASSERT_TRUE(wal->Append("record-1").ok());
  ASSERT_TRUE(wal->Flush().ok());

  // Below threshold + not synced: only the header is on storage.
  uint64_t raw_size;
  ASSERT_TRUE(env_->GetFileSize("/000003.log", &raw_size).ok());
  EXPECT_EQ(kShieldHeaderSize, raw_size);
  // But the logical size includes the buffered bytes.
  EXPECT_EQ(strlen("record-1"), wal->GetFileSize());

  // Sync drains the buffer (encrypted).
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(env_->GetFileSize("/000003.log", &raw_size).ok());
  EXPECT_EQ(kShieldHeaderSize + strlen("record-1"), raw_size);
  ASSERT_TRUE(wal->Close().ok());
}

TEST_F(ShieldFactoryTest, WalBufferDrainsAtThreshold) {
  EncryptionOptions opts;
  opts.wal_buffer_size = 64;
  auto factory = MakeFactory(opts);
  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(
      factory->NewWritableFile("/000004.log", FileKind::kWal, &wal).ok());
  ASSERT_TRUE(wal->Append(std::string(100, 'r')).ok());
  uint64_t raw_size;
  ASSERT_TRUE(env_->GetFileSize("/000004.log", &raw_size).ok());
  EXPECT_EQ(kShieldHeaderSize + 100, raw_size);
  ASSERT_TRUE(wal->Close().ok());
}

TEST_F(ShieldFactoryTest, EachFileUniqueDek) {
  auto factory = MakeFactory();
  for (int i = 0; i < 3; i++) {
    std::unique_ptr<WritableFile> file;
    const std::string name = "/00000" + std::to_string(i) + ".sst";
    ASSERT_TRUE(factory->NewWritableFile(name, FileKind::kSst, &file).ok());
    ASSERT_TRUE(file->Append("x").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  std::set<std::string> ids;
  for (int i = 0; i < 3; i++) {
    ShieldFileHeader header;
    const std::string name = "/00000" + std::to_string(i) + ".sst";
    ASSERT_TRUE(ReadShieldFileHeader(env_.get(), name, &header).ok());
    ids.insert(header.dek_id.ToHex());
  }
  EXPECT_EQ(3u, ids.size());
  EXPECT_EQ(3u, kds_->NumDeks());
}

TEST_F(ShieldFactoryTest, DeleteFileDestroysDek) {
  auto factory = MakeFactory();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(
      factory->NewWritableFile("/000009.sst", FileKind::kSst, &file).ok());
  ASSERT_TRUE(file->Append("doomed").ok());
  ASSERT_TRUE(file->Close().ok());

  ShieldFileHeader header;
  ASSERT_TRUE(ReadShieldFileHeader(env_.get(), "/000009.sst", &header).ok());
  ASSERT_TRUE(factory->DeleteFile("/000009.sst").ok());

  Dek dek;
  EXPECT_TRUE(kds_->GetDek("anyone", header.dek_id, &dek).IsNotFound());
  EXPECT_FALSE(env_->FileExists("/000009.sst"));
}

TEST_F(ShieldFactoryTest, PlaintextWalKnob) {
  EncryptionOptions opts;
  opts.encrypt_wal = false;
  auto factory = MakeFactory(opts);

  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(
      factory->NewWritableFile("/000010.log", FileKind::kWal, &wal).ok());
  ASSERT_TRUE(wal->Append("PLAINTEXT_WAL_RECORD").ok());
  ASSERT_TRUE(wal->Close().ok());

  std::string raw;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/000010.log", &raw).ok());
  EXPECT_NE(std::string::npos, raw.find("PLAINTEXT_WAL_RECORD"));

  // Readers transparently fall back to plaintext.
  std::unique_ptr<SequentialFile> reader;
  ASSERT_TRUE(factory->NewSequentialFile("/000010.log", &reader).ok());
  char scratch[64];
  Slice result;
  ASSERT_TRUE(reader->Read(20, &result, scratch).ok());
  EXPECT_EQ("PLAINTEXT_WAL_RECORD", result.ToString());

  // SSTs are still encrypted under the knob.
  std::unique_ptr<WritableFile> sst;
  ASSERT_TRUE(
      factory->NewWritableFile("/000011.sst", FileKind::kSst, &sst).ok());
  ASSERT_TRUE(sst->Append("SST_SECRET").ok());
  ASSERT_TRUE(sst->Close().ok());
  ASSERT_TRUE(ReadFileToString(env_.get(), "/000011.sst", &raw).ok());
  EXPECT_EQ(std::string::npos, raw.find("SST_SECRET"));
}

TEST_F(ShieldFactoryTest, CrossManagerSharing) {
  // Worker resolves a file written by the primary purely from the
  // header DEK-ID (metadata-enabled sharing).
  auto factory = MakeFactory();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(
      factory->NewWritableFile("/000012.sst", FileKind::kSst, &file).ok());
  ASSERT_TRUE(file->Append("shared across servers").ok());
  ASSERT_TRUE(file->Close().ok());

  DekManager worker_manager(kds_.get(), "worker", nullptr);
  EncryptionOptions opts;
  opts.mode = EncryptionMode::kShield;
  auto worker_factory =
      NewShieldFileFactory(env_.get(), &worker_manager, opts, nullptr);
  std::unique_ptr<SequentialFile> reader;
  ASSERT_TRUE(worker_factory->NewSequentialFile("/000012.sst", &reader).ok());
  char scratch[64];
  Slice result;
  ASSERT_TRUE(reader->Read(21, &result, scratch).ok());
  EXPECT_EQ("shared across servers", result.ToString());
  EXPECT_EQ(1u, worker_manager.kds_requests());
}

}  // namespace
}  // namespace shield
