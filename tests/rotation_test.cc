// Online DEK rotation and encrypted backup/restore.
//
// Covers the rotation state machine (fresh plan, bounded pass, crash
// resume from the ROTATION manifest, stale manifest entries), rotation
// under injected storage faults, and the backup -> revoke source ->
// restore-to-new-identity flow against a shadow model.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "kds/sim_kds.h"
#include "lsm/db.h"
#include "lsm/file_names.h"
#include "lsm/rotation_manifest.h"
#include "shield/file_crypto.h"
#include "test_util.h"
#include "util/clock.h"

namespace shield {
namespace {

constexpr char kDbPath[] = "/db";

class RotationTest : public ::testing::Test {
 protected:
  RotationTest() : env_(NewMemEnv()), kds_(std::make_shared<LocalKds>()) {}

  Options MakeOptions(Env* env) {
    Options options;
    options.env = env;
    options.write_buffer_size = 32 * 1024;
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    return options;
  }

  void Open(Env* env) {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(MakeOptions(env), kDbPath, &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void Close() { db_.reset(); }

  // Writes `count` keys starting at `begin` and flushes, producing at
  // least one fresh SST per call.
  void FillAndFlush(int begin, int count) {
    WriteOptions wopts;
    for (int i = begin; i < begin + count; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key-%06d", i);
      const std::string value(100, static_cast<char>('a' + (i % 26)));
      ASSERT_TRUE(db_->Put(wopts, key, value).ok());
      shadow_[key] = value;
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  void VerifyAllKeys(DB* db) {
    ReadOptions ropts;
    for (const auto& [key, expected] : shadow_) {
      std::string value;
      Status s = db->Get(ropts, key, &value);
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(expected, value) << key;
    }
  }

  // DEK ids embedded in the headers of every live .sst file.
  std::set<std::string> SstDekIds(Env* env) {
    std::set<std::string> ids;
    std::vector<std::string> children;
    EXPECT_TRUE(env->GetChildren(kDbPath, &children).ok());
    for (const std::string& child : children) {
      if (child.size() < 4 || child.substr(child.size() - 4) != ".sst") {
        continue;
      }
      ShieldFileHeader header;
      if (ReadShieldFileHeader(env, std::string(kDbPath) + "/" + child,
                               &header)
              .ok()) {
        ids.insert(header.dek_id.ToHex());
      }
    }
    return ids;
  }

  void WaitRotationIdle() {
    std::string state;
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db_->GetProperty("shield.rotation-state", &state));
      if (state == "idle") {
        return;
      }
      SleepForMicros(10 * 1000);
    }
    FAIL() << "rotation did not reach idle, state=" << state;
  }

  void ExpectDeksDeleted(const std::set<std::string>& ids) {
    for (const std::string& hex : ids) {
      DekId id;
      ASSERT_TRUE(DekId::FromHex(hex, &id));
      Dek dek;
      EXPECT_TRUE(kds_->GetDek("any", id, &dek).IsNotFound())
          << "pre-rotation DEK still resolvable: " << hex;
    }
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<LocalKds> kds_;
  std::unique_ptr<DB> db_;
  std::map<std::string, std::string> shadow_;
};

TEST_F(RotationTest, FullRotationAssignsFreshDeksAndDestroysOld) {
  Open(env_.get());
  FillAndFlush(0, 200);
  FillAndFlush(200, 200);
  FillAndFlush(400, 200);
  db_->WaitForIdle();

  const std::set<std::string> before = SstDekIds(env_.get());
  ASSERT_FALSE(before.empty());

  RotateOptions opts;
  RotateResult result;
  Status s = db_->RotateDeks(opts, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(result.files_rotated, 1u);
  EXPECT_EQ(0u, result.files_pending);

  const std::set<std::string> after = SstDekIds(env_.get());
  ASSERT_FALSE(after.empty());
  for (const std::string& id : after) {
    EXPECT_EQ(0u, before.count(id)) << "file still on pre-rotation DEK";
  }
  ExpectDeksDeleted(before);
  VerifyAllKeys(db_.get());

  std::string state;
  ASSERT_TRUE(db_->GetProperty("shield.rotation-state", &state));
  EXPECT_EQ("idle", state);
  RotationManifest manifest;
  EXPECT_TRUE(
      RotationManifest::Load(env_.get(), kDbPath, &manifest).IsNotFound());
}

TEST_F(RotationTest, RotationIsIdempotentWhenDeksAreFresh) {
  Open(env_.get());
  FillAndFlush(0, 200);
  RotateOptions opts;
  RotateResult first;
  ASSERT_TRUE(db_->RotateDeks(opts, &first).ok());
  ASSERT_GE(first.files_rotated, 1u);

  // Nothing is older than an hour now: a bounded-age pass is a no-op.
  opts.max_dek_age_micros = 60ull * 60 * 1000 * 1000;
  RotateResult second;
  ASSERT_TRUE(db_->RotateDeks(opts, &second).ok());
  EXPECT_EQ(0u, second.files_rotated);
  VerifyAllKeys(db_.get());
}

// A bounded pass persists the remainder in the ROTATION manifest; a
// reopen (the crash case — nothing in the manifest depends on a clean
// shutdown) resumes from it and finishes without replanning.
TEST_F(RotationTest, BoundedRotationResumesAfterReopen) {
  Open(env_.get());
  FillAndFlush(0, 200);
  FillAndFlush(200, 200);
  FillAndFlush(400, 200);
  db_->WaitForIdle();

  const std::set<std::string> before = SstDekIds(env_.get());
  ASSERT_GE(before.size(), 2u);

  RotateOptions opts;
  opts.max_files = 1;
  RotateResult result;
  ASSERT_TRUE(db_->RotateDeks(opts, &result).ok());
  EXPECT_EQ(1u, result.files_rotated);
  ASSERT_GE(result.files_pending, 1u);

  RotationManifest manifest;
  ASSERT_TRUE(RotationManifest::Load(env_.get(), kDbPath, &manifest).ok());
  EXPECT_EQ(RotationManifest::State::kRunning, manifest.state);
  EXPECT_EQ(result.files_pending, manifest.pending.size());

  std::string state;
  ASSERT_TRUE(db_->GetProperty("shield.rotation-state", &state));
  EXPECT_EQ("pending:" + std::to_string(result.files_pending), state);

  // Reopen: the pending rotation must resume automatically even with
  // no background rotation interval configured.
  Close();
  Open(env_.get());
  WaitRotationIdle();

  EXPECT_TRUE(
      RotationManifest::Load(env_.get(), kDbPath, &manifest).IsNotFound());
  const std::set<std::string> after = SstDekIds(env_.get());
  for (const std::string& id : after) {
    EXPECT_EQ(0u, before.count(id));
  }
  ExpectDeksDeleted(before);
  VerifyAllKeys(db_.get());
}

// Every bounded step is a persisted crash point: rotate one file at a
// time with a reopen between every step until the manifest is gone.
TEST_F(RotationTest, SingleFileStepsWithReopenBetweenEachStep) {
  Open(env_.get());
  FillAndFlush(0, 150);
  FillAndFlush(150, 150);
  FillAndFlush(300, 150);
  db_->WaitForIdle();
  const std::set<std::string> before = SstDekIds(env_.get());

  // First bounded step plants the manifest.
  RotateOptions opts;
  opts.max_files = 1;
  RotateResult result;
  ASSERT_TRUE(db_->RotateDeks(opts, &result).ok());

  int reopens = 0;
  RotationManifest manifest;
  while (RotationManifest::Load(env_.get(), kDbPath, &manifest).ok() &&
         reopens < 20) {
    Close();
    Open(env_.get());
    WaitRotationIdle();  // resume-at-open finishes the remainder
    reopens++;
  }
  ASSERT_LT(reopens, 20);
  ExpectDeksDeleted(before);
  VerifyAllKeys(db_.get());
}

TEST_F(RotationTest, RotationSurvivesSimulatedCrash) {
  FaultInjectionOptions fopts;
  fopts.torn_write_probability = 0.5;
  FaultInjectionEnv fault_env(env_.get(), fopts);

  Open(&fault_env);
  FillAndFlush(0, 200);
  FillAndFlush(200, 200);
  FillAndFlush(400, 200);
  db_->WaitForIdle();
  const std::set<std::string> before = SstDekIds(&fault_env);

  RotateOptions opts;
  opts.max_files = 1;
  RotateResult result;
  ASSERT_TRUE(db_->RotateDeks(opts, &result).ok());
  ASSERT_GE(result.files_pending, 1u);

  // Crash: drop everything unsynced since the bounded pass. The
  // rotation manifest and the rewritten SST were synced before the old
  // DEK was destroyed, so recovery resumes instead of losing a key.
  Close();
  ASSERT_TRUE(fault_env.SimulateCrash().ok());

  Open(&fault_env);
  WaitRotationIdle();
  ExpectDeksDeleted(before);
  VerifyAllKeys(db_.get());
}

TEST_F(RotationTest, RotationCompletesUnderTransientWriteFaults) {
  FaultInjectionOptions fopts;
  fopts.seed = 11;
  fopts.write_error_probability = 0.02;
  fopts.permanent_error_ratio = 0.0;  // all injected errors transient
  FaultInjectionEnv fault_env(env_.get(), fopts);
  fault_env.SetFaultsEnabled(false);

  Open(&fault_env);
  FillAndFlush(0, 200);
  FillAndFlush(200, 200);
  db_->WaitForIdle();
  const std::set<std::string> before = SstDekIds(&fault_env);

  fault_env.SetFaultsEnabled(true);
  RotateOptions opts;
  RotateResult result;
  for (int attempt = 0; attempt < 50; attempt++) {
    Status s = db_->RotateDeks(opts, &result);
    if (s.ok() && result.files_pending == 0) {
      break;
    }
    // A transient fault aborted the pass (or tripped the error
    // handler); clear it and retry — progress is monotone because
    // finished files are persisted per step.
    db_->Resume();
  }
  fault_env.SetFaultsEnabled(false);
  ASSERT_TRUE(db_->RotateDeks(opts, &result).ok());
  EXPECT_EQ(0u, result.files_pending);

  ExpectDeksDeleted(before);
  VerifyAllKeys(db_.get());
}

// Regression: a rotation manifest that names files compacted away in
// the meantime (or corrupted counters) must not wedge rotation — stale
// entries are skipped and the rotation still completes.
TEST_F(RotationTest, StaleManifestEntriesAreSkipped) {
  Open(env_.get());
  FillAndFlush(0, 200);
  db_->WaitForIdle();
  const std::set<std::string> before = SstDekIds(env_.get());
  Close();

  // Mix every real table-file number with entries that no longer
  // exist (never-created numbers model files compacted away after the
  // plan was persisted).
  std::vector<uint64_t> real_numbers;
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(kDbPath, &children).ok());
  for (const std::string& child : children) {
    if (child.size() > 4 && child.substr(child.size() - 4) == ".sst") {
      real_numbers.push_back(strtoull(child.c_str(), nullptr, 10));
    }
  }
  ASSERT_FALSE(real_numbers.empty());

  RotationManifest manifest;
  manifest.rotation_id = 7;
  manifest.state = RotationManifest::State::kRunning;
  manifest.pending.push_back(424242);
  manifest.pending.insert(manifest.pending.end(), real_numbers.begin(),
                          real_numbers.end());
  manifest.pending.push_back(999999);
  ASSERT_TRUE(manifest.Save(env_.get(), kDbPath).ok());

  Open(env_.get());
  WaitRotationIdle();
  EXPECT_TRUE(
      RotationManifest::Load(env_.get(), kDbPath, &manifest).IsNotFound());
  const std::set<std::string> after = SstDekIds(env_.get());
  for (const std::string& id : after) {
    EXPECT_EQ(0u, before.count(id)) << "live file was not rotated";
  }
  VerifyAllKeys(db_.get());
}

TEST_F(RotationTest, BackgroundRotationJobRotatesOldDeks) {
  Options options = MakeOptions(env_.get());
  options.dek_rotation_interval_micros = 20 * 1000;  // 20ms passes
  options.max_dek_age_micros = 1;  // everything is immediately "old"
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(options, kDbPath, &db).ok());
  db_.reset(db);

  FillAndFlush(0, 200);
  const std::set<std::string> before = SstDekIds(env_.get());
  ASSERT_FALSE(before.empty());

  // The background job must eventually rewrite every file without any
  // explicit RotateDeks call.
  bool rotated = false;
  for (int i = 0; i < 1000 && !rotated; i++) {
    SleepForMicros(10 * 1000);
    const std::set<std::string> now = SstDekIds(env_.get());
    rotated = !now.empty();
    for (const std::string& id : now) {
      if (before.count(id) > 0) {
        rotated = false;
      }
    }
  }
  EXPECT_TRUE(rotated) << "background rotation never rewrote the SSTs";
  VerifyAllKeys(db_.get());
}

TEST_F(RotationTest, RotateNotSupportedWithoutShield) {
  Options options;
  options.env = env_.get();
  DB* db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/plain", &db).ok());
  std::unique_ptr<DB> owned(db);
  RotateOptions opts;
  RotateResult result;
  EXPECT_TRUE(db->RotateDeks(opts, &result).IsNotSupported());
}

// --- Backup / restore -------------------------------------------------------

class BackupTest : public ::testing::Test {
 protected:
  BackupTest() : env_(NewMemEnv()) {
    SimKdsOptions kopts;
    kopts.request_latency_us = 0;
    kopts.require_authorization = true;
    kds_ = std::make_shared<SimKds>(kopts);
    kds_->AuthorizeServer("source");
    kds_->AuthorizeServer("target");
  }

  Options MakeOptions(const std::string& server_id) {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 32 * 1024;
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    options.encryption.server_id = server_id;
    return options;
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<SimKds> kds_;
  std::map<std::string, std::string> shadow_;
};

TEST_F(BackupTest, RestoreToNewIdentityAfterSourceRevoked) {
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(MakeOptions("source"), "/src", &raw).ok());
  std::unique_ptr<DB> db(raw);
  WriteOptions wopts;
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key-%06d", i);
    const std::string value = "value-" + std::to_string(i * i);
    ASSERT_TRUE(db->Put(wopts, key, value).ok());
    shadow_[key] = value;
  }
  ASSERT_TRUE(db->Flush().ok());

  BackupOptions bopts;
  bopts.target_server_id = "target";
  Status s = db->CreateBackup("/backup", bopts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  db.reset();

  // The breach response: the source identity is revoked after the
  // backup is taken. Restore must not depend on it.
  kds_->RevokeServer("source");
  Dek probe;
  EXPECT_TRUE(kds_->GetDek("source", DekId::Generate(), &probe)
                  .IsPermissionDenied());

  Options target_options = MakeOptions("target");
  RestoreOptions ropts;
  ASSERT_TRUE(
      DB::VerifyBackup(target_options, "/backup", ropts).ok());
  s = DB::RestoreBackup(target_options, "/backup", "/restored", ropts);
  ASSERT_TRUE(s.ok()) << s.ToString();

  ASSERT_TRUE(DB::Open(target_options, "/restored", &raw).ok());
  db.reset(raw);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  ReadOptions read_opts;
  for (const auto& [key, expected] : shadow_) {
    std::string value;
    ASSERT_TRUE(db->Get(read_opts, key, &value).ok()) << key;
    EXPECT_EQ(expected, value);
  }
}

TEST_F(BackupTest, TamperedBackupFailsVerificationBeforeAnyWrite) {
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(MakeOptions("source"), "/src", &raw).ok());
  std::unique_ptr<DB> db(raw);
  WriteOptions wopts;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(wopts, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CreateBackup("/backup", BackupOptions()).ok());
  db.reset();

  // Flip one byte of a backed-up SST.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/backup", &children).ok());
  std::string victim;
  for (const std::string& child : children) {
    if (child.size() > 4 && child.substr(child.size() - 4) == ".sst") {
      victim = "/backup/" + child;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), victim, &contents).ok());
  contents[contents.size() / 2] ^= 0x01;
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), contents, victim, /*sync=*/true).ok());

  Options options = MakeOptions("source");
  RestoreOptions ropts;
  EXPECT_TRUE(DB::VerifyBackup(options, "/backup", ropts).IsCorruption());
  EXPECT_TRUE(DB::RestoreBackup(options, "/backup", "/restored", ropts)
                  .IsCorruption());
  // Nothing was written: the target directory must not exist as a DB.
  EXPECT_FALSE(env_->FileExists(CurrentFileName("/restored")));
}

TEST_F(BackupTest, SecondBackupIntoSameDirRefused) {
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(MakeOptions("source"), "/src", &raw).ok());
  std::unique_ptr<DB> db(raw);
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db->CreateBackup("/backup", BackupOptions()).ok());
  EXPECT_TRUE(
      db->CreateBackup("/backup", BackupOptions()).IsInvalidArgument());
}

TEST_F(BackupTest, RestoreOntoExistingDbRefused) {
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(MakeOptions("source"), "/src", &raw).ok());
  std::unique_ptr<DB> db(raw);
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db->CreateBackup("/backup", BackupOptions()).ok());
  db.reset();
  RestoreOptions ropts;
  EXPECT_TRUE(DB::RestoreBackup(MakeOptions("source"), "/backup", "/src",
                                ropts)
                  .IsInvalidArgument());
}

TEST_F(BackupTest, WrongHmacKeyFailsVerification) {
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(MakeOptions("source"), "/src", &raw).ok());
  std::unique_ptr<DB> db(raw);
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  BackupOptions bopts;
  bopts.hmac_key = "right-key";
  ASSERT_TRUE(db->CreateBackup("/backup", bopts).ok());
  db.reset();
  RestoreOptions ropts;
  ropts.hmac_key = "wrong-key";
  EXPECT_FALSE(DB::VerifyBackup(MakeOptions("source"), "/backup", ropts).ok());
}

}  // namespace
}  // namespace shield
