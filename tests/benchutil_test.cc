#include <atomic>
#include <set>

#include "benchutil/driver.h"
#include "benchutil/engines.h"
#include "benchutil/mixgraph.h"
#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "benchutil/ycsb.h"
#include "gtest/gtest.h"
#include "lsm/db.h"
#include "test_util.h"

namespace shield {
namespace bench {
namespace {

TEST(MakeKeyTest, FixedWidthSortable) {
  EXPECT_EQ(16u, MakeKey(0, 16).size());
  EXPECT_EQ(16u, MakeKey(12345678, 16).size());
  EXPECT_LT(MakeKey(1, 16), MakeKey(2, 16));
  EXPECT_LT(MakeKey(99, 16), MakeKey(100, 16));
  // Wider than the natural number: left-padded.
  EXPECT_EQ(24u, MakeKey(7, 24).size());
  // Narrower: truncated from the left, still unique within range.
  EXPECT_EQ(8u, MakeKey(7, 8).size());
}

TEST(DriverTest, RunsExactOpCount) {
  std::atomic<uint64_t> count{0};
  BenchResult result =
      RunOps("test", 1000, 4, [&](int, uint64_t) { count.fetch_add(1); });
  EXPECT_EQ(1000u, count.load());
  EXPECT_EQ(1000u, result.ops);
  EXPECT_EQ(1000u, result.latency->Count());
  EXPECT_GT(result.ops_per_sec(), 0);
}

TEST(DriverTest, OpIndicesAreDisjointAndComplete) {
  std::mutex mu;
  std::set<uint64_t> seen;
  RunOps("test", 500, 3, [&](int, uint64_t i) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
  });
  EXPECT_EQ(500u, seen.size());
  EXPECT_EQ(0u, *seen.begin());
  EXPECT_EQ(499u, *seen.rbegin());
}

TEST(ReportTest, PercentVs) {
  BenchResult baseline, half;
  baseline.ops = 1000;
  baseline.elapsed_micros = 1e6;
  half.ops = 500;
  half.elapsed_micros = 1e6;
  EXPECT_NEAR(-50.0, PercentVs(baseline, half), 0.01);
  EXPECT_NEAR(100.0, PercentVs(half, baseline), 0.01);
}

TEST(ReportTest, EnvInt) {
  unsetenv("SHIELD_TEST_ENVINT");
  EXPECT_EQ(42u, EnvInt("SHIELD_TEST_ENVINT", 42));
  setenv("SHIELD_TEST_ENVINT", "100", 1);
  EXPECT_EQ(100u, EnvInt("SHIELD_TEST_ENVINT", 42));
  unsetenv("SHIELD_TEST_ENVINT");
}

TEST(EnginesTest, ApplyEngineConfigures) {
  Options options;
  ApplyEngine(Engine::kUnencrypted, &options);
  EXPECT_EQ(EncryptionMode::kNone, options.encryption.mode);

  ApplyEngine(Engine::kEncFs, &options);
  EXPECT_EQ(EncryptionMode::kEncFS, options.encryption.mode);
  EXPECT_EQ(16u, options.encryption.instance_key.size());
  EXPECT_EQ(0u, options.encryption.wal_buffer_size);

  ApplyEngine(Engine::kEncFsWalBuf, &options, 768);
  EXPECT_EQ(768u, options.encryption.wal_buffer_size);

  ApplyEngine(Engine::kShield, &options);
  EXPECT_EQ(EncryptionMode::kShield, options.encryption.mode);
  EXPECT_EQ(0u, options.encryption.wal_buffer_size);

  ApplyEngine(Engine::kShieldWalBuf, &options);
  EXPECT_EQ(512u, options.encryption.wal_buffer_size);
}

TEST(EnginesTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (Engine engine : AllEngines()) {
    names.insert(EngineName(engine));
  }
  EXPECT_EQ(5u, names.size());
}

class WorkloadDriverTest : public ::testing::Test {
 protected:
  WorkloadDriverTest() : env_(NewMemEnv()) {
    Options options;
    options.env = env_.get();
    DB* raw_db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/db", &raw_db).ok());
    db_.reset(raw_db);
  }

  uint64_t CountKeys() {
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    uint64_t n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      n++;
    }
    return n;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(WorkloadDriverTest, FillSeqWritesDistinctKeys) {
  WorkloadOptions workload;
  workload.num_ops = 500;
  workload.num_keys = 500;
  const BenchResult result = FillSeq(db_.get(), workload, "fillseq");
  EXPECT_EQ(500u, result.ops);
  EXPECT_EQ(500u, CountKeys());
}

TEST_F(WorkloadDriverTest, FillRandomStaysInKeySpace) {
  WorkloadOptions workload;
  workload.num_ops = 1000;
  workload.num_keys = 100;
  FillRandom(db_.get(), workload, "fillrandom");
  EXPECT_LE(CountKeys(), 100u);
  // Key format check.
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(workload.key_size, iter->key().size());
}

TEST_F(WorkloadDriverTest, ReadWriteMixDoesBoth) {
  WorkloadOptions workload;
  workload.num_ops = 500;
  workload.num_keys = 200;
  workload.read_percent = 50;
  FillSeq(db_.get(), workload, "load");
  const BenchResult result = ReadWriteMix(db_.get(), workload, "mix");
  EXPECT_EQ(500u, result.ops);
}

TEST_F(WorkloadDriverTest, YcsbWorkloadsRun) {
  WorkloadOptions workload;
  workload.num_keys = 300;
  workload.num_ops = 300;
  workload.value_size = 128;
  YcsbLoad(db_.get(), workload);
  for (YcsbKind kind : {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC,
                        YcsbKind::kD, YcsbKind::kE, YcsbKind::kF}) {
    const BenchResult result = RunYcsb(db_.get(), kind, workload);
    EXPECT_EQ(workload.num_ops, result.ops) << YcsbName(kind);
  }
}

TEST_F(WorkloadDriverTest, MixgraphRuns) {
  WorkloadOptions workload;
  workload.num_keys = 300;
  workload.num_ops = 500;
  FillSeq(db_.get(), workload, "load");
  const BenchResult result = RunMixgraph(db_.get(), workload);
  EXPECT_EQ(500u, result.ops);
  EXPECT_GT(result.p99_micros(), 0);
}

}  // namespace
}  // namespace bench
}  // namespace shield
