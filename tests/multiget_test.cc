// MultiGet equivalence and backward-iteration coverage over a
// multi-level DB, with and without encryption and readahead. The core
// property: DB::MultiGet(keys) must return exactly what N sequential
// DB::Get calls would — same statuses, same values — for any batch
// shape (present, absent, deleted, overwritten, duplicated, empty).

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

struct ModeParam {
  EncryptionMode mode;
  const char* name;
};

class MultiGetTest : public ::testing::TestWithParam<ModeParam> {
 protected:
  MultiGetTest() : env_(NewMemEnv()) {}

  Options MakeOptions() {
    Options options;
    options.env = env_.get();
    // Small memtables so a few thousand keys span several levels.
    options.write_buffer_size = 32 * 1024;
    options.encryption.mode = GetParam().mode;
    if (GetParam().mode == EncryptionMode::kShield) {
      if (kds_ == nullptr) {
        kds_ = std::make_shared<LocalKds>();
      }
      options.encryption.kds = kds_;
    }
    return options;
  }

  void Open() {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(MakeOptions(), "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return std::string(buf);
  }

  // Fills the DB in waves with flushes in between (several SSTs across
  // levels), overwrites a third of the keys, deletes every seventh.
  // `model_` holds the expected live contents afterwards.
  void BuildMultiLevelDb(int num_keys) {
    Random rnd(301);
    for (int wave = 0; wave < 3; wave++) {
      for (int i = wave; i < num_keys; i += 3) {
        const std::string value =
            "v" + std::to_string(wave) + "." + std::to_string(rnd.Next());
        ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
        model_[Key(i)] = value;
      }
      ASSERT_TRUE(db_->Flush().ok());
      db_->WaitForIdle();
    }
    for (int i = 0; i < num_keys; i += 3) {  // overwrite a subset
      const std::string value = "overwritten" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
      model_[Key(i)] = value;
    }
    for (int i = 0; i < num_keys; i += 7) {  // delete a subset
      ASSERT_TRUE(db_->Delete(WriteOptions(), Key(i)).ok());
      model_.erase(Key(i));
    }
    ASSERT_TRUE(db_->Flush().ok());
    db_->WaitForIdle();
    // A final unflushed tail so the memtable path is also exercised.
    for (int i = 1; i < num_keys; i += 97) {
      const std::string value = "memtable" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
      model_[Key(i)] = value;
    }
  }

  // The core property: MultiGet(batch) == N sequential Gets.
  void CheckBatchMatchesGets(const ReadOptions& options,
                             const std::vector<std::string>& batch) {
    std::vector<Slice> keys(batch.begin(), batch.end());
    std::vector<std::string> values;
    std::vector<Status> statuses = db_->MultiGet(options, keys, &values);
    ASSERT_EQ(batch.size(), statuses.size());
    ASSERT_EQ(batch.size(), values.size());
    for (size_t i = 0; i < batch.size(); i++) {
      std::string expected;
      Status gs = db_->Get(options, batch[i], &expected);
      EXPECT_EQ(gs.ok(), statuses[i].ok()) << batch[i];
      EXPECT_EQ(gs.IsNotFound(), statuses[i].IsNotFound()) << batch[i];
      if (gs.ok()) {
        EXPECT_EQ(expected, values[i]) << batch[i];
      }
    }
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<Kds> kds_;
  std::unique_ptr<DB> db_;
  std::map<std::string, std::string> model_;
};

TEST_P(MultiGetTest, MatchesSequentialGets) {
  Open();
  const int kNumKeys = 3000;
  BuildMultiLevelDb(kNumKeys);

  Random rnd(77);
  ReadOptions options;
  for (int round = 0; round < 30; round++) {
    std::vector<std::string> batch;
    const int batch_size = 1 + rnd.Uniform(32);
    for (int i = 0; i < batch_size; i++) {
      switch (rnd.Uniform(4)) {
        case 0:  // any key, present or deleted
          batch.push_back(Key(rnd.Uniform(kNumKeys)));
          break;
        case 1:  // definitely absent
          batch.push_back("absent" + std::to_string(rnd.Next() % 1000));
          break;
        case 2:  // deleted key
          batch.push_back(Key(7 * rnd.Uniform(kNumKeys / 7)));
          break;
        default:  // duplicate of an earlier batch entry
          batch.push_back(batch.empty() ? Key(0) : batch[rnd.Uniform(
                                              batch.size())]);
          break;
      }
    }
    CheckBatchMatchesGets(options, batch);
  }
}

TEST_P(MultiGetTest, EmptyAndDegenerateBatches) {
  Open();
  BuildMultiLevelDb(200);

  std::vector<std::string> values;
  std::vector<Status> statuses =
      db_->MultiGet(ReadOptions(), {}, &values);
  EXPECT_TRUE(statuses.empty());
  EXPECT_TRUE(values.empty());

  // Single-key batch behaves exactly like Get.
  CheckBatchMatchesGets(ReadOptions(), {Key(5)});
  // All-duplicate batch.
  CheckBatchMatchesGets(ReadOptions(), {Key(8), Key(8), Key(8)});
  // All-absent batch.
  CheckBatchMatchesGets(ReadOptions(), {"nope1", "nope2", "nope3"});
}

TEST_P(MultiGetTest, WholeDatabaseInOneBatch) {
  Open();
  const int kNumKeys = 1500;
  BuildMultiLevelDb(kNumKeys);

  std::vector<std::string> batch;
  for (int i = 0; i < kNumKeys; i++) {
    batch.push_back(Key(i));
  }
  std::vector<Slice> keys(batch.begin(), batch.end());
  std::vector<std::string> values;
  std::vector<Status> statuses = db_->MultiGet(ReadOptions(), keys, &values);
  ASSERT_EQ(batch.size(), statuses.size());
  for (int i = 0; i < kNumKeys; i++) {
    auto it = model_.find(batch[i]);
    if (it == model_.end()) {
      EXPECT_TRUE(statuses[i].IsNotFound()) << batch[i];
    } else {
      ASSERT_TRUE(statuses[i].ok()) << batch[i] << ": "
                                    << statuses[i].ToString();
      EXPECT_EQ(it->second, values[i]) << batch[i];
    }
  }
}

// --- Backward iteration over the same multi-level shape --------------------

class BackwardIterTest : public MultiGetTest {
 protected:
  // Walks the DB backwards and compares against the model, then does a
  // forward/backward zigzag around a few seek targets.
  void CheckBackwardIteration(const ReadOptions& options) {
    std::unique_ptr<Iterator> it(db_->NewIterator(options));

    it->SeekToLast();
    for (auto rit = model_.rbegin(); rit != model_.rend(); ++rit) {
      ASSERT_TRUE(it->Valid()) << "iterator ended early at " << rit->first;
      EXPECT_EQ(rit->first, it->key().ToString());
      EXPECT_EQ(rit->second, it->value().ToString());
      it->Prev();
    }
    EXPECT_FALSE(it->Valid()) << "iterator outlived the model";
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();

    // Seek into the middle, then walk backwards across level
    // boundaries, deletes, and overwrites.
    for (const std::string& target : {Key(700), Key(701), Key(1)}) {
      it->Seek(target);
      auto mit = model_.lower_bound(target);
      if (mit == model_.end()) {
        continue;
      }
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(mit->first, it->key().ToString());
      for (int steps = 0; steps < 50 && mit != model_.begin(); steps++) {
        --mit;
        it->Prev();
        ASSERT_TRUE(it->Valid());
        EXPECT_EQ(mit->first, it->key().ToString()) << "target " << target;
        EXPECT_EQ(mit->second, it->value().ToString());
      }
    }
  }
};

TEST_P(BackwardIterTest, PrevAcrossLevelsAndDeletes) {
  Open();
  BuildMultiLevelDb(1500);
  ReadOptions options;
  CheckBackwardIteration(options);
}

TEST_P(BackwardIterTest, PrevWithReadahead) {
  Open();
  BuildMultiLevelDb(1500);
  // Readahead prefetches forward; Prev must still be exact (the buffer
  // can only miss, never serve wrong bytes).
  ReadOptions options;
  options.readahead_size = 64 * 1024;
  CheckBackwardIteration(options);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MultiGetTest,
    ::testing::Values(ModeParam{EncryptionMode::kNone, "plain"},
                      ModeParam{EncryptionMode::kShield, "shield"}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return info.param.name;
    });

INSTANTIATE_TEST_SUITE_P(
    Modes, BackwardIterTest,
    ::testing::Values(ModeParam{EncryptionMode::kNone, "plain"},
                      ModeParam{EncryptionMode::kShield, "shield"}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace shield
