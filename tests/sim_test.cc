// Tests for the deterministic whole-cluster simulator (src/sim):
// virtual clock, seeded scheduler interleaving, bit-for-bit journal
// reproducibility, virtual-vs-wall time coverage, crash-recovery
// epochs, and the oracle's ability to catch a deliberately
// re-introduced stale-replica bug.

#include <chrono>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/sim_clock.h"
#include "sim/sim_harness.h"
#include "sim/sim_scheduler.h"
#include "util/clock.h"

namespace shield {
namespace sim {
namespace {

// --- SimClock --------------------------------------------------------

TEST(SimClockTest, SleepAdvancesVirtualTimeInstantly) {
  SimClock clock;
  const uint64_t start = clock.NowMicros();
  const auto wall_start = std::chrono::steady_clock::now();
  clock.SleepForMicros(3600ull * 1000 * 1000);  // one virtual hour
  const auto wall =
      std::chrono::steady_clock::now() - wall_start;
  EXPECT_EQ(start + 3600ull * 1000 * 1000, clock.NowMicros());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall).count(),
            1000);
  EXPECT_EQ(1u, clock.sleep_calls());
  EXPECT_EQ(3600ull * 1000 * 1000, clock.slept_micros());
}

TEST(SimClockTest, AdvanceToIsMonotonic) {
  SimClock clock(1000);
  clock.AdvanceTo(5000);
  EXPECT_EQ(5000u, clock.NowMicros());
  clock.AdvanceTo(2000);  // never backwards
  EXPECT_EQ(5000u, clock.NowMicros());
  clock.AdvanceBy(10);
  EXPECT_EQ(5010u, clock.NowMicros());
}

TEST(SimClockTest, InstallsProcessWideViaOverride) {
  SimClock clock;
  const uint64_t real_now = NowMicros();
  {
    ScopedClockOverride override(&clock);
    EXPECT_EQ(clock.NowMicros(), NowMicros());
    SleepForMicros(123456);  // free function routes to the sim clock
    EXPECT_EQ(clock.NowMicros(), NowMicros());
    EXPECT_EQ(123456u, clock.slept_micros());
  }
  // Restored: the real clock is close to where it was, not 2^40 off.
  const uint64_t after = NowMicros();
  EXPECT_LT(after - real_now, 60ull * 1000 * 1000);
}

// --- SimScheduler ----------------------------------------------------

TEST(SimSchedulerTest, ExecutesInTimestampOrder) {
  SimClock clock(0);
  SimScheduler sched(&clock, 1);
  std::vector<int> order;
  sched.ScheduleAt(300, "c", [&] { order.push_back(3); });
  sched.ScheduleAt(100, "a", [&] { order.push_back(1); });
  sched.ScheduleAt(200, "b", [&] { order.push_back(2); });
  EXPECT_EQ(3u, sched.pending());
  EXPECT_EQ(3u, sched.RunUntilIdle());
  EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
  EXPECT_EQ(300u, clock.NowMicros());  // clock followed the timestamps
}

TEST(SimSchedulerTest, SameInstantOrderIsSeededAndReproducible) {
  auto run = [](uint64_t seed) {
    SimClock clock(0);
    SimScheduler sched(&clock, seed);
    for (int i = 0; i < 40; i++) {
      sched.ScheduleAt(500, "t" + std::to_string(i), [] {});
    }
    sched.RunUntilIdle();
    return sched.executed_labels();
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);  // same seed → identical interleaving
  EXPECT_NE(a, c);  // different seed → different shuffle (40! orders)
}

TEST(SimSchedulerTest, TasksCanScheduleMoreTasks) {
  SimClock clock(0);
  SimScheduler sched(&clock, 1);
  std::vector<std::string> order;
  sched.ScheduleAt(100, "outer", [&] {
    order.push_back("outer");
    sched.ScheduleAfter(50, "inner", [&] { order.push_back("inner"); });
  });
  EXPECT_EQ(2u, sched.RunUntilIdle());
  EXPECT_EQ((std::vector<std::string>{"outer", "inner"}), order);
  EXPECT_EQ(150u, clock.NowMicros());
}

TEST(SimSchedulerTest, RunForStopsAtTheLimit) {
  SimClock clock(0);
  SimScheduler sched(&clock, 1);
  int ran = 0;
  sched.ScheduleAt(100, "in-window", [&] { ran++; });
  sched.ScheduleAt(5000, "after-window", [&] { ran++; });
  EXPECT_EQ(1u, sched.RunFor(1000));
  EXPECT_EQ(1, ran);
  EXPECT_EQ(1000u, clock.NowMicros());  // idle-advanced to the limit
  EXPECT_EQ(1u, sched.pending());
}

// --- Fault profile parsing ------------------------------------------

TEST(FaultProfileTest, ParseRoundTrips) {
  for (auto p : {FaultProfile::kNone, FaultProfile::kStorage,
                 FaultProfile::kNetwork, FaultProfile::kMixed}) {
    FaultProfile parsed;
    ASSERT_TRUE(ParseFaultProfile(FaultProfileName(p), &parsed));
    EXPECT_EQ(p, parsed);
  }
  FaultProfile parsed;
  EXPECT_FALSE(ParseFaultProfile("bogus", &parsed));
}

// --- Whole-cluster simulation ---------------------------------------

SimConfig QuickConfig(uint64_t seed, FaultProfile profile,
                      uint64_t duration_sec) {
  SimConfig config;
  config.seed = seed;
  config.profile = profile;
  config.duration_sec = duration_sec;
  config.ops_per_epoch = 60;  // keep unit-test runs snappy
  return config;
}

TEST(SimHarnessTest, CleanRunPassesAllChecks) {
  SimReport r = RunSimulation(QuickConfig(1, FaultProfile::kNone, 20));
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.epochs_run, 4u);
  EXPECT_GT(r.ops_acknowledged, 0u);
  EXPECT_GT(r.oracle_checks, 0u);
  EXPECT_EQ(0u, r.faults_injected);
  EXPECT_FALSE(r.journal.empty());
}

TEST(SimHarnessTest, SameSeedProducesBitForBitIdenticalJournal) {
  const SimConfig config = QuickConfig(9, FaultProfile::kMixed, 40);
  SimReport a = RunSimulation(config);
  SimReport b = RunSimulation(config);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  // The determinism contract: logical event sequence, op counts,
  // oracle verdicts and content hashes all replay exactly.
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.model_hash, b.model_hash);
  EXPECT_EQ(a.ops_acknowledged, b.ops_acknowledged);
  EXPECT_EQ(a.oracle_checks, b.oracle_checks);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(SimHarnessTest, DifferentSeedsDiverge) {
  SimReport a = RunSimulation(QuickConfig(100, FaultProfile::kMixed, 25));
  SimReport b = RunSimulation(QuickConfig(101, FaultProfile::kMixed, 25));
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_NE(a.journal, b.journal);
  EXPECT_NE(a.model_hash, b.model_hash);
}

TEST(SimHarnessTest, StorageAndNetworkProfilesPass) {
  SimReport s = RunSimulation(QuickConfig(3, FaultProfile::kStorage, 30));
  EXPECT_TRUE(s.ok) << s.failure;
  EXPECT_GT(s.faults_injected, 0u);
  SimReport n = RunSimulation(QuickConfig(3, FaultProfile::kNetwork, 30));
  EXPECT_TRUE(n.ok) << n.failure;
  EXPECT_GT(n.faults_injected, 0u);
  EXPECT_EQ(0u, n.crashes);  // crashes only run under storage/mixed
}

TEST(SimHarnessTest, CrashRecoveryEpochsPass) {
  SimConfig config = QuickConfig(5, FaultProfile::kStorage, 40);
  config.crash_every = 2;
  SimReport r = RunSimulation(config);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.crashes, 2u);
  // Every crash ran a prefix-cut oracle check, journaled as sim_crash.
  EXPECT_NE(std::string::npos, r.journal.find("\"event\":\"sim_crash\""));
}

// The acceptance benchmark from the issue: a faulted run covering at
// least 10 simulated minutes must finish in under a minute of wall
// time (release builds do this in a few seconds; the bound leaves room
// for sanitizer builds).
TEST(SimHarnessTest, CoversTenSimulatedMinutesInUnderAMinute) {
  const auto wall_start = std::chrono::steady_clock::now();
  SimReport r = RunSimulation(QuickConfig(13, FaultProfile::kMixed, 600));
  const auto wall = std::chrono::steady_clock::now() - wall_start;
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.virtual_micros, 600ull * 1000 * 1000);
  EXPECT_GT(r.crashes, 0u);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(wall).count(), 60);
}

// Regression test for the oracle itself: silently skipping replica
// catch-up (while reporting success) re-introduces the classic stale
// read-only-instance bug. The oracle MUST flag it — if this test
// fails, the oracle has gone blind, not the replicas.
TEST(SimHarnessTest, OracleCatchesInjectedStaleReplicaBug) {
  SimConfig config = QuickConfig(1, FaultProfile::kNone, 20);
  config.inject_stale_replica_bug = true;
  SimReport r = RunSimulation(config);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(std::string::npos, r.failure.find("replica"))
      << "failure should name a replica: " << r.failure;
  EXPECT_NE(std::string::npos, r.journal.find("\"ok\":false"));
  // And the exact same config reproduces the exact same failure.
  SimReport again = RunSimulation(config);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(r.failure, again.failure);
  EXPECT_EQ(r.journal, again.journal);
}

}  // namespace
}  // namespace sim
}  // namespace shield
