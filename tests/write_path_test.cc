// Write-path tests: group-commit semantics, failure atomicity, and
// recovery of the sharded memtable + pipelined encrypted WAL.
//
// The multi-writer stress cases are deliberately scheduled into the
// TSan CI job: the group-commit queue, the shard apply pool, and the
// keystream prefetcher are the only lock-heavy concurrency added by
// the parallel write path, and these tests drive all three at once.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/random.h"
#include "util/statistics.h"

namespace shield {
namespace {

std::string Prop(DB* db, const char* name) {
  std::string value;
  EXPECT_TRUE(db->GetProperty(name, &value)) << name;
  return value;
}

// A failed write must not advance the published sequence: sequence
// numbers are allocated inside the write path, and publishing one for
// a batch that never landed would stand for data that does not exist
// (snapshots and replicas key off it).
TEST(WritePathTest, FailedWriteDoesNotAdvanceSequence) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = 7;
  fopts.write_error_probability = 1.0;
  fopts.permanent_error_ratio = 1.0;
  FaultInjectionEnv fenv(base.get(), fopts);
  fenv.SetFaultsEnabled(false);

  Options options;
  options.env = &fenv;
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "b", "2").ok());
  const std::string seq_before = Prop(db.get(), "shield.last-sequence");

  fenv.SetFaultsEnabled(true);
  WriteBatch batch;
  batch.Put("c", "3");
  batch.Put("d", "4");
  ASSERT_FALSE(db->Write(WriteOptions(), &batch).ok());
  fenv.SetFaultsEnabled(false);

  EXPECT_EQ(seq_before, Prop(db.get(), "shield.last-sequence"));
  std::string got;
  EXPECT_TRUE(db->Get(ReadOptions(), "c", &got).IsNotFound());
  EXPECT_TRUE(db->Get(ReadOptions(), "d", &got).IsNotFound());
}

// With the memtable applied before the WAL sync, a corrupt batch must
// be rejected up front: nothing from it may become visible and the
// sequence must not move (all-or-nothing at group granularity).
TEST(WritePathTest, CorruptBatchIsAllOrNothing) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  const std::string seq_before = Prop(db.get(), "shield.last-sequence");

  // A batch whose header claims more records than its body carries.
  WriteBatch good;
  good.Put("x", "1");
  good.Put("y", "2");
  std::string rep = good.Contents().ToString();
  WriteBatch corrupt;
  corrupt.SetContents(Slice(rep.data(), rep.size() - 3));
  ASSERT_FALSE(db->Write(WriteOptions(), &corrupt).ok());

  EXPECT_EQ(seq_before, Prop(db.get(), "shield.last-sequence"));
  std::string got;
  EXPECT_TRUE(db->Get(ReadOptions(), "x", &got).IsNotFound());
  EXPECT_TRUE(db->Get(ReadOptions(), "y", &got).IsNotFound());
  // The writer is not poisoned by the rejected batch.
  EXPECT_TRUE(db->Put(WriteOptions(), "z", "3").ok());
  EXPECT_TRUE(db->Get(ReadOptions(), "z", &got).ok());
}

// After a background error taints the DB, the empty-memtable Flush
// fast path must report it instead of OK: callers use Flush() as a
// durability barrier, and "nothing to flush" is not the same as
// "everything you wrote is safe". A faulted manual compaction is the
// one failure that leaves the memtable empty while escalating a
// permanent error into the handler, so it drives the taint here.
TEST(WritePathTest, EmptyFlushReportsBackgroundError) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = 11;
  fopts.write_error_probability = 1.0;
  fopts.permanent_error_ratio = 1.0;
  FaultInjectionEnv fenv(base.get(), fopts);
  fenv.SetFaultsEnabled(false);

  Options options;
  options.env = &fenv;
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  ASSERT_TRUE(db->Flush().ok());  // clean DB: empty fast path is OK

  // Land one SST so the compaction below has an input to rewrite.
  ASSERT_TRUE(db->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db->Flush().ok());

  fenv.SetFaultsEnabled(true);
  ASSERT_FALSE(db->CompactRange(nullptr, nullptr).ok());
  fenv.SetFaultsEnabled(false);

  // The compaction consumed no writes, so the memtable is still
  // empty — but the DB is tainted and Flush must say so.
  EXPECT_FALSE(db->Flush().ok());
}

// Sharded-memtable recovery: a crash drops unsynced WAL bytes; on
// reopen every synced write must be present no matter which shard it
// hashed to, and the recovered DB must keep accepting writes.
TEST(WritePathTest, ShardedMemtableCrashRecovery) {
  auto base = NewMemEnv();
  FaultInjectionOptions fopts;
  fopts.seed = 13;
  fopts.torn_write_probability = 0.0;
  FaultInjectionEnv fenv(base.get(), fopts);

  Options options;
  options.env = &fenv;
  options.memtable_shards = 4;
  options.write_buffer_size = 1 << 20;  // keep everything in the WAL

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);
  EXPECT_EQ("4", Prop(db.get(), "shield.memtable-shards"));

  WriteOptions synced;
  synced.sync = true;
  std::map<std::string, std::string> synced_model;
  Random rnd(13);
  for (int i = 0; i < 400; i++) {
    const std::string key = "key" + std::to_string(rnd.Uniform(200));
    const std::string value = "v" + std::to_string(i);
    if (i % 4 == 0) {
      ASSERT_TRUE(db->Put(synced, key, value).ok());
      synced_model[key] = value;
    } else {
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      // Unsynced writes after a synced one for the same key make the
      // synced model a lower bound only; drop the key from the strict
      // check (the crash may or may not keep the newer value).
      synced_model.erase(key);
    }
  }

  db.reset();  // release file handles; crash semantics come from fenv
  ASSERT_TRUE(fenv.SimulateCrash().ok());

  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  db.reset(raw);
  for (const auto& [key, value] : synced_model) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got) << key;
  }
  // Recovery rebuilt the sharded memtable; it must still flush into
  // one coherent SST and serve reads from it.
  ASSERT_TRUE(db->Put(WriteOptions(), "post-crash", "ok").ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string got;
  ASSERT_TRUE(db->Get(ReadOptions(), "post-crash", &got).ok());
  EXPECT_EQ("ok", got);
}

// Seeded 8-writer stress over the full parallel path: sharded
// memtable, shard apply pool, group commit with early release, and
// (encrypted) WAL. Run under TSan in CI; the assertions here are the
// correctness floor, the data-race coverage is the point.
TEST(WritePathTest, MultiWriterGroupCommitStress) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.memtable_shards = 4;
  options.statistics = CreateDBStatistics();
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = std::make_shared<LocalKds>();
  options.encryption.wal_pipeline_window = 64 * 1024;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Random rnd(/*seed=*/1000 + t);
      for (int i = 0; i < kOpsPerThread; i++) {
        WriteBatch batch;
        // Private key: always verifiable. Shared key: contended
        // across threads and shards.
        batch.Put("t" + std::to_string(t) + "-k" + std::to_string(i),
                  "v" + std::to_string(i));
        batch.Put("shared-" + std::to_string(rnd.Uniform(32)),
                  "t" + std::to_string(t));
        WriteOptions wopts;
        wopts.sync = (i % 50 == 0);
        if (!db->Write(wopts, &batch).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(0, failures.load());

  // Every acknowledged private key is visible.
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kOpsPerThread; i += 37) {
      const std::string key =
          "t" + std::to_string(t) + "-k" + std::to_string(i);
      std::string got;
      ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
      EXPECT_EQ("v" + std::to_string(i), got);
    }
  }

  // The group-commit tickers are wired: every write belongs to some
  // group and groups cover all acknowledged batches.
  const uint64_t groups =
      options.statistics->GetTickerCount(Tickers::kLsmWriteGroups);
  const uint64_t grouped =
      options.statistics->GetTickerCount(Tickers::kLsmWriteGroupSize);
  EXPECT_GT(groups, 0u);
  EXPECT_GE(grouped, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GE(grouped, groups);

  // Drain the sharded memtable through the merging flush and re-check
  // through the SST path.
  ASSERT_TRUE(db->Flush().ok());
  for (int t = 0; t < kThreads; t++) {
    const std::string key = "t" + std::to_string(t) + "-k0";
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ("v0", got);
  }
}

}  // namespace
}  // namespace shield
