// Tests for the tracing subsystem (util/trace.h, env/trace_env.h) and
// its integration with DB::StartTrace/EndTrace: record round-trips,
// span parenting, seeded-workload reproducibility, error tagging under
// injected faults, and damage-tolerant reading of truncated traces.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/coding.h"
#include "util/trace.h"

namespace shield {
namespace {

// Builds a syntactically valid trace file header (magic | version |
// start time) that hand-encoded records can be appended to.
std::string TraceHeader(uint64_t start_micros) {
  std::string out(kTraceMagic, kTraceMagicSize);
  PutFixed32(&out, kTraceFormatVersion);
  PutFixed64(&out, start_micros);
  return out;
}

SpanRecord MakeRecord(uint64_t id, SpanType type, const std::string& label) {
  SpanRecord rec;
  rec.span_id = id;
  rec.parent_id = id / 2;
  rec.thread_id = 7;
  rec.start_micros = 1000 + id;
  rec.duration_micros = 10 * id;
  rec.a = id * 100;
  rec.b = id * 200;
  rec.type = type;
  rec.flags = (id % 2 == 0) ? kSpanFlagError : 0;
  rec.aux = static_cast<uint8_t>(id);
  rec.label = label;
  return rec;
}

void ExpectRecordsEqual(const SpanRecord& want, const SpanRecord& got) {
  EXPECT_EQ(want.span_id, got.span_id);
  EXPECT_EQ(want.parent_id, got.parent_id);
  EXPECT_EQ(want.thread_id, got.thread_id);
  EXPECT_EQ(want.start_micros, got.start_micros);
  EXPECT_EQ(want.duration_micros, got.duration_micros);
  EXPECT_EQ(want.a, got.a);
  EXPECT_EQ(want.b, got.b);
  EXPECT_EQ(want.type, got.type);
  EXPECT_EQ(want.flags, got.flags);
  EXPECT_EQ(want.aux, got.aux);
  EXPECT_EQ(want.label, got.label);
}

TEST(TraceEncodingTest, RoundTripThroughReader) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::string contents = TraceHeader(123456);
  std::vector<SpanRecord> want;
  want.push_back(MakeRecord(1, SpanType::kDbGet, ""));
  want.push_back(MakeRecord(2, SpanType::kIoRead, "000005.sst"));
  want.push_back(MakeRecord(3, SpanType::kChunkShard, ""));
  want.push_back(MakeRecord(4, SpanType::kKdsRpc, "dek"));
  for (const SpanRecord& rec : want) {
    EncodeSpanRecord(rec, &contents);
  }
  ASSERT_TRUE(WriteStringToFile(env.get(), contents, "/t", false).ok());

  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(env.get(), "/t", &reader).ok());
  EXPECT_EQ(123456u, reader->trace_start_micros());
  SpanRecord got;
  for (const SpanRecord& rec : want) {
    ASSERT_TRUE(reader->Next(&got));
    ExpectRecordsEqual(rec, got);
  }
  EXPECT_FALSE(reader->Next(&got));
  EXPECT_FALSE(reader->truncated());
  EXPECT_TRUE(reader->parse_status().ok());
  EXPECT_EQ(want.size(), reader->records_read());
}

TEST(TraceEncodingTest, OpenRejectsNonTraceFiles) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<TraceReader> reader;
  EXPECT_FALSE(TraceReader::Open(env.get(), "/missing", &reader).ok());

  ASSERT_TRUE(WriteStringToFile(env.get(), "not a trace at all", "/bad",
                                false).ok());
  EXPECT_FALSE(TraceReader::Open(env.get(), "/bad", &reader).ok());

  // Magic alone, header cut short.
  ASSERT_TRUE(WriteStringToFile(env.get(), Slice(kTraceMagic, kTraceMagicSize),
                                "/short", false).ok());
  EXPECT_FALSE(TraceReader::Open(env.get(), "/short", &reader).ok());
}

TEST(TracerTest, RecordsSpansWithParenting) {
  std::unique_ptr<Env> env(NewMemEnv());
  Tracer tracer;
  ASSERT_TRUE(tracer.Start(env.get(), "/t", TraceOptions()).ok());
  EXPECT_TRUE(Tracer::AnyActive());

  uint64_t outer_id = 0;
  uint64_t captured_parent = 0;
  {
    TraceSpan outer(SpanType::kDbGet, Slice("op"));
    outer.SetArgs(11, 22);
    outer_id = outer.id();
    ASSERT_NE(0u, outer_id);
    EXPECT_EQ(outer_id, Tracer::CurrentSpanId());
    {
      TraceSpan inner(SpanType::kIoRead, Slice("000001.sst"));
      inner.SetError();
    }
    // Simulates the chunk-pool pattern: capture the parent id, then
    // open the child with it as an explicit parent.
    captured_parent = Tracer::CurrentSpanId();
    { TraceSpan hopped(SpanType::kChunkShard, captured_parent, Slice()); }
  }
  { TraceSpan root(SpanType::kDbWrite); (void)root; }

  ASSERT_TRUE(tracer.Stop().ok());
  EXPECT_FALSE(Tracer::AnyActive());
  EXPECT_EQ(4u, tracer.spans_recorded());

  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(env.get(), "/t", &reader).ok());
  std::map<uint64_t, SpanRecord> by_id;
  std::map<SpanType, SpanRecord> by_type;
  SpanRecord rec;
  while (reader->Next(&rec)) {
    by_id[rec.span_id] = rec;
    by_type[rec.type] = rec;
  }
  ASSERT_EQ(4u, by_id.size());

  const SpanRecord& outer = by_type[SpanType::kDbGet];
  EXPECT_EQ(outer_id, outer.span_id);
  EXPECT_EQ(0u, outer.parent_id);
  EXPECT_EQ(11u, outer.a);
  EXPECT_EQ(22u, outer.b);
  EXPECT_EQ("op", outer.label);

  const SpanRecord& inner = by_type[SpanType::kIoRead];
  EXPECT_EQ(outer_id, inner.parent_id);  // TLS auto-parenting
  EXPECT_EQ(kSpanFlagError, inner.flags & kSpanFlagError);
  EXPECT_EQ("000001.sst", inner.label);

  EXPECT_EQ(outer_id, captured_parent);
  EXPECT_EQ(outer_id, by_type[SpanType::kChunkShard].parent_id);
  EXPECT_EQ(0u, by_type[SpanType::kDbWrite].parent_id);
}

TEST(TracerTest, SecondTracerIsBusyAndSpansAreFreeWhenIdle) {
  std::unique_ptr<Env> env(NewMemEnv());
  EXPECT_FALSE(Tracer::AnyActive());
  {
    // Spans outside any trace are inert: no ids, no recording.
    TraceSpan idle(SpanType::kDbGet);
    EXPECT_FALSE(idle.active());
    EXPECT_EQ(0u, idle.id());
  }
  Tracer first;
  ASSERT_TRUE(first.Start(env.get(), "/a", TraceOptions()).ok());
  Tracer second;
  EXPECT_TRUE(second.Start(env.get(), "/b", TraceOptions()).IsBusy());
  ASSERT_TRUE(first.Stop().ok());
  // Stop released the global slot; a new trace can start.
  ASSERT_TRUE(second.Start(env.get(), "/b", TraceOptions()).ok());
  ASSERT_TRUE(second.Stop().ok());
}

// --- DB integration ---------------------------------------------------------

// Runs one fixed seeded workload under tracing and returns the span
// count per type. Used twice to check reproducibility.
std::map<SpanType, uint64_t> TracedWorkloadCounts(Env* env,
                                                  const std::string& dbname,
                                                  const std::string& trace) {
  Options options;
  options.env = env;
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = std::make_shared<LocalKds>();
  DB* raw = nullptr;
  EXPECT_TRUE(DB::Open(options, dbname, &raw).ok());
  std::unique_ptr<DB> db(raw);

  EXPECT_TRUE(db->StartTrace(TraceOptions(), trace).ok());
  for (int i = 0; i < 50; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    EXPECT_TRUE(db->Put(WriteOptions(), key, std::string(100, 'v')).ok());
  }
  EXPECT_TRUE(db->Flush().ok());
  std::string value;
  for (int i = 0; i < 20; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    EXPECT_TRUE(db->Get(ReadOptions(), key, &value).ok());
  }
  std::vector<std::string> values;
  db->MultiGet(ReadOptions(), {"key0001", "key0030", "nope"}, &values);
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    it->Seek("key0025");
    EXPECT_TRUE(it->Valid());
    it->Seek("key0040");
  }
  EXPECT_TRUE(db->EndTrace().ok());
  db.reset();

  std::unique_ptr<TraceReader> reader;
  EXPECT_TRUE(TraceReader::Open(env, trace, &reader).ok());
  std::map<SpanType, uint64_t> counts;
  SpanRecord rec;
  while (reader->Next(&rec)) {
    counts[rec.type]++;
  }
  EXPECT_FALSE(reader->truncated());
  return counts;
}

TEST(DBTraceTest, SeededWorkloadSpanCountsReproduce) {
  std::unique_ptr<Env> env1(NewMemEnv());
  std::unique_ptr<Env> env2(NewMemEnv());
  const auto run1 = TracedWorkloadCounts(env1.get(), "/db", "/trace");
  const auto run2 = TracedWorkloadCounts(env2.get(), "/db", "/trace");

  // Every stage the workload drives deterministically must reproduce
  // exactly; Flush() is synchronous, so the flush job is included.
  for (SpanType type :
       {SpanType::kDbWrite, SpanType::kWalAppend, SpanType::kDbGet,
        SpanType::kDbMultiGet, SpanType::kDbSeek, SpanType::kDbFlush,
        SpanType::kFlushJob}) {
    EXPECT_EQ(run1.at(type), run2.at(type)) << SpanTypeName(type);
  }
  // 50 Puts, plus possibly Flush's internal memtable-switch write.
  EXPECT_GE(run1.at(SpanType::kDbWrite), 50u);
  EXPECT_EQ(20u, run1.at(SpanType::kDbGet));
  EXPECT_EQ(1u, run1.at(SpanType::kDbMultiGet));
  EXPECT_EQ(2u, run1.at(SpanType::kDbSeek));
  EXPECT_EQ(1u, run1.at(SpanType::kFlushJob));

  // The full pipeline must be represented: crypto, key plane, and
  // physical I/O spans all appear in the trace.
  EXPECT_GT(run1.at(SpanType::kFileEncrypt), 0u);
  EXPECT_GT(run1.at(SpanType::kIoWrite), 0u);
  EXPECT_GT(run1.at(SpanType::kIoSync), 0u);
  EXPECT_GT(run1.count(SpanType::kFileDecrypt) ? run1.at(SpanType::kFileDecrypt)
                                               : 0u,
            0u);
}

TEST(DBTraceTest, SecondStartTraceIsBusy) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);
  ASSERT_TRUE(db->StartTrace(TraceOptions(), "/trace").ok());
  EXPECT_TRUE(db->StartTrace(TraceOptions(), "/trace2").IsBusy());
  EXPECT_TRUE(db->EndTrace().ok());
  // EndTrace with no active trace reports the absence, not a crash.
  EXPECT_FALSE(db->EndTrace().ok());
}

TEST(DBTraceTest, FaultInjectedReadsProduceErrorSpans) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionOptions fopts;
  fopts.seed = 42;
  FaultInjectionEnv fault_env(base.get(), fopts);
  fault_env.SetFaultsEnabled(false);

  Options options;
  options.env = &fault_env;
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 20; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    ASSERT_TRUE(db->Put(WriteOptions(), key, std::string(50, 'v')).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // Reopen so the first Get must hit the SST on the medium rather than
  // any block cached while the table was built.
  db.reset();
  raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  db.reset(raw);

  // Fail every SST read, permanently. The trace file itself is kOther,
  // so tracing keeps working while data reads fail underneath it.
  fopts.read_error_probability = 1.0;
  fopts.permanent_error_ratio = 1.0;
  fopts.fault_kind_mask = FileKindBit(FileKind::kSst);
  fault_env.SetOptions(fopts);

  ASSERT_TRUE(db->StartTrace(TraceOptions(), "/trace").ok());
  fault_env.SetFaultsEnabled(true);
  std::string value;
  Status s = db->Get(ReadOptions(), "key0003", &value);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsNotFound());
  fault_env.SetFaultsEnabled(false);
  ASSERT_TRUE(db->EndTrace().ok());

  std::unique_ptr<TraceReader> reader;
  ASSERT_TRUE(TraceReader::Open(&fault_env, "/trace", &reader).ok());
  uint64_t io_read_errors = 0;
  uint64_t db_get_errors = 0;
  SpanRecord rec;
  while (reader->Next(&rec)) {
    if ((rec.flags & kSpanFlagError) == 0) {
      continue;
    }
    if (rec.type == SpanType::kIoRead) {
      io_read_errors++;
    } else if (rec.type == SpanType::kDbGet) {
      db_get_errors++;
    }
  }
  // The injected failure is visible both at the physical layer and on
  // the public op that absorbed it.
  EXPECT_GT(io_read_errors, 0u);
  EXPECT_GT(db_get_errors, 0u);
}

// --- Damage tolerance -------------------------------------------------------

// Produces a well-formed trace with `n` spans and returns its bytes.
std::string RecordTrace(Env* env, int n) {
  Tracer tracer;
  EXPECT_TRUE(tracer.Start(env, "/t", TraceOptions()).ok());
  for (int i = 0; i < n; i++) {
    TraceSpan span(SpanType::kIoRead, Slice("000001.sst"));
    span.SetArgs(i * 4096, 4096);
  }
  EXPECT_TRUE(tracer.Stop().ok());
  std::string contents;
  EXPECT_TRUE(ReadFileToString(env, "/t", &contents).ok());
  return contents;
}

uint64_t CountValidPrefix(Env* env, const std::string& contents,
                          bool* truncated) {
  EXPECT_TRUE(WriteStringToFile(env, contents, "/damaged", false).ok());
  std::unique_ptr<TraceReader> reader;
  EXPECT_TRUE(TraceReader::Open(env, "/damaged", &reader).ok());
  SpanRecord rec;
  uint64_t count = 0;
  while (reader->Next(&rec)) {
    EXPECT_EQ(SpanType::kIoRead, rec.type);
    count++;
  }
  *truncated = reader->truncated();
  return count;
}

TEST(TraceDamageTest, TruncatedTraceYieldsValidPrefix) {
  std::unique_ptr<Env> env(NewMemEnv());
  const int kSpans = 32;
  const std::string full = RecordTrace(env.get(), kSpans);
  const size_t header = kTraceMagicSize + 4 + 8;
  ASSERT_GT(full.size(), header);

  bool truncated = false;
  // Intact file: everything, no damage flag.
  EXPECT_EQ(static_cast<uint64_t>(kSpans),
            CountValidPrefix(env.get(), full, &truncated));
  EXPECT_FALSE(truncated);

  // Every record is identical here, so the file is header + kSpans
  // equal-sized records and any cut position has an exactly known
  // outcome: the complete records before it, and a damage flag unless
  // the cut falls precisely on a record boundary.
  ASSERT_EQ(0u, (full.size() - header) % kSpans);
  const size_t record_size = (full.size() - header) / kSpans;
  for (size_t cut = header + 1; cut < full.size(); cut += 13) {
    const uint64_t count =
        CountValidPrefix(env.get(), full.substr(0, cut), &truncated);
    EXPECT_EQ((cut - header) / record_size, count) << "cut=" << cut;
    EXPECT_EQ((cut - header) % record_size != 0, truncated) << "cut=" << cut;
  }

  // Header only: zero records, clean end (nothing was torn).
  EXPECT_EQ(0u, CountValidPrefix(env.get(), full.substr(0, header),
                                 &truncated));
  EXPECT_FALSE(truncated);
}

TEST(TraceDamageTest, CorruptPayloadStopsAtDamage) {
  std::unique_ptr<Env> env(NewMemEnv());
  const std::string full = RecordTrace(env.get(), 8);
  const size_t header = kTraceMagicSize + 4 + 8;

  // Flip a byte two-thirds in: the CRC of that record fails; every
  // record before it is still returned.
  std::string corrupt = full;
  const size_t victim = header + (full.size() - header) * 2 / 3;
  corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0xFF);
  bool truncated = false;
  const uint64_t count = CountValidPrefix(env.get(), corrupt, &truncated);
  EXPECT_LT(count, 8u);
  EXPECT_TRUE(truncated);

  // Garbage appended after a clean end is damage too, not records.
  std::string padded = full + std::string(11, '\xAB');
  const uint64_t padded_count =
      CountValidPrefix(env.get(), padded, &truncated);
  EXPECT_LE(padded_count, 8u);
  EXPECT_TRUE(truncated);
}

}  // namespace
}  // namespace shield
