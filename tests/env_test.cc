#include "env/env.h"
#include "env/io_stats.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace shield {
namespace {

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  EnvTest() : scratch_("env") {
    if (GetParam()) {
      owned_ = NewMemEnv();
      env_ = owned_.get();
      root_ = "/db";
      env_->CreateDirIfMissing(root_);
    } else {
      env_ = Env::Default();
      root_ = scratch_.path();
    }
  }

  std::string P(const std::string& name) { return root_ + "/" + name; }

  test::ScratchDir scratch_;
  std::unique_ptr<Env> owned_;
  Env* env_;
  std::string root_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteStringToFile(env_, "hello world", P("f"), true).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, P("f"), &contents).ok());
  EXPECT_EQ("hello world", contents);
}

TEST_P(EnvTest, FileExistsAndRemove) {
  EXPECT_FALSE(env_->FileExists(P("g")));
  ASSERT_TRUE(WriteStringToFile(env_, "x", P("g"), false).ok());
  EXPECT_TRUE(env_->FileExists(P("g")));
  ASSERT_TRUE(env_->RemoveFile(P("g")).ok());
  EXPECT_FALSE(env_->FileExists(P("g")));
  EXPECT_FALSE(env_->RemoveFile(P("g")).ok());
}

TEST_P(EnvTest, GetFileSize) {
  ASSERT_TRUE(WriteStringToFile(env_, std::string(12345, 'z'), P("big"),
                                false)
                  .ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(P("big"), &size).ok());
  EXPECT_EQ(12345u, size);
}

TEST_P(EnvTest, Rename) {
  ASSERT_TRUE(WriteStringToFile(env_, "data", P("a"), false).ok());
  ASSERT_TRUE(env_->RenameFile(P("a"), P("b")).ok());
  EXPECT_FALSE(env_->FileExists(P("a")));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, P("b"), &contents).ok());
  EXPECT_EQ("data", contents);
}

TEST_P(EnvTest, GetChildren) {
  ASSERT_TRUE(WriteStringToFile(env_, "1", P("one"), false).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "2", P("two"), false).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(root_, &children).ok());
  EXPECT_NE(children.end(),
            std::find(children.begin(), children.end(), "one"));
  EXPECT_NE(children.end(),
            std::find(children.begin(), children.end(), "two"));
}

TEST_P(EnvTest, RandomAccessRead) {
  ASSERT_TRUE(
      WriteStringToFile(env_, "0123456789abcdef", P("ra"), false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(P("ra"), &file).ok());

  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(4, 6, &result, scratch).ok());
  EXPECT_EQ("456789", result.ToString());

  // Read past EOF returns short.
  ASSERT_TRUE(file->Read(14, 10, &result, scratch).ok());
  EXPECT_EQ("ef", result.ToString());

  uint64_t size;
  ASSERT_TRUE(file->Size(&size).ok());
  EXPECT_EQ(16u, size);
}

TEST_P(EnvTest, SequentialReadAndSkip) {
  ASSERT_TRUE(
      WriteStringToFile(env_, "0123456789", P("seq"), false).ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(P("seq"), &file).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ("012", result.ToString());
  ASSERT_TRUE(file->Skip(4).ok());
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ("789", result.ToString());
  // EOF.
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(P("nope"), &file);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

TEST_P(EnvTest, OverwriteTruncates) {
  ASSERT_TRUE(WriteStringToFile(env_, "long-old-content", P("t"), false).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "new", P("t"), false).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, P("t"), &contents).ok());
  EXPECT_EQ("new", contents);
}

TEST_P(EnvTest, LargeAppends) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(P("large"), &file).ok());
  std::string chunk(100 * 1024, 'q');
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(file->Append(chunk).ok());
  }
  EXPECT_EQ(5 * chunk.size(), file->GetFileSize());
  ASSERT_TRUE(file->Close().ok());
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(P("large"), &size).ok());
  EXPECT_EQ(5 * chunk.size(), size);
}

INSTANTIATE_TEST_SUITE_P(PosixAndMem, EnvTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

// --- File classification & I/O accounting --------------------------------

TEST(IoStatsTest, ClassifyFile) {
  EXPECT_EQ(FileKind::kWal, ClassifyFile("/db/000012.log"));
  EXPECT_EQ(FileKind::kSst, ClassifyFile("/db/000013.sst"));
  EXPECT_EQ(FileKind::kManifest, ClassifyFile("/db/MANIFEST-000001"));
  EXPECT_EQ(FileKind::kManifest, ClassifyFile("/db/CURRENT"));
  EXPECT_EQ(FileKind::kOther, ClassifyFile("/db/LOCK"));
  EXPECT_EQ(FileKind::kWal, ClassifyFile("000012.log"));
}

TEST(IoStatsTest, CountingEnvAccounting) {
  auto mem = NewMemEnv();
  IoStats stats;
  auto counting = NewCountingEnv(mem.get(), &stats);

  ASSERT_TRUE(WriteStringToFile(counting.get(), std::string(1000, 'w'),
                                "/db/000001.log", false)
                  .ok());
  EXPECT_EQ(1000u, stats.WriteBytes(FileKind::kWal));
  EXPECT_EQ(0u, stats.WriteBytes(FileKind::kSst));

  ASSERT_TRUE(WriteStringToFile(counting.get(), std::string(500, 's'),
                                "/db/000002.sst", false)
                  .ok());
  EXPECT_EQ(500u, stats.WriteBytes(FileKind::kSst));

  std::string contents;
  ASSERT_TRUE(
      ReadFileToString(counting.get(), "/db/000002.sst", &contents).ok());
  EXPECT_EQ(500u, stats.ReadBytes(FileKind::kSst));
  EXPECT_EQ(1500u, stats.TotalWriteBytes());
  EXPECT_EQ(500u, stats.TotalReadBytes());

  stats.Reset();
  EXPECT_EQ(0u, stats.TotalWriteBytes());
}

TEST(MemEnvTest, ConcurrentReadOfGrowingFile) {
  // A reader opened before appends must observe appended data — the
  // read-only-instance catch-up path depends on this.
  auto mem = NewMemEnv();
  std::unique_ptr<WritableFile> writer;
  ASSERT_TRUE(mem->NewWritableFile("/f", &writer).ok());
  ASSERT_TRUE(writer->Append("aaa").ok());

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(mem->NewRandomAccessFile("/f", &reader).ok());

  ASSERT_TRUE(writer->Append("bbb").ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(reader->Read(0, 6, &result, scratch).ok());
  EXPECT_EQ("aaabbb", result.ToString());
}

}  // namespace
}  // namespace shield
