// Tests for the background-error state machine: RetryPolicy edge
// cases, ErrorHandler classification/transition units, and DB-level
// auto-resume from injected background failures.

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "env/fault_injection_env.h"
#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/error_handler.h"
#include "test_util.h"
#include "util/clock.h"
#include "util/retry.h"

namespace shield {
namespace {

// --- RetryPolicy edge cases -------------------------------------------------

TEST(RetryPolicyTest, JitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.max_backoff_micros = 100 * 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  policy.seed = 42;

  RetryPolicy no_jitter = policy;
  no_jitter.jitter = 0;

  uint64_t rnd_state = policy.seed;
  uint64_t unused = 1;
  for (int attempt = 2; attempt <= 16; attempt++) {
    const uint64_t base = no_jitter.BackoffMicros(attempt, &unused);
    const uint64_t jittered = policy.BackoffMicros(attempt, &rnd_state);
    const uint64_t span = static_cast<uint64_t>(policy.jitter * base);
    EXPECT_GE(jittered, base - span) << "attempt " << attempt;
    EXPECT_LE(jittered, base) << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, JitterSequenceIsReproducibleFromSeed) {
  RetryPolicy policy;
  policy.jitter = 0.5;
  policy.seed = 1234;

  uint64_t state_a = policy.seed;
  uint64_t state_b = policy.seed;
  for (int attempt = 2; attempt <= 10; attempt++) {
    EXPECT_EQ(policy.BackoffMicros(attempt, &state_a),
              policy.BackoffMicros(attempt, &state_b));
  }
}

TEST(RetryPolicyTest, BackoffMonotoneNonDecreasingWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 500;
  policy.max_backoff_micros = 20 * 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0;

  uint64_t rnd_state = 1;
  uint64_t prev = 0;
  for (int attempt = 2; attempt <= 24; attempt++) {
    const uint64_t backoff = policy.BackoffMicros(attempt, &rnd_state);
    EXPECT_GE(backoff, prev) << "attempt " << attempt;
    EXPECT_LE(backoff, policy.max_backoff_micros);
    prev = backoff;
  }
  // The sequence saturates at the cap.
  EXPECT_EQ(prev, policy.max_backoff_micros);
}

TEST(RetryPolicyTest, ZeroMaxAttemptsSurfacesImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 0;

  int calls = 0;
  int attempts = 0;
  Status s = RunWithRetry(
      policy,
      [&] {
        calls++;
        return Status::TryAgain("still down");
      },
      &attempts);
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
}

// --- ErrorHandler units -----------------------------------------------------

// Counts listener callbacks; lives as long as the test.
class RecordingListener : public EventListener {
 public:
  void OnBackgroundError(BackgroundErrorReason reason, const Status& s,
                         ErrorSeverity severity) override {
    (void)reason;
    (void)s;
    errors++;
    last_severity = severity;
  }
  void OnErrorRecoveryBegin(BackgroundErrorReason, const Status&) override {
    recovery_begins++;
  }
  void OnErrorRecoveryEnd(const Status& final_status) override {
    recovery_ends++;
    if (final_status.ok()) {
      recovery_ends_ok++;
    }
  }
  void OnIntegrityViolation(const std::string& fname,
                            const Status&) override {
    integrity_violations++;
    last_violation_file = fname;
  }
  void OnFileRepaired(const std::string&, bool from_replica) override {
    repairs++;
    last_repair_from_replica = from_replica;
  }

  std::atomic<int> errors{0};
  std::atomic<int> recovery_begins{0};
  std::atomic<int> recovery_ends{0};
  std::atomic<int> recovery_ends_ok{0};
  std::atomic<int> integrity_violations{0};
  std::atomic<int> repairs{0};
  std::atomic<bool> last_repair_from_replica{false};
  ErrorSeverity last_severity = ErrorSeverity::kTransient;
  std::string last_violation_file;
};

RetryPolicy FastResumePolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 1000;
  policy.jitter = 0;
  return policy;
}

TEST(ErrorHandlerTest, ClassifySeverities) {
  const Status transient = Status::TryAgain("net blip");
  const Status io = Status::IOError("disk gone");
  const Status corrupt = Status::Corruption("bad block");

  // Transient within budget retries; once exhausted it degrades like a
  // permanent failure from the same source.
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kFlush, transient,
                                   /*retries_exhausted=*/false),
            ErrorSeverity::kTransient);
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kFlush, transient,
                                   /*retries_exhausted=*/true),
            ErrorSeverity::kSoft);
  // Discarded-output failures are soft; manifest damage and corruption
  // are hard regardless of source.
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kCompaction, io,
                                   false),
            ErrorSeverity::kSoft);
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kOffload, io, false),
            ErrorSeverity::kSoft);
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kManifestWrite, io,
                                   false),
            ErrorSeverity::kHard);
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kFlush, corrupt,
                                   false),
            ErrorSeverity::kHard);
  EXPECT_EQ(ErrorHandler::Classify(BackgroundErrorReason::kScrub, corrupt,
                                   false),
            ErrorSeverity::kHard);
}

TEST(ErrorHandlerTest, TransientFailureRecoversOnSuccess) {
  auto listener = std::make_shared<RecordingListener>();
  ErrorHandler handler;
  handler.Configure(FastResumePolicy(5), {listener});

  const uint64_t backoff =
      handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                                Status::TryAgain("blip"));
  EXPECT_GT(backoff, 0u);
  EXPECT_EQ(handler.state(), DbErrorState::kRecovering);
  EXPECT_TRUE(handler.ok());  // writes keep flowing during recovery
  EXPECT_TRUE(handler.reads_allowed());
  EXPECT_EQ(listener->recovery_begins, 1);

  handler.OnOperationSucceeded(BackgroundErrorReason::kFlush);
  EXPECT_EQ(handler.state(), DbErrorState::kActive);
  EXPECT_EQ(handler.recoveries(), 1u);
  EXPECT_EQ(listener->recovery_ends_ok, 1);
}

TEST(ErrorHandlerTest, RecoveryCompletesOnlyWhenAllReasonsClear) {
  ErrorHandler handler;
  handler.Configure(FastResumePolicy(5), {});

  handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                            Status::TryAgain("a"));
  handler.OnBackgroundError(BackgroundErrorReason::kCompaction,
                            Status::TryAgain("b"));
  EXPECT_EQ(handler.state(), DbErrorState::kRecovering);

  handler.OnOperationSucceeded(BackgroundErrorReason::kFlush);
  // Compaction is still mid-retry: recovery is not complete.
  EXPECT_EQ(handler.state(), DbErrorState::kRecovering);

  handler.OnOperationSucceeded(BackgroundErrorReason::kCompaction);
  EXPECT_EQ(handler.state(), DbErrorState::kActive);
  EXPECT_EQ(handler.recoveries(), 1u);
}

TEST(ErrorHandlerTest, ExhaustedRetriesEscalateToReadOnlyThenResume) {
  auto listener = std::make_shared<RecordingListener>();
  ErrorHandler handler;
  handler.Configure(FastResumePolicy(2), {listener});

  EXPECT_GT(handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                                      Status::TryAgain("1")),
            0u);
  EXPECT_GT(handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                                      Status::TryAgain("2")),
            0u);
  // Third consecutive failure exhausts the budget: escalation, no more
  // backoff.
  EXPECT_EQ(handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                                      Status::TryAgain("3")),
            0u);
  EXPECT_EQ(handler.state(), DbErrorState::kReadOnly);
  EXPECT_FALSE(handler.ok());
  EXPECT_TRUE(handler.reads_allowed());
  EXPECT_EQ(listener->recovery_ends - listener->recovery_ends_ok, 1);

  ASSERT_TRUE(handler.Resume().ok());
  EXPECT_EQ(handler.state(), DbErrorState::kActive);
  EXPECT_TRUE(handler.ok());
}

TEST(ErrorHandlerTest, ZeroMaxAttemptsEscalatesImmediately) {
  ErrorHandler handler;
  handler.Configure(FastResumePolicy(0), {});
  EXPECT_EQ(handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                                      Status::TryAgain("blip")),
            0u);
  EXPECT_EQ(handler.state(), DbErrorState::kReadOnly);
}

TEST(ErrorHandlerTest, HardErrorsHaltAndRefuseResume) {
  ErrorHandler handler;
  handler.Configure(FastResumePolicy(5), {});

  handler.OnBackgroundError(BackgroundErrorReason::kManifestWrite,
                            Status::IOError("torn manifest"));
  EXPECT_EQ(handler.state(), DbErrorState::kHalted);
  EXPECT_FALSE(handler.ok());
  EXPECT_FALSE(handler.reads_allowed());
  EXPECT_FALSE(handler.Resume().ok());

  ErrorHandler corrupt_handler;
  corrupt_handler.Configure(FastResumePolicy(5), {});
  corrupt_handler.OnBackgroundError(BackgroundErrorReason::kCompaction,
                                    Status::Corruption("bad block"));
  EXPECT_EQ(corrupt_handler.state(), DbErrorState::kHalted);
}

TEST(ErrorHandlerTest, HardErrorDominatesSoft) {
  ErrorHandler handler;
  handler.Configure(FastResumePolicy(0), {});
  handler.OnBackgroundError(BackgroundErrorReason::kFlush,
                            Status::IOError("disk"));
  EXPECT_EQ(handler.state(), DbErrorState::kReadOnly);
  handler.OnBackgroundError(BackgroundErrorReason::kManifestWrite,
                            Status::IOError("manifest"));
  EXPECT_EQ(handler.state(), DbErrorState::kHalted);
  // The first (sticky) error is preserved.
  EXPECT_NE(handler.bg_error().ToString().find("disk"), std::string::npos);
}

// --- DB-level auto-resume ---------------------------------------------------

std::string Property(DB* db, const std::string& name) {
  std::string value;
  EXPECT_TRUE(db->GetProperty("shield." + name, &value)) << name;
  return value;
}

bool WaitForProperty(DB* db, const std::string& name,
                     const std::string& expected, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; i++) {
    if (Property(db, name) == expected) {
      return true;
    }
    SleepForMicros(1000);
  }
  return false;
}

class DbErrorStateTest : public ::testing::Test {
 protected:
  DbErrorStateTest() : mem_env_(NewMemEnv()) {
    FaultInjectionOptions fopts;
    fopts.seed = 7;
    fault_env_ = std::make_unique<FaultInjectionEnv>(mem_env_.get(), fopts);
    fault_env_->SetFaultsEnabled(false);
    listener_ = std::make_shared<RecordingListener>();
  }

  Options MakeOptions() {
    Options options;
    options.env = fault_env_.get();
    options.write_buffer_size = 16 * 1024;
    options.listeners = {listener_};
    // Effectively unbounded transient retries with sub-millisecond
    // backoff: the DB stays in kRecovering until the test lifts the
    // fault, regardless of scheduling delays.
    RetryPolicy policy;
    policy.max_attempts = 1 << 20;
    policy.initial_backoff_micros = 200;
    policy.max_backoff_micros = 1000;
    policy.jitter = 0;
    options.background_error_resume_policy = policy;
    return options;
  }

  void Open(const Options& options) {
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    db_.reset(db);
  }

  // Only SST writes fail: WAL and MANIFEST stay healthy, so the
  // failure is attributed to the flush job itself.
  void InjectSstWriteFaults(double permanent_ratio) {
    FaultInjectionOptions fopts;
    fopts.seed = 7;
    fopts.write_error_probability = 1.0;
    fopts.permanent_error_ratio = permanent_ratio;
    fopts.fault_kind_mask = FileKindBit(FileKind::kSst);
    fault_env_->SetOptions(fopts);
    fault_env_->SetFaultsEnabled(true);
  }

  // Writes values until the memtable rolls over once and the failing
  // background flush records its first error. Exactly one rollover: a
  // second switch would block this thread behind the still-failing
  // flush, so the loop stops as soon as the error handler has seen the
  // failure (the arena rounds usage up to 4K blocks, making a byte
  // budget alone unreliable). Puts may legitimately fail once the DB
  // escalates to read-only.
  void FillPastWriteBuffer() {
    WriteOptions wo;
    const std::string value(1500, 'v');
    for (int i = 0; i < 15 && listener_->errors.load() == 0; i++) {
      if (!db_->Put(wo, "fill" + std::to_string(i), value).ok()) {
        break;
      }
      SleepForMicros(500);
    }
  }

  std::unique_ptr<Env> mem_env_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::shared_ptr<RecordingListener> listener_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbErrorStateTest, TransientFlushFailureAutoResumes) {
  Open(MakeOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "before", "fault").ok());

  InjectSstWriteFaults(/*permanent_ratio=*/0.0);
  FillPastWriteBuffer();
  ASSERT_TRUE(WaitForProperty(db_.get(), "error-handler-state", "recovering"))
      << Property(db_.get(), "error-handler-state");
  EXPECT_GE(listener_->recovery_begins, 1);

  // Writes keep flowing while the flush retries in the background.
  ASSERT_TRUE(db_->Put(WriteOptions(), "during", "recovery").ok());

  fault_env_->SetFaultsEnabled(false);
  ASSERT_TRUE(WaitForProperty(db_.get(), "error-handler-state", "active"))
      << Property(db_.get(), "background-error");
  db_->WaitForIdle();

  EXPECT_GE(listener_->recovery_ends_ok, 1);
  EXPECT_NE(Property(db_.get(), "error-recoveries"), "0");
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "before", &value).ok());
  EXPECT_EQ(value, "fault");
  ASSERT_TRUE(db_->Get(ReadOptions(), "during", &value).ok());
  EXPECT_EQ(value, "recovery");
  ASSERT_TRUE(db_->Flush().ok());
}

TEST_F(DbErrorStateTest, PermanentFlushFailureEntersReadOnlyUntilResume) {
  Open(MakeOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());

  InjectSstWriteFaults(/*permanent_ratio=*/1.0);
  FillPastWriteBuffer();
  ASSERT_TRUE(WaitForProperty(db_.get(), "error-handler-state", "read-only"))
      << Property(db_.get(), "error-handler-state");
  EXPECT_EQ(listener_->last_severity, ErrorSeverity::kSoft);

  // Reads still served; writes refused with the sticky error.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_FALSE(db_->Put(WriteOptions(), "k2", "v2").ok());

  fault_env_->SetFaultsEnabled(false);
  ASSERT_TRUE(db_->Resume().ok());
  EXPECT_EQ(Property(db_.get(), "error-handler-state"), "active");
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", "v2").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), "k2", &value).ok());
  EXPECT_EQ(value, "v2");
}

}  // namespace
}  // namespace shield
