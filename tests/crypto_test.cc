#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/cipher.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"
#include "crypto/sha256.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace crypto {
namespace {

using test::FromHex;
using test::ToHex;

// --- AES block cipher: FIPS-197 Appendix C vectors ---------------------

TEST(AesTest, Fips197Aes128) {
  Aes aes;
  ASSERT_TRUE(aes.Init(FromHex("000102030405060708090a0b0c0d0e0f")).ok());
  const std::string pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
  EXPECT_EQ("69c4e0d86a7b0430d8cdb78070b4c55a",
            ToHex(std::string(reinterpret_cast<char*>(ct), 16)));
}

TEST(AesTest, Fips197Aes192) {
  Aes aes;
  ASSERT_TRUE(
      aes.Init(FromHex("000102030405060708090a0b0c0d0e0f1011121314151617"))
          .ok());
  const std::string pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
  EXPECT_EQ("dda97ca4864cdfe06eaf70a0ec0d7191",
            ToHex(std::string(reinterpret_cast<char*>(ct), 16)));
}

TEST(AesTest, Fips197Aes256) {
  Aes aes;
  ASSERT_TRUE(
      aes.Init(FromHex("000102030405060708090a0b0c0d0e0f"
                       "101112131415161718191a1b1c1d1e1f"))
          .ok());
  const std::string pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(reinterpret_cast<const uint8_t*>(pt.data()), ct);
  EXPECT_EQ("8ea2b7ca516745bfeafc49904b496089",
            ToHex(std::string(reinterpret_cast<char*>(ct), 16)));
}

TEST(AesTest, RejectsBadKeySizes) {
  Aes aes;
  EXPECT_FALSE(aes.Init(std::string(15, 'k')).ok());
  EXPECT_FALSE(aes.Init(std::string(17, 'k')).ok());
  EXPECT_FALSE(aes.Init(std::string(0, 'k')).ok());
}

TEST(AesTest, InPlaceEncryption) {
  Aes aes;
  ASSERT_TRUE(aes.Init(FromHex("000102030405060708090a0b0c0d0e0f")).ok());
  std::string buf = FromHex("00112233445566778899aabbccddeeff");
  uint8_t* p = reinterpret_cast<uint8_t*>(buf.data());
  aes.EncryptBlock(p, p);  // aliased in/out
  EXPECT_EQ("69c4e0d86a7b0430d8cdb78070b4c55a", ToHex(buf));
}

// --- AES-CTR: NIST SP 800-38A F.5.1 -------------------------------------

TEST(AesCtrTest, Sp800_38aVectors) {
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(NewStreamCipher(
                  CipherKind::kAes128Ctr,
                  FromHex("2b7e151628aed2a6abf7158809cf4f3c"),
                  FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"), &cipher)
                  .ok());

  std::string pt =
      FromHex("6bc1bee22e409f96e93d7e117393172a"
              "ae2d8a571e03ac9c9eb76fac45af8e51"
              "30c81c46a35ce411e5fbc1191a0a52ef"
              "f69f2445df4f9b17ad2b417be66c3710");
  cipher->CryptAt(0, pt.data(), pt.size());
  EXPECT_EQ(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee",
      ToHex(pt));
}

TEST(AesCtrTest, OffsetAddressing) {
  // Encrypting bytes [16, 32) separately must equal the same range of
  // a single full-stream encryption (CTR seekability).
  const std::string key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const std::string nonce = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(
      NewStreamCipher(CipherKind::kAes128Ctr, key, nonce, &cipher).ok());

  std::string full(64, 'a');
  cipher->CryptAt(0, full.data(), full.size());

  std::string part(16, 'a');
  cipher->CryptAt(16, part.data(), part.size());
  EXPECT_EQ(full.substr(16, 16), part);

  // Unaligned offsets too.
  std::string odd(13, 'a');
  cipher->CryptAt(7, odd.data(), odd.size());
  EXPECT_EQ(full.substr(7, 13), odd);
}

TEST(AesCtrTest, RoundTrip) {
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(NewStreamCipher(CipherKind::kAes256Ctr,
                              SecureRandomString(32), SecureRandomString(16),
                              &cipher)
                  .ok());
  const std::string original = "the quick brown fox jumps over the lazy dog";
  std::string buf = original;
  cipher->CryptAt(1234, buf.data(), buf.size());
  EXPECT_NE(original, buf);
  cipher->CryptAt(1234, buf.data(), buf.size());
  EXPECT_EQ(original, buf);
}

TEST(AesCtrTest, CounterCarryAcrossBlockBoundary) {
  // A nonce of all 0xff must wrap cleanly when the counter increments.
  const std::string key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const std::string nonce(16, '\xff');
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(
      NewStreamCipher(CipherKind::kAes128Ctr, key, nonce, &cipher).ok());
  std::string buf(48, 'z');
  cipher->CryptAt(0, buf.data(), buf.size());  // must not crash/hang
  std::string again(48, 'z');
  cipher->CryptAt(0, again.data(), again.size());
  EXPECT_EQ(buf, again);  // deterministic
}

// --- ChaCha20: RFC 7539 -------------------------------------------------

TEST(ChaCha20Test, Rfc7539KeystreamBlock) {
  // RFC 7539 Section 2.3.2 test vector.
  ChaCha20 chacha;
  ASSERT_TRUE(chacha
                  .Init(FromHex("000102030405060708090a0b0c0d0e0f"
                                "101112131415161718191a1b1c1d1e1f"),
                        FromHex("000000090000004a00000000"))
                  .ok());
  uint8_t block[64];
  chacha.KeystreamBlock(1, block);
  EXPECT_EQ(
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
      ToHex(std::string(reinterpret_cast<char*>(block), 64)));
}

TEST(ChaCha20Test, Rfc7539Encryption) {
  // RFC 7539 Section 2.4.2: stream starts at counter 1 = byte offset 64
  // in our offset addressing.
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(NewStreamCipher(CipherKind::kChaCha20,
                              FromHex("000102030405060708090a0b0c0d0e0f"
                                      "101112131415161718191a1b1c1d1e1f"),
                              FromHex("000000000000004a00000000"), &cipher)
                  .ok());
  std::string pt =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  cipher->CryptAt(64, pt.data(), pt.size());
  EXPECT_EQ(
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d",
      ToHex(pt));
}

TEST(ChaCha20Test, RejectsBadSizes) {
  ChaCha20 chacha;
  EXPECT_FALSE(chacha.Init(std::string(16, 'k'), std::string(12, 'n')).ok());
  EXPECT_FALSE(chacha.Init(std::string(32, 'k'), std::string(8, 'n')).ok());
}

// ChaCha20's RFC 7539 block counter is 32 bits wide, so a single
// (key, nonce) stream addresses at most 2^32 64-byte blocks = 256 GiB.
// Beyond that the counter would wrap and reuse keystream — a silent
// confidentiality break. CryptAt must refuse such ranges up front.
TEST(ChaCha20Test, CounterOverflowRejected) {
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(NewStreamCipher(CipherKind::kChaCha20, SecureRandomString(32),
                              SecureRandomString(12), &cipher)
                  .ok());
  constexpr uint64_t kLimit = (uint64_t{1} << 32) * ChaCha20::kBlockSize;
  char buf[256];

  // The last fully addressable block: [kLimit - 64, kLimit) is fine.
  memset(buf, 'a', sizeof(buf));
  EXPECT_TRUE(
      cipher->CryptAt(kLimit - ChaCha20::kBlockSize, buf, 64).ok());

  // One byte past the limit inside the range → the final block is
  // unaddressable, and the buffer must be left untouched.
  memset(buf, 'a', sizeof(buf));
  Status s = cipher->CryptAt(kLimit - ChaCha20::kBlockSize, buf, 65);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(std::string(sizeof(buf), 'a'), std::string(buf, sizeof(buf)));

  // A range starting wholly past the limit fails too.
  EXPECT_TRUE(cipher->CryptAt(kLimit, buf, 1).IsInvalidArgument());
  EXPECT_TRUE(
      cipher->CryptAt(kLimit + 12345, buf, sizeof(buf)).IsInvalidArgument());

  // An empty range is harmless anywhere.
  EXPECT_TRUE(cipher->CryptAt(kLimit, buf, 0).ok());

  // Round-trip just below the boundary still works (the regression
  // before the fix: the 64-bit block index was truncated to uint32_t,
  // so these offsets silently reused the keystream of offset 0).
  std::string data(128, 'd');
  const std::string original = data;
  const uint64_t offset = kLimit - 128;
  ASSERT_TRUE(cipher->CryptAt(offset, data.data(), data.size()).ok());
  EXPECT_NE(original, data);
  // Same bytes encrypted at offset 0 must differ: distinct keystream.
  std::string low(128, 'd');
  ASSERT_TRUE(cipher->CryptAt(0, low.data(), low.size()).ok());
  EXPECT_NE(low, data);
  ASSERT_TRUE(cipher->CryptAt(offset, data.data(), data.size()).ok());
  EXPECT_EQ(original, data);
}

// AES-CTR uses the full 128-bit counter: the same boundary is fine.
TEST(CtrStreamTest, AesAddressesPastChaChaLimit) {
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(NewStreamCipher(CipherKind::kAes128Ctr, SecureRandomString(16),
                              SecureRandomString(16), &cipher)
                  .ok());
  constexpr uint64_t kLimit = (uint64_t{1} << 32) * 64;
  std::string data(128, 'd');
  const std::string original = data;
  ASSERT_TRUE(cipher->CryptAt(kLimit, data.data(), data.size()).ok());
  EXPECT_NE(original, data);
  ASSERT_TRUE(cipher->CryptAt(kLimit, data.data(), data.size()).ok());
  EXPECT_EQ(original, data);
}

TEST(ChaCha20Test, OffsetAddressing) {
  std::unique_ptr<StreamCipher> cipher;
  ASSERT_TRUE(NewStreamCipher(CipherKind::kChaCha20, SecureRandomString(32),
                              SecureRandomString(12), &cipher)
                  .ok());
  std::string full(256, 'q');
  cipher->CryptAt(0, full.data(), full.size());
  std::string part(100, 'q');
  cipher->CryptAt(77, part.data(), part.size());
  EXPECT_EQ(full.substr(77, 100), part);
}

// --- Cipher factory ------------------------------------------------------

TEST(CipherFactoryTest, KeyAndNonceSizes) {
  EXPECT_EQ(16u, CipherKeySize(CipherKind::kAes128Ctr));
  EXPECT_EQ(32u, CipherKeySize(CipherKind::kAes256Ctr));
  EXPECT_EQ(32u, CipherKeySize(CipherKind::kChaCha20));
  EXPECT_EQ(16u, CipherNonceSize(CipherKind::kAes128Ctr));
  EXPECT_EQ(12u, CipherNonceSize(CipherKind::kChaCha20));
}

TEST(CipherFactoryTest, RejectsMismatchedKey) {
  std::unique_ptr<StreamCipher> cipher;
  EXPECT_FALSE(NewStreamCipher(CipherKind::kAes128Ctr, std::string(32, 'k'),
                               std::string(16, 'n'), &cipher)
                   .ok());
  EXPECT_FALSE(NewStreamCipher(CipherKind::kChaCha20, std::string(32, 'k'),
                               std::string(16, 'n'), &cipher)
                   .ok());
}

TEST(CipherFactoryTest, AllCiphersRoundTrip) {
  for (CipherKind kind : {CipherKind::kAes128Ctr, CipherKind::kAes256Ctr,
                          CipherKind::kChaCha20}) {
    std::unique_ptr<StreamCipher> cipher;
    ASSERT_TRUE(NewStreamCipher(kind,
                                SecureRandomString(CipherKeySize(kind)),
                                SecureRandomString(CipherNonceSize(kind)),
                                &cipher)
                    .ok())
        << CipherKindName(kind);
    std::string data(777, 'd');
    const std::string original = data;
    cipher->CryptAt(99, data.data(), data.size());
    EXPECT_NE(original, data);
    cipher->CryptAt(99, data.data(), data.size());
    EXPECT_EQ(original, data);
  }
}

// --- SHA-256: FIPS 180-4 -------------------------------------------------

TEST(Sha256Test, StandardVectors) {
  EXPECT_EQ("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ToHex(Sha256::Digest("")));
  EXPECT_EQ("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ToHex(Sha256::Digest("abc")));
  EXPECT_EQ(
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
      ToHex(Sha256::Digest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")));
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) {
    hasher.Update(chunk);
  }
  uint8_t digest[32];
  hasher.Final(digest);
  EXPECT_EQ("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
            ToHex(std::string(reinterpret_cast<char*>(digest), 32)));
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Random rnd(11);
  std::string data;
  for (int i = 0; i < 1000; i++) {
    data.push_back(static_cast<char>(rnd.Uniform(256)));
  }
  Sha256 hasher;
  size_t pos = 0;
  while (pos < data.size()) {
    const size_t n = std::min<size_t>(1 + rnd.Uniform(97), data.size() - pos);
    hasher.Update(data.data() + pos, n);
    pos += n;
  }
  uint8_t digest[32];
  hasher.Final(digest);
  EXPECT_EQ(Sha256::Digest(data),
            std::string(reinterpret_cast<char*>(digest), 32));
}

// --- HMAC: RFC 4231 --------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            ToHex(HmacSha256(key, "Hi There")));
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            ToHex(HmacSha256("Jefe", "what do ya want for nothing?")));
}

TEST(HmacTest, Rfc4231LongKey) {
  // Case 6: 131-byte key (hashed down internally).
  const std::string key(131, '\xaa');
  EXPECT_EQ("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            ToHex(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")));
}

TEST(HmacTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual("same", "same"));
  EXPECT_FALSE(ConstantTimeEqual("same", "diff"));
  EXPECT_FALSE(ConstantTimeEqual("short", "longer"));
  EXPECT_TRUE(ConstantTimeEqual("", ""));
}

// --- HKDF: RFC 5869 ---------------------------------------------------------

TEST(HkdfTest, Rfc5869Case1) {
  const std::string ikm(22, '\x0b');
  const std::string salt = test::FromHex("000102030405060708090a0b0c");
  const std::string info = test::FromHex("f0f1f2f3f4f5f6f7f8f9");
  EXPECT_EQ(
      "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
      "34007208d5b887185865",
      ToHex(HkdfSha256(ikm, salt, info, 42)));
}

TEST(HkdfTest, NoSalt) {
  // RFC 5869 test case 3 (zero-length salt and info).
  const std::string ikm(22, '\x0b');
  EXPECT_EQ(
      "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
      "9d201395faa4b61a96c8",
      ToHex(HkdfSha256(ikm, "", "", 42)));
}

TEST(HkdfTest, DistinctInfoDistinctKeys) {
  const std::string a = HkdfSha256("passkey", "salt", "enc", 32);
  const std::string b = HkdfSha256("passkey", "salt", "mac", 32);
  EXPECT_NE(a, b);
  EXPECT_EQ(32u, a.size());
}

// --- Secure random -----------------------------------------------------------

TEST(SecureRandomTest, ProducesDistinctValues) {
  const std::string a = SecureRandomString(32);
  const std::string b = SecureRandomString(32);
  EXPECT_EQ(32u, a.size());
  EXPECT_NE(a, b);  // astronomically unlikely to collide
}

}  // namespace
}  // namespace crypto
}  // namespace shield
