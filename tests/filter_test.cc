#include "lsm/filter_block.h"
#include "lsm/filter_policy.h"

#include <memory>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

// --- Bloom filter policy ------------------------------------------------

class BloomTest : public ::testing::Test {
 protected:
  BloomTest() : policy_(NewBloomFilterPolicy(10)) {}

  void Build(const std::vector<std::string>& keys) {
    std::vector<Slice> slices;
    for (const auto& key : keys) {
      slices.emplace_back(key);
    }
    filter_.clear();
    policy_->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                          &filter_);
  }

  bool Matches(const Slice& key) {
    return policy_->KeyMayMatch(key, filter_);
  }

  std::unique_ptr<const FilterPolicy> policy_;
  std::string filter_;
};

TEST_F(BloomTest, EmptyFilter) {
  Build({});
  EXPECT_FALSE(Matches("hello"));
}

TEST_F(BloomTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; i++) {
    keys.push_back("key" + std::to_string(i));
  }
  Build(keys);
  for (const auto& key : keys) {
    EXPECT_TRUE(Matches(key)) << key;
  }
}

TEST_F(BloomTest, FalsePositiveRateBounded) {
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; i++) {
    keys.push_back("present" + std::to_string(i));
  }
  Build(keys);
  int false_positives = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; i++) {
    if (Matches("absent" + std::to_string(i))) {
      false_positives++;
    }
  }
  // 10 bits/key => ~1%; allow generous slack.
  EXPECT_LT(false_positives, kProbes / 25) << "FP rate too high";
}

TEST_F(BloomTest, VaryingLengths) {
  // Sweep filter sizes like LevelDB's bloom_test.
  for (int len : {1, 10, 100, 1000, 10000}) {
    std::vector<std::string> keys;
    for (int i = 0; i < len; i++) {
      keys.push_back(std::to_string(i));
    }
    Build(keys);
    for (int i = 0; i < len; i++) {
      EXPECT_TRUE(Matches(std::to_string(i))) << "len=" << len << " i=" << i;
    }
  }
}

// --- Filter block --------------------------------------------------------

TEST(FilterBlockTest, SingleChunk) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  const Slice block = builder.Finish();

  FilterBlockReader reader(policy.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "bar"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "missing"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "other"));
}

TEST(FilterBlockTest, MultiChunk) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());

  // First filter window (offsets 0..2047).
  builder.StartBlock(0);
  builder.AddKey("first");
  builder.StartBlock(1500);
  builder.AddKey("second");
  // Third window (offset 4096+).
  builder.StartBlock(4100);
  builder.AddKey("third");
  // Much later window.
  builder.StartBlock(9000);
  builder.AddKey("fourth");

  const Slice block = builder.Finish();
  FilterBlockReader reader(policy.get(), block);

  EXPECT_TRUE(reader.KeyMayMatch(0, "first"));
  EXPECT_TRUE(reader.KeyMayMatch(1500, "second"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "third"));
  EXPECT_TRUE(reader.KeyMayMatch(4100, "third"));
  EXPECT_TRUE(reader.KeyMayMatch(9000, "fourth"));
  EXPECT_FALSE(reader.KeyMayMatch(9000, "first"));
}

TEST(FilterBlockTest, EmptyBuilder) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  const Slice block = builder.Finish();
  FilterBlockReader reader(policy.get(), block);
  // Nothing was added; out-of-range windows err toward "may match".
  EXPECT_TRUE(reader.KeyMayMatch(0, "whatever"));
}

// --- End-to-end with the DB ------------------------------------------------

TEST(DbFilterTest, LookupsWorkWithFilters) {
  auto env = NewMemEnv();
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  Options options;
  options.env = env.get();
  options.filter_policy = policy.get();
  options.write_buffer_size = 32 * 1024;
  options.encryption.mode = EncryptionMode::kShield;

  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);

  std::map<std::string, std::string> model;
  Random rnd(4);
  for (int i = 0; i < 3000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = "v" + std::to_string(rnd.Next());
    model[key] = value;
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());

  // All present keys found (no false negatives end-to-end).
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
  // Absent keys are NotFound.
  for (int i = 0; i < 500; i++) {
    std::string got;
    EXPECT_TRUE(
        db->Get(ReadOptions(), "absent" + std::to_string(i), &got)
            .IsNotFound());
  }
}

TEST(DbFilterTest, FilterlessReaderStillWorks) {
  // A table built WITH filters must remain readable by a DB opened
  // WITHOUT a filter policy (and vice versa).
  auto env = NewMemEnv();
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  Options with_filter;
  with_filter.env = env.get();
  with_filter.filter_policy = policy.get();
  {
    DB* raw_db = nullptr;
    ASSERT_TRUE(DB::Open(with_filter, "/db", &raw_db).ok());
    std::unique_ptr<DB> db(raw_db);
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), "key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  Options without_filter = with_filter;
  without_filter.filter_policy = nullptr;
  DB* raw_db = nullptr;
  ASSERT_TRUE(DB::Open(without_filter, "/db", &raw_db).ok());
  std::unique_ptr<DB> db(raw_db);
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key123", &value).ok());
  EXPECT_EQ("v", value);
}

}  // namespace
}  // namespace shield
