// Behavioural tests of compaction picking and versioning, driven
// through the public DB interface plus direct VersionSet interactions.

#include <map>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

class CompactionBehaviorTest : public ::testing::Test {
 protected:
  CompactionBehaviorTest() : env_(NewMemEnv()) {
    options_.env = env_.get();
    options_.write_buffer_size = 16 * 1024;
    options_.level0_file_num_compaction_trigger = 4;
    options_.target_file_size_base = 64 * 1024;
  }

  void Open() {
    db_.reset();
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());
    db_.reset(db);
  }

  int FilesAt(int level) {
    std::string value;
    EXPECT_TRUE(db_->GetProperty(
        "shield.num-files-at-level" + std::to_string(level), &value));
    return atoi(value.c_str());
  }

  int TotalFiles() {
    int total = 0;
    for (int level = 0; level < 7; level++) {
      total += FilesAt(level);
    }
    return total;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(CompactionBehaviorTest, LeveledKeepsL0Bounded) {
  Open();
  Random rnd(1);
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(rnd.Uniform(5000)),
                         std::string(64, 'l'))
                    .ok());
  }
  db_->Flush();
  db_->WaitForIdle();
  // After quiescing, leveled compaction must have pushed data down.
  EXPECT_LT(FilesAt(0), options_.level0_file_num_compaction_trigger);
  int below = 0;
  for (int level = 1; level < 7; level++) {
    below += FilesAt(level);
  }
  EXPECT_GT(below, 0);
}

TEST_F(CompactionBehaviorTest, UniversalBoundsSortedRuns) {
  options_.compaction_style = CompactionStyle::kUniversal;
  options_.universal_max_sorted_runs = 6;
  Open();
  Random rnd(2);
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(rnd.Uniform(5000)),
                         std::string(64, 'u'))
                    .ok());
  }
  db_->Flush();
  db_->WaitForIdle();
  // All data stays in level 0 (sorted runs), bounded in count.
  EXPECT_LE(FilesAt(0), options_.universal_max_sorted_runs + 1);
  for (int level = 1; level < 7; level++) {
    EXPECT_EQ(0, FilesAt(level));
  }
}

TEST_F(CompactionBehaviorTest, UniversalPreservesRecencyAcrossMerges) {
  // Regression test: universal compaction must merge an age-contiguous
  // NEWEST prefix of runs — merging old runs into a higher-numbered
  // file would make stale values shadow newer ones.
  options_.compaction_style = CompactionStyle::kUniversal;
  options_.level0_file_num_compaction_trigger = 3;
  Open();

  // Round 1: write v1 for all keys, flushed to run A.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), "v1").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  // Rounds 2..6: overwrite with v2..v6, each flushed to its own run,
  // triggering several universal merges along the way.
  for (int round = 2; round <= 6; round++) {
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                           "v" + std::to_string(round))
                      .ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
    db_->WaitForIdle();
  }
  for (int i = 0; i < 200; i++) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(ReadOptions(), "key" + std::to_string(i), &value).ok());
    EXPECT_EQ("v6", value) << "key" << i;
  }
}

TEST_F(CompactionBehaviorTest, FifoNeverMovesFilesDown) {
  options_.compaction_style = CompactionStyle::kFifo;
  options_.fifo_max_table_files_size = 1ull << 30;
  Open();
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(64, 'f'))
                    .ok());
  }
  db_->Flush();
  db_->WaitForIdle();
  for (int level = 1; level < 7; level++) {
    EXPECT_EQ(0, FilesAt(level));
  }
  EXPECT_GT(FilesAt(0), 1);
}

TEST_F(CompactionBehaviorTest, FifoEvictionReducesFileCount) {
  options_.compaction_style = CompactionStyle::kFifo;
  options_.fifo_max_table_files_size = 64 * 1024;
  Open();
  for (int i = 0; i < 15000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(64, 'e'))
                    .ok());
  }
  db_->Flush();
  db_->WaitForIdle();
  // Total on-disk size respects the budget (within one file's slack).
  std::string value;
  int64_t total = 0;
  {
    // Sum the level-0 file sizes via the debug property.
    ASSERT_TRUE(db_->GetProperty("shield.sstables", &value));
  }
  // Cheap proxy: the newest keys must be present, oldest gone.
  ASSERT_TRUE(db_->Get(ReadOptions(), "key14999", &value).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "key0", &value).IsNotFound());
  (void)total;
}

TEST_F(CompactionBehaviorTest, DeleteHeavyWorkloadCompactsAway) {
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(100, 'd'))
                    .ok());
  }
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), "key" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  db_->WaitForIdle();

  // Everything deleted and tombstones dropped at the bottom level: the
  // iterator sees nothing.
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(CompactionBehaviorTest, RangeLimitedManualCompaction) {
  Open();
  for (int i = 0; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, std::string(64, 'r')).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  const Slice begin("k0100");
  const Slice end("k0200");
  ASSERT_TRUE(db_->CompactRange(&begin, &end).ok());
  // All data still present.
  std::string value;
  for (int i : {0, 150, 999}) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
  }
}

TEST_F(CompactionBehaviorTest, OverwriteHeavyWorkloadShrinks) {
  Open();
  // Write each key 10 times, then force a full merge: dead versions
  // must be dropped (bytes shrink well below raw write volume).
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                           std::string(200, static_cast<char>('a' + round)))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  db_->WaitForIdle();
  // 500 keys x ~210 B ~= 105 KiB of live data; with 10x overwrites the
  // raw volume was ~1 MiB. After a full merge the file count should be
  // tiny and every key must carry the final round's value.
  EXPECT_LE(TotalFiles(), 3);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key250", &value).ok());
  EXPECT_EQ(std::string(200, 'j'), value);
}

}  // namespace
}  // namespace shield
