#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "kds/local_kds.h"
#include "kds/sim_kds.h"
#include "lsm/db.h"
#include "lsm/file_names.h"
#include "shield/file_crypto.h"
#include "test_util.h"
#include "util/random.h"

namespace shield {
namespace {

// A distinctive plaintext marker: tests scan raw files for it to prove
// on-disk confidentiality.
constexpr char kMarker[] = "CONFIDENTIAL_CLIENT_RECORD_MARKER";

Options BaseOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_buffer_size = 64 * 1024;
  return options;
}

// Scans every file in the DB directory for the plaintext marker.
bool AnyFileContains(Env* env, const std::string& dbname,
                     const std::string& needle) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren(dbname, &children).ok());
  for (const std::string& child : children) {
    std::string contents;
    if (ReadFileToString(env, dbname + "/" + child, &contents).ok()) {
      if (contents.find(needle) != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

// --- Parameterized over the three engine modes ------------------------------

struct EngineParam {
  EncryptionMode mode;
  size_t wal_buffer_size;
  const char* name;
};

class EncryptedDBTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  EncryptedDBTest() : env_(NewMemEnv()) {}

  Options MakeOptions() {
    Options options = BaseOptions(env_.get());
    const EngineParam& param = GetParam();
    options.encryption.mode = param.mode;
    options.encryption.wal_buffer_size = param.wal_buffer_size;
    if (param.mode == EncryptionMode::kEncFS) {
      options.encryption.instance_key = instance_key_;
    }
    if (param.mode == EncryptionMode::kShield) {
      if (kds_ == nullptr) {
        kds_ = std::make_shared<LocalKds>();
      }
      options.encryption.kds = kds_;
    }
    return options;
  }

  void Open() {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(MakeOptions(), "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<Kds> kds_;
  std::string instance_key_ = std::string(16, 'K');
  std::unique_ptr<DB> db_;
};

TEST_P(EncryptedDBTest, BasicOperations) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "v1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", "v2").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k1").ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "k1", &value).IsNotFound());
  ASSERT_TRUE(db_->Get(ReadOptions(), "k2", &value).ok());
  EXPECT_EQ("v2", value);
}

TEST_P(EncryptedDBTest, DataSurvivesReopen) {
  Open();
  std::map<std::string, std::string> model;
  Random rnd(5);
  for (int i = 0; i < 2000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = "value" + std::to_string(rnd.Next());
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  for (int i = 0; i < 100; i++) {  // tail stays in WAL
    const std::string key = "wal-key" + std::to_string(i);
    model[key] = "wal-value";
    ASSERT_TRUE(db_->Put(WriteOptions(), key, "wal-value").ok());
  }

  Open();  // reopen: manifest + WAL replay through decryption
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
}

TEST_P(EncryptedDBTest, NoPlaintextInWal) {
  Open();
  // Synced write: must be on storage (encrypted) even with WAL buffer.
  WriteOptions sync_options;
  sync_options.sync = true;
  ASSERT_TRUE(db_->Put(sync_options, "key", kMarker).ok());

  const bool expect_plaintext = GetParam().mode == EncryptionMode::kNone;
  EXPECT_EQ(expect_plaintext, AnyFileContains(env_.get(), "/db", kMarker));
}

TEST_P(EncryptedDBTest, NoPlaintextInSst) {
  Open();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(kMarker) + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  const bool expect_plaintext = GetParam().mode == EncryptionMode::kNone;
  EXPECT_EQ(expect_plaintext, AnyFileContains(env_.get(), "/db", kMarker));
  // Reads still decrypt correctly.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key42", &value).ok());
  EXPECT_EQ(std::string(kMarker) + "42", value);
}

TEST_P(EncryptedDBTest, CompactionPreservesConfidentialityAndData) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; i++) {
    const std::string key = "key" + std::to_string(i % 800);
    const std::string value =
        std::string(kMarker) + "-" + std::to_string(i) + std::string(64, 'z');
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  const bool expect_plaintext = GetParam().mode == EncryptionMode::kNone;
  EXPECT_EQ(expect_plaintext, AnyFileContains(env_.get(), "/db", kMarker));
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EncryptedDBTest,
    ::testing::Values(
        EngineParam{EncryptionMode::kNone, 0, "Unencrypted"},
        EngineParam{EncryptionMode::kEncFS, 0, "EncFS"},
        EngineParam{EncryptionMode::kEncFS, 512, "EncFSWalBuf"},
        EngineParam{EncryptionMode::kShield, 0, "Shield"},
        EngineParam{EncryptionMode::kShield, 512, "ShieldWalBuf"}),
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      return info.param.name;
    });

// --- SHIELD-specific behaviours ----------------------------------------------

class ShieldDBTest : public ::testing::Test {
 protected:
  ShieldDBTest() : env_(NewMemEnv()), kds_(std::make_shared<LocalKds>()) {}

  Options MakeOptions() {
    Options options = BaseOptions(env_.get());
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.kds = kds_;
    return options;
  }

  void Open(const Options& options) {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(options, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  // Collects the DEK-ID of every SHIELD data file in the DB dir.
  std::map<std::string, std::string> FileDekIds() {
    std::map<std::string, std::string> ids;
    std::vector<std::string> children;
    EXPECT_TRUE(env_->GetChildren("/db", &children).ok());
    for (const std::string& child : children) {
      ShieldFileHeader header;
      if (ReadShieldFileHeader(env_.get(), "/db/" + child, &header).ok()) {
        ids[child] = header.dek_id.ToHex();
      }
    }
    return ids;
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<LocalKds> kds_;
  std::unique_ptr<DB> db_;
};

TEST_F(ShieldDBTest, UniqueDekPerFile) {
  Open(MakeOptions());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(128, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  for (int i = 1000; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(128, 'v'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  const auto dek_ids = FileDekIds();
  // At least: 2 SSTs + active WAL + manifest, all SHIELD files.
  EXPECT_GE(dek_ids.size(), 4u);
  std::set<std::string> distinct;
  for (const auto& [file, id] : dek_ids) {
    distinct.insert(id);
  }
  EXPECT_EQ(dek_ids.size(), distinct.size()) << "DEKs must be per-file unique";
}

TEST_F(ShieldDBTest, CompactionRotatesDeks) {
  Options options = MakeOptions();
  options.write_buffer_size = 32 * 1024;
  Open(options);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i % 500),
                         std::string(100, 'r'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  const auto before = FileDekIds();

  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  const auto after = FileDekIds();

  // Every file REWRITTEN by compaction gets a fresh DEK. (A trivial
  // move re-links the same file without rewriting and keeps its DEK —
  // same as the RocksDB behaviour the paper builds on.) A surviving
  // file keeps its own DEK; a new file's DEK must be new.
  std::set<std::string> before_ids;
  for (const auto& [file, id] : before) {
    before_ids.insert(id);
  }
  int rewritten = 0;
  for (const auto& [file, id] : after) {
    if (file.find(".sst") == std::string::npos) {
      continue;
    }
    auto it = before.find(file);
    if (it != before.end()) {
      EXPECT_EQ(it->second, id) << "unmoved file must keep its DEK";
    } else {
      rewritten++;
      EXPECT_EQ(0u, before_ids.count(id))
          << "compaction output must use a fresh DEK";
    }
  }
  EXPECT_GT(rewritten, 0) << "the full compaction should rewrite data";
}

TEST_F(ShieldDBTest, DeletedFileDeksAreDestroyed) {
  Options options = MakeOptions();
  options.write_buffer_size = 32 * 1024;
  Open(options);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i % 500),
                         std::string(100, 'd'))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  db_->WaitForIdle();

  // The KDS should hold DEKs only for live files (obsolete SSTs/WALs
  // had their keys destroyed on deletion).
  const auto live = FileDekIds();
  EXPECT_EQ(live.size(), kds_->NumDeks());
}

TEST_F(ShieldDBTest, SecureCacheAvoidsKdsOnRestart) {
  auto sim = std::make_shared<SimKds>(SimKdsOptions{
      .request_latency_us = 0,
      .one_time_provisioning = true,
      .require_authorization = false});
  Options options = BaseOptions(env_.get());
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = sim;
  options.encryption.use_secure_dek_cache = true;
  options.encryption.passkey = "operator-secret";
  Open(options);

  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(100, 's'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  // Restart. With one-time provisioning the KDS would DENY re-fetching
  // DEKs the instance already received — the restart works only
  // because the secure cache serves them.
  Open(options);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key42", &value).ok());
  EXPECT_EQ(std::string(100, 's'), value);
}

TEST_F(ShieldDBTest, RestartWithoutCacheRefetchesFromKds) {
  Options options = MakeOptions();  // no secure cache
  Open(options);
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         std::string(100, 'n'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  Open(options);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key7", &value).ok());

  std::string kds_requests;
  ASSERT_TRUE(db_->GetProperty("shield.kds-requests", &kds_requests));
  EXPECT_GT(atoi(kds_requests.c_str()), 0);
}

TEST_F(ShieldDBTest, WrongPasskeyFailsOpen) {
  Options options = MakeOptions();
  options.encryption.use_secure_dek_cache = true;
  options.encryption.passkey = "right";
  Open(options);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  db_.reset();

  options.encryption.passkey = "wrong";
  DB* db = nullptr;
  Status s = DB::Open(options, "/db", &db);
  EXPECT_TRUE(s.IsPermissionDenied()) << s.ToString();
  EXPECT_EQ(nullptr, db);
}

TEST_F(ShieldDBTest, ChaCha20Cipher) {
  Options options = MakeOptions();
  options.encryption.cipher = crypto::CipherKind::kChaCha20;
  Open(options);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", kMarker).ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_FALSE(AnyFileContains(env_.get(), "/db", kMarker));
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(kMarker, value);
}

TEST_F(ShieldDBTest, MultiThreadedEncryption) {
  Options options = MakeOptions();
  options.encryption.encryption_threads = 4;
  options.encryption.sst_chunk_size = 64 * 1024;
  options.write_buffer_size = 128 * 1024;
  Open(options);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 4000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = std::string(200, static_cast<char>('a' + i % 26));
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
    EXPECT_EQ(value, got);
  }
}

TEST_F(ShieldDBTest, WalBufferSyncedDataIsDurable) {
  Options options = MakeOptions();
  options.encryption.wal_buffer_size = 4096;  // large buffer
  Open(options);
  WriteOptions sync_options;
  sync_options.sync = true;
  ASSERT_TRUE(db_->Put(sync_options, "synced", "must-survive").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "unsynced", "may-be-lost").ok());

  // Reopen without closing cleanly is hard to emulate in-process; a
  // clean reopen drains the buffer, so both survive. The durability
  // property we check: the synced write was already on storage before
  // close (file physically larger than just the header).
  Open(options);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "synced", &value).ok());
  EXPECT_EQ("must-survive", value);
}

TEST_F(ShieldDBTest, KdsRequestsCountedPerFile) {
  Open(MakeOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  std::string requests;
  ASSERT_TRUE(db_->GetProperty("shield.kds-requests", &requests));
  // At least: manifest DEK + initial WAL DEK + SST DEK + post-flush WAL.
  EXPECT_GE(atoi(requests.c_str()), 3);
}

}  // namespace
}  // namespace shield
