// sim_runner — deterministic whole-cluster simulation CLI.
//
// Runs one simulated SHIELD deployment (writer + read-only replicas +
// offloaded compaction worker on shared storage) on a virtual clock,
// injecting seeded faults and checking every epoch against the
// linearizability oracle. Same seed + flags → bit-for-bit identical
// journal, so a failing run reproduces exactly from the seed it
// prints.
//
//   sim_runner --seed=42 --duration=600 --faults=mixed
//   sim_runner --seed=42 --json              # machine-readable report
//   sim_runner --seed=42 --print-journal     # dump the event journal
//
// Exit code 0 on success, 1 on an oracle/driver failure (the seed is
// printed on stderr as "FAILED seed=<seed>"), 2 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "env/env.h"
#include "sim/sim_harness.h"
#include "util/event_logger.h"
#include "util/logger.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: sim_runner [options]\n"
      "  --seed=N           PRNG seed for the whole run (default 1)\n"
      "  --duration=SECS    simulated (virtual) seconds to cover (default 60)\n"
      "  --faults=PROFILE   none | storage | network | mixed | rotation |\n"
      "                     write | health (default mixed; \"write\" runs\n"
      "                     the sharded memtable + pipelined-WAL crash\n"
      "                     campaign). A comma list of health fault\n"
      "                     classes — e.g. --faults=kds,partition — runs\n"
      "                     the health campaign over exactly those\n"
      "                     classes.\n"
      "  --replicas=N       read-only replicas (default 2)\n"
      "  --ops=N            writer ops per epoch (default 120)\n"
      "  --json             print the report as one JSON object\n"
      "  --print-journal    dump the deterministic event journal to stdout\n"
      "  --journal=PATH     write the deterministic journal to this file\n"
      "  --trace-dir=DIR    export per-node SHTRACE1 trace files here\n"
      "                     (enables the observability plane; stitch with\n"
      "                     trace_replay --stitch DIR/*.trace)\n"
      "  --metrics-dir=DIR  export one Prometheus text file per DB node\n"
      "                     (<node>.prom; enables the observability plane)\n"
      "  --log=PATH         also write engine + sim events to this file\n");
}

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  shield::sim::SimConfig config;
  bool json = false;
  bool print_journal = false;
  std::string log_path;
  std::string journal_path;
  std::string trace_dir;
  std::string metrics_dir;

  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    uint64_t n = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseUint(arg + 7, &n)) {
      config.seed = n;
    } else if (std::strncmp(arg, "--duration=", 11) == 0 &&
               ParseUint(arg + 11, &n)) {
      config.duration_sec = n;
    } else if (std::strncmp(arg, "--faults=", 9) == 0) {
      const std::string spec = arg + 9;
      if (!shield::sim::ParseFaultProfile(spec, &config.profile)) {
        // Not a profile name: accept a comma list of health fault
        // classes ("kds,partition") as shorthand for the health
        // campaign restricted to those classes. Validated by the
        // harness at startup.
        if (spec.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz,") != std::string::npos) {
          std::fprintf(stderr, "unknown fault profile: %s\n", arg + 9);
          Usage();
          return 2;
        }
        config.profile = shield::sim::FaultProfile::kHealth;
        config.health_fault_classes = spec;
      }
    } else if (std::strncmp(arg, "--replicas=", 11) == 0 &&
               ParseUint(arg + 11, &n)) {
      config.num_replicas = static_cast<int>(n);
    } else if (std::strncmp(arg, "--ops=", 6) == 0 && ParseUint(arg + 6, &n)) {
      config.ops_per_epoch = static_cast<int>(n);
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--print-journal") == 0) {
      print_journal = true;
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      journal_path = arg + 10;
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      trace_dir = arg + 12;
      config.observability = true;
    } else if (std::strncmp(arg, "--metrics-dir=", 14) == 0) {
      metrics_dir = arg + 14;
      config.observability = true;
    } else if (std::strncmp(arg, "--log=", 6) == 0) {
      log_path = arg + 6;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      Usage();
      return 2;
    }
  }

  if (!log_path.empty()) {
    shield::Status s = shield::NewFileLogger(
        shield::Env::Default(), log_path, 0, 0,
        shield::InfoLogLevel::kInfo, &config.info_log);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot open --log file %s: %s\n",
                   log_path.c_str(), s.ToString().c_str());
      return 2;
    }
  }

  const shield::sim::SimReport report = shield::sim::RunSimulation(config);

  shield::Env* fs = shield::Env::Default();
  if (!journal_path.empty()) {
    shield::Status s = shield::WriteStringToFile(fs, report.journal,
                                                 journal_path, /*sync=*/false);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write --journal file %s: %s\n",
                   journal_path.c_str(), s.ToString().c_str());
      return 2;
    }
  }
  if (!trace_dir.empty()) {
    fs->CreateDirIfMissing(trace_dir);
    for (const auto& [name, bytes] : report.trace_files) {
      shield::Status s = shield::WriteStringToFile(
          fs, bytes, trace_dir + "/" + name, /*sync=*/false);
      if (!s.ok()) {
        std::fprintf(stderr, "cannot export trace %s: %s\n", name.c_str(),
                     s.ToString().c_str());
        return 2;
      }
    }
  }
  if (!metrics_dir.empty()) {
    fs->CreateDirIfMissing(metrics_dir);
    for (const auto& [node, text] : report.node_metrics) {
      shield::Status s = shield::WriteStringToFile(
          fs, text, metrics_dir + "/" + node + ".prom", /*sync=*/false);
      if (!s.ok()) {
        std::fprintf(stderr, "cannot export metrics for %s: %s\n",
                     node.c_str(), s.ToString().c_str());
        return 2;
      }
    }
  }

  if (print_journal) {
    std::fwrite(report.journal.data(), 1, report.journal.size(), stdout);
  }
  if (json) {
    shield::JsonWriter w;
    w.Add("ok", report.ok)
        .Add("seed", report.seed)
        .Add("profile", shield::sim::FaultProfileName(config.profile))
        .Add("epochs", report.epochs_run)
        .Add("ops", report.ops_acknowledged)
        .Add("oracle_checks", report.oracle_checks)
        .Add("crashes", report.crashes)
        .Add("faults_injected", report.faults_injected)
        .Add("virtual_micros", report.virtual_micros)
        .Add("wall_micros", report.wall_micros)
        .Add("model_hash", report.model_hash)
        .Add("journal_bytes", static_cast<uint64_t>(report.journal.size()));
    if (!report.ok) {
      w.Add("failure", report.failure);
    }
    std::string line = w.Finish();
    std::fprintf(print_journal ? stderr : stdout, "%s\n", line.c_str());
  } else {
    // With --print-journal, stdout is reserved for the byte-exact
    // journal (runs are compared with cmp); the summary, which
    // contains wall-clock times, moves to stderr.
    std::fprintf(
        print_journal ? stderr : stdout,
        "sim: seed=%" PRIu64 " profile=%s epochs=%" PRIu64 " ops=%" PRIu64
        " checks=%" PRIu64 " crashes=%" PRIu64 " faults=%" PRIu64
        " virtual=%.1fs wall=%.2fs (x%.0f)\n",
        report.seed, shield::sim::FaultProfileName(config.profile),
        report.epochs_run, report.ops_acknowledged, report.oracle_checks,
        report.crashes, report.faults_injected,
        report.virtual_micros / 1e6, report.wall_micros / 1e6,
        report.wall_micros > 0
            ? static_cast<double>(report.virtual_micros) / report.wall_micros
            : 0.0);
  }

  if (!report.ok) {
    std::fprintf(stderr, "FAILED seed=%" PRIu64 " : %s\n", report.seed,
                 report.failure.c_str());
    std::fprintf(stderr,
                 "reproduce with: sim_runner --seed=%" PRIu64
                 " --duration=%" PRIu64 " --faults=%s --replicas=%d --ops=%d\n",
                 report.seed, config.duration_sec,
                 shield::sim::FaultProfileName(config.profile),
                 config.num_replicas, config.ops_per_epoch);
    return 1;
  }
  return 0;
}
