// trace_replay: analyzer + replayer for SHIELD binary trace files
// (see util/trace.h for the format and DESIGN.md "Observability").
//
//   trace_replay TRACE                   per-span-type latency breakdown
//   trace_replay --json TRACE            same, as one JSON object
//   trace_replay --replay --dir D TRACE  re-issue recorded io.read ops
//                                        against the files in D
//
// Exit codes: 0 clean; 1 usage or open failure; 2 the trace ends in
// damage (torn tail, CRC mismatch) — suppressed by --allow-truncated,
// which still replays/analyzes the valid prefix.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "env/readahead_file.h"
#include "util/clock.h"
#include "util/event_logger.h"
#include "util/histogram.h"
#include "util/trace.h"

namespace shield {
namespace {

struct TypeStats {
  uint64_t count = 0;
  uint64_t errors = 0;
  uint64_t bytes = 0;
  Histogram latency;
};

struct Options {
  std::string trace_path;
  std::string dir;
  size_t readahead_bytes = 0;
  bool replay = false;
  bool json = false;
  bool allow_truncated = false;
};

void Usage() {
  fprintf(stderr,
          "usage: trace_replay [options] <trace-file>\n"
          "  --replay            re-issue recorded io.read operations\n"
          "  --dir DIR           directory holding the traced files "
          "(with --replay)\n"
          "  --readahead BYTES   wrap replayed files in a prefetch buffer\n"
          "  --json              print the summary as one JSON object\n"
          "  --allow-truncated   exit 0 even if the trace ends in damage\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--replay") {
      opts->replay = true;
    } else if (arg == "--json") {
      opts->json = true;
    } else if (arg == "--allow-truncated") {
      opts->allow_truncated = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      opts->dir = argv[++i];
    } else if (arg == "--readahead" && i + 1 < argc) {
      opts->readahead_bytes =
          static_cast<size_t>(strtoull(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else if (opts->trace_path.empty()) {
      opts->trace_path = arg;
    } else {
      fprintf(stderr, "extra argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts->trace_path.empty()) {
    return false;
  }
  if (opts->replay && opts->dir.empty()) {
    fprintf(stderr, "--replay requires --dir\n");
    return false;
  }
  return true;
}

bool IsIoType(SpanType t) {
  return t == SpanType::kIoRead || t == SpanType::kIoWrite ||
         t == SpanType::kIoSync;
}

// One traced file being replayed: the open handle plus its optional
// prefetch window.
struct ReplayFile {
  std::unique_ptr<RandomAccessFile> file;
  std::unique_ptr<FilePrefetchBuffer> prefetch;
};

struct ReplayStats {
  uint64_t reads = 0;
  uint64_t bytes = 0;
  uint64_t failed = 0;
  uint64_t skipped = 0;  // unknown file or zero-length record
  Histogram latency;
};

void ReplayRead(const SpanRecord& rec, Env* env, const Options& opts,
                std::map<std::string, ReplayFile>* files,
                std::string* scratch, ReplayStats* stats) {
  if (rec.label.empty() || rec.b == 0) {
    stats->skipped++;
    return;
  }
  auto it = files->find(rec.label);
  if (it == files->end()) {
    ReplayFile rf;
    const std::string path = opts.dir + "/" + rec.label;
    if (!env->NewRandomAccessFile(path, &rf.file).ok()) {
      // The file may have been compacted away since the trace was
      // recorded; count it once and skip its reads.
      it = files->emplace(rec.label, ReplayFile()).first;
    } else {
      if (opts.readahead_bytes > 0) {
        rf.prefetch = std::make_unique<FilePrefetchBuffer>(
            rf.file.get(), opts.readahead_bytes, opts.readahead_bytes,
            /*stats=*/nullptr);
      }
      it = files->emplace(rec.label, std::move(rf)).first;
    }
  }
  ReplayFile& rf = it->second;
  if (rf.file == nullptr) {
    stats->skipped++;
    return;
  }
  if (scratch->size() < rec.b) {
    scratch->resize(rec.b);
  }
  Slice result;
  const uint64_t t0 = NowMicros();
  const Status s = rf.prefetch != nullptr
                       ? rf.prefetch->ReadWithReadahead(rec.a, rec.b, &result,
                                                        scratch->data())
                       : rf.file->Read(rec.a, rec.b, &result,
                                       scratch->data());
  stats->latency.Add(NowMicros() - t0);
  stats->reads++;
  if (s.ok()) {
    stats->bytes += result.size();
  } else {
    stats->failed++;
  }
}

void PrintText(const std::map<SpanType, TypeStats>& by_type,
               const TraceReader& reader, const Options& opts,
               const ReplayStats* replay) {
  printf("trace: %s\n", opts.trace_path.c_str());
  printf("records: %" PRIu64 "%s\n", reader.records_read(),
         reader.truncated() ? " (truncated tail)" : "");
  printf("%-22s %10s %8s %10s %10s %10s %10s\n", "span", "count", "errors",
         "p50_us", "p99_us", "p999_us", "max_us");
  for (const auto& [type, ts] : by_type) {
    printf("%-22s %10" PRIu64 " %8" PRIu64 " %10.0f %10.0f %10.0f %10" PRIu64
           "\n",
           SpanTypeName(type), ts.count, ts.errors, ts.latency.Percentile(50),
           ts.latency.Percentile(99), ts.latency.Percentile(99.9),
           ts.latency.Max());
  }
  if (replay != nullptr) {
    printf("\nreplay: %" PRIu64 " reads, %" PRIu64 " bytes, %" PRIu64
           " failed, %" PRIu64 " skipped\n",
           replay->reads, replay->bytes, replay->failed, replay->skipped);
    printf("replay latency: p50 %.0fus p99 %.0fus p999 %.0fus\n",
           replay->latency.Percentile(50), replay->latency.Percentile(99),
           replay->latency.Percentile(99.9));
  }
}

void PrintJson(const std::map<SpanType, TypeStats>& by_type,
               const TraceReader& reader, const Options& opts,
               const ReplayStats* replay) {
  // Nested objects assembled from flat JsonWriter fragments: the
  // writer emits one flat object, so inner objects are rendered first
  // and spliced in as pre-serialized values.
  std::string out = "{";
  JsonWriter::AppendEscaped(&out, "trace");
  out += ":";
  JsonWriter::AppendEscaped(&out, opts.trace_path);
  char buf[128];
  snprintf(buf, sizeof(buf),
           ",\"records\":%" PRIu64 ",\"truncated\":%s,\"spans\":{",
           reader.records_read(), reader.truncated() ? "true" : "false");
  out += buf;
  bool first = true;
  for (const auto& [type, ts] : by_type) {
    if (!first) {
      out += ",";
    }
    first = false;
    JsonWriter::AppendEscaped(&out, SpanTypeName(type));
    snprintf(buf, sizeof(buf),
             ":{\"count\":%" PRIu64 ",\"errors\":%" PRIu64
             ",\"bytes\":%" PRIu64
             ",\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f}",
             ts.count, ts.errors, ts.bytes, ts.latency.Percentile(50),
             ts.latency.Percentile(99), ts.latency.Percentile(99.9));
    out += buf;
  }
  out += "}";
  if (replay != nullptr) {
    snprintf(buf, sizeof(buf),
             ",\"replay\":{\"reads\":%" PRIu64 ",\"bytes\":%" PRIu64
             ",\"failed\":%" PRIu64 ",\"skipped\":%" PRIu64
             ",\"p50_us\":%.1f,\"p99_us\":%.1f}",
             replay->reads, replay->bytes, replay->failed, replay->skipped,
             replay->latency.Percentile(50), replay->latency.Percentile(99));
    out += buf;
  }
  out += "}";
  printf("%s\n", out.c_str());
}

int Run(const Options& opts) {
  Env* env = Env::Default();
  std::unique_ptr<TraceReader> reader;
  Status s = TraceReader::Open(env, opts.trace_path, &reader);
  if (!s.ok()) {
    fprintf(stderr, "cannot open trace: %s\n", s.ToString().c_str());
    return 1;
  }

  std::map<SpanType, TypeStats> by_type;
  std::map<std::string, ReplayFile> files;
  ReplayStats replay_stats;
  std::string scratch;

  SpanRecord rec;
  while (reader->Next(&rec)) {
    if (rec.type >= SpanType::kMaxSpanType) {
      continue;  // newer producer; count nothing we cannot name
    }
    TypeStats& ts = by_type[rec.type];
    ts.count++;
    ts.latency.Add(rec.duration_micros);
    if (rec.flags & kSpanFlagError) {
      ts.errors++;
    }
    if (IsIoType(rec.type)) {
      ts.bytes += rec.b;
    }
    if (opts.replay && rec.type == SpanType::kIoRead) {
      ReplayRead(rec, env, opts, &files, &scratch, &replay_stats);
    }
  }

  const ReplayStats* replay = opts.replay ? &replay_stats : nullptr;
  if (opts.json) {
    PrintJson(by_type, *reader, opts, replay);
  } else {
    PrintText(by_type, *reader, opts, replay);
  }

  if (reader->truncated() && !opts.allow_truncated) {
    fprintf(stderr, "trace ends in damage: %s\n",
            reader->parse_status().ToString().c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace shield

int main(int argc, char** argv) {
  shield::Options opts;
  if (!shield::ParseArgs(argc, argv, &opts)) {
    shield::Usage();
    return 1;
  }
  return shield::Run(opts);
}
