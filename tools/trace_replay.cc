// trace_replay: analyzer + replayer for SHIELD binary trace files
// (see util/trace.h for the format and DESIGN.md "Observability").
//
//   trace_replay TRACE                   per-span-type latency breakdown
//   trace_replay --json TRACE            same, as one JSON object
//   trace_replay --replay --dir D TRACE  re-issue recorded io.read ops
//                                        against the files in D
//
// Exit codes: 0 clean; 1 usage or open failure; 2 the trace ends in
// damage (torn tail, CRC mismatch) — suppressed by --allow-truncated,
// which still replays/analyzes the valid prefix.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "env/readahead_file.h"
#include "util/clock.h"
#include "util/event_logger.h"
#include "util/histogram.h"
#include "util/trace.h"

namespace shield {
namespace {

struct TypeStats {
  uint64_t count = 0;
  uint64_t errors = 0;
  uint64_t bytes = 0;
  Histogram latency;
};

struct Options {
  std::string trace_path;
  std::vector<std::string> stitch_paths;
  std::string dir;
  size_t readahead_bytes = 0;
  bool replay = false;
  bool stitch = false;
  bool json = false;
  bool allow_truncated = false;
};

void Usage() {
  fprintf(stderr,
          "usage: trace_replay [options] <trace-file>\n"
          "       trace_replay --stitch [--json] <trace-file>...\n"
          "  --replay            re-issue recorded io.read operations\n"
          "  --dir DIR           directory holding the traced files "
          "(with --replay)\n"
          "  --readahead BYTES   wrap replayed files in a prefetch buffer\n"
          "  --stitch            merge per-node trace files (SHTRACE1 v2)\n"
          "                      into one causal tree: span ids are\n"
          "                      process-global, so a parent id recorded on\n"
          "                      another node resolves across files.\n"
          "                      Reports cross-node links with per-hop\n"
          "                      latency attribution.\n"
          "  --json              print the summary as one JSON object\n"
          "  --allow-truncated   exit 0 even if the trace ends in damage\n");
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--replay") {
      opts->replay = true;
    } else if (arg == "--stitch") {
      opts->stitch = true;
    } else if (arg == "--json") {
      opts->json = true;
    } else if (arg == "--allow-truncated") {
      opts->allow_truncated = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      opts->dir = argv[++i];
    } else if (arg == "--readahead" && i + 1 < argc) {
      opts->readahead_bytes =
          static_cast<size_t>(strtoull(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else if (opts->trace_path.empty()) {
      opts->trace_path = arg;
      opts->stitch_paths.push_back(arg);
    } else {
      opts->stitch_paths.push_back(arg);
    }
  }
  if (opts->trace_path.empty()) {
    return false;
  }
  if (!opts->stitch && opts->stitch_paths.size() > 1) {
    fprintf(stderr, "multiple trace files require --stitch\n");
    return false;
  }
  if (opts->replay && opts->stitch) {
    fprintf(stderr, "--replay and --stitch are mutually exclusive\n");
    return false;
  }
  if (opts->replay && opts->dir.empty()) {
    fprintf(stderr, "--replay requires --dir\n");
    return false;
  }
  return true;
}

bool IsIoType(SpanType t) {
  return t == SpanType::kIoRead || t == SpanType::kIoWrite ||
         t == SpanType::kIoSync;
}

// One traced file being replayed: the open handle plus its optional
// prefetch window.
struct ReplayFile {
  std::unique_ptr<RandomAccessFile> file;
  std::unique_ptr<FilePrefetchBuffer> prefetch;
};

struct ReplayStats {
  uint64_t reads = 0;
  uint64_t bytes = 0;
  uint64_t failed = 0;
  uint64_t skipped = 0;  // unknown file or zero-length record
  Histogram latency;
};

void ReplayRead(const SpanRecord& rec, Env* env, const Options& opts,
                std::map<std::string, ReplayFile>* files,
                std::string* scratch, ReplayStats* stats) {
  if (rec.label.empty() || rec.b == 0) {
    stats->skipped++;
    return;
  }
  auto it = files->find(rec.label);
  if (it == files->end()) {
    ReplayFile rf;
    const std::string path = opts.dir + "/" + rec.label;
    if (!env->NewRandomAccessFile(path, &rf.file).ok()) {
      // The file may have been compacted away since the trace was
      // recorded; count it once and skip its reads.
      it = files->emplace(rec.label, ReplayFile()).first;
    } else {
      if (opts.readahead_bytes > 0) {
        rf.prefetch = std::make_unique<FilePrefetchBuffer>(
            rf.file.get(), opts.readahead_bytes, opts.readahead_bytes,
            /*stats=*/nullptr);
      }
      it = files->emplace(rec.label, std::move(rf)).first;
    }
  }
  ReplayFile& rf = it->second;
  if (rf.file == nullptr) {
    stats->skipped++;
    return;
  }
  if (scratch->size() < rec.b) {
    scratch->resize(rec.b);
  }
  Slice result;
  const uint64_t t0 = NowMicros();
  const Status s = rf.prefetch != nullptr
                       ? rf.prefetch->ReadWithReadahead(rec.a, rec.b, &result,
                                                        scratch->data())
                       : rf.file->Read(rec.a, rec.b, &result,
                                       scratch->data());
  stats->latency.Add(NowMicros() - t0);
  stats->reads++;
  if (s.ok()) {
    stats->bytes += result.size();
  } else {
    stats->failed++;
  }
}

void PrintText(const std::map<SpanType, TypeStats>& by_type,
               const TraceReader& reader, const Options& opts,
               const ReplayStats* replay) {
  printf("trace: %s\n", opts.trace_path.c_str());
  printf("records: %" PRIu64 "%s\n", reader.records_read(),
         reader.truncated() ? " (truncated tail)" : "");
  printf("%-22s %10s %8s %10s %10s %10s %10s\n", "span", "count", "errors",
         "p50_us", "p99_us", "p999_us", "max_us");
  for (const auto& [type, ts] : by_type) {
    printf("%-22s %10" PRIu64 " %8" PRIu64 " %10.0f %10.0f %10.0f %10" PRIu64
           "\n",
           SpanTypeName(type), ts.count, ts.errors, ts.latency.Percentile(50),
           ts.latency.Percentile(99), ts.latency.Percentile(99.9),
           ts.latency.Max());
  }
  if (replay != nullptr) {
    printf("\nreplay: %" PRIu64 " reads, %" PRIu64 " bytes, %" PRIu64
           " failed, %" PRIu64 " skipped\n",
           replay->reads, replay->bytes, replay->failed, replay->skipped);
    printf("replay latency: p50 %.0fus p99 %.0fus p999 %.0fus\n",
           replay->latency.Percentile(50), replay->latency.Percentile(99),
           replay->latency.Percentile(99.9));
  }
}

void PrintJson(const std::map<SpanType, TypeStats>& by_type,
               const TraceReader& reader, const Options& opts,
               const ReplayStats* replay) {
  // Nested objects assembled from flat JsonWriter fragments: the
  // writer emits one flat object, so inner objects are rendered first
  // and spliced in as pre-serialized values.
  std::string out = "{";
  JsonWriter::AppendEscaped(&out, "trace");
  out += ":";
  JsonWriter::AppendEscaped(&out, opts.trace_path);
  char buf[128];
  snprintf(buf, sizeof(buf),
           ",\"records\":%" PRIu64 ",\"truncated\":%s,\"spans\":{",
           reader.records_read(), reader.truncated() ? "true" : "false");
  out += buf;
  bool first = true;
  for (const auto& [type, ts] : by_type) {
    if (!first) {
      out += ",";
    }
    first = false;
    JsonWriter::AppendEscaped(&out, SpanTypeName(type));
    snprintf(buf, sizeof(buf),
             ":{\"count\":%" PRIu64 ",\"errors\":%" PRIu64
             ",\"bytes\":%" PRIu64
             ",\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f}",
             ts.count, ts.errors, ts.bytes, ts.latency.Percentile(50),
             ts.latency.Percentile(99), ts.latency.Percentile(99.9));
    out += buf;
  }
  out += "}";
  if (replay != nullptr) {
    snprintf(buf, sizeof(buf),
             ",\"replay\":{\"reads\":%" PRIu64 ",\"bytes\":%" PRIu64
             ",\"failed\":%" PRIu64 ",\"skipped\":%" PRIu64
             ",\"p50_us\":%.1f,\"p99_us\":%.1f}",
             replay->reads, replay->bytes, replay->failed, replay->skipped,
             replay->latency.Percentile(50), replay->latency.Percentile(99));
    out += buf;
  }
  out += "}";
  printf("%s\n", out.c_str());
}

// --- --stitch: merge per-node traces into one causal tree -----------

/// One span loaded from one node's trace file.
struct StitchedSpan {
  SpanRecord rec;
  int node_index = 0;
};

/// Aggregated stats for one (parent node/type → child node/type) edge
/// where parent and child were recorded on different nodes.
struct CrossLink {
  uint64_t count = 0;
  Histogram hop_latency;     // parent_duration - child_duration
  Histogram child_latency;   // remote-side execution time
};

std::string NodeLabel(const std::string& header_node,
                      const std::string& path) {
  if (!header_node.empty()) {
    return header_node;
  }
  // v1 trace (no node in the header): fall back to the file name.
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int RunStitch(const Options& opts) {
  Env* env = Env::Default();
  std::vector<std::string> nodes;
  std::vector<StitchedSpan> spans;
  std::map<uint64_t, size_t> by_id;  // span_id -> index into spans
  bool truncated = false;
  uint64_t duplicate_ids = 0;

  for (const auto& path : opts.stitch_paths) {
    std::unique_ptr<TraceReader> reader;
    Status s = TraceReader::Open(env, path, &reader);
    if (!s.ok()) {
      fprintf(stderr, "cannot open trace %s: %s\n", path.c_str(),
              s.ToString().c_str());
      return 1;
    }
    const std::string node = NodeLabel(reader->node(), path);
    int node_index = -1;
    for (size_t i = 0; i < nodes.size(); i++) {
      if (nodes[i] == node) {
        node_index = static_cast<int>(i);
        break;
      }
    }
    if (node_index < 0) {
      node_index = static_cast<int>(nodes.size());
      nodes.push_back(node);
    }
    SpanRecord rec;
    while (reader->Next(&rec)) {
      StitchedSpan ss;
      ss.rec = rec;
      ss.node_index = node_index;
      auto [it, inserted] = by_id.emplace(rec.span_id, spans.size());
      if (!inserted) {
        duplicate_ids++;  // two unrelated runs mixed in one stitch
        it->second = spans.size();
      }
      spans.push_back(std::move(ss));
    }
    if (reader->truncated()) {
      truncated = true;
      fprintf(stderr, "warning: %s ends in damage: %s\n", path.c_str(),
              reader->parse_status().ToString().c_str());
    }
  }

  // Classify every parent edge. A parent id that resolves to a span on
  // another node is a cross-node hop — the offload dispatch, a replica
  // fetch, catch-up reads. Hop latency is the dispatcher-side span
  // time not spent in the remote-side span (fabric + queueing).
  uint64_t roots = 0, intra_links = 0, cross_links = 0, orphans = 0;
  std::map<std::string, CrossLink> links;
  for (const auto& ss : spans) {
    if (ss.rec.parent_id == 0) {
      roots++;
      continue;
    }
    auto it = by_id.find(ss.rec.parent_id);
    if (it == by_id.end()) {
      orphans++;  // parent lost to a buffer drop or missing file
      continue;
    }
    const StitchedSpan& parent = spans[it->second];
    if (parent.node_index == ss.node_index) {
      intra_links++;
      continue;
    }
    cross_links++;
    const std::string key = std::string(SpanTypeName(parent.rec.type)) + "@" +
                            nodes[parent.node_index] + " -> " +
                            SpanTypeName(ss.rec.type) + "@" +
                            nodes[ss.node_index];
    CrossLink& link = links[key];
    link.count++;
    const uint64_t hop =
        parent.rec.duration_micros > ss.rec.duration_micros
            ? parent.rec.duration_micros - ss.rec.duration_micros
            : 0;
    link.hop_latency.Add(hop);
    link.child_latency.Add(ss.rec.duration_micros);
  }

  if (opts.json) {
    std::string out = "{";
    char buf[192];
    snprintf(buf, sizeof(buf),
             "\"files\":%zu,\"spans\":%zu,\"roots\":%" PRIu64
             ",\"intra_node_links\":%" PRIu64 ",\"cross_node_links\":%" PRIu64
             ",\"orphans\":%" PRIu64 ",\"duplicate_ids\":%" PRIu64
             ",\"truncated\":%s,\"nodes\":[",
             opts.stitch_paths.size(), spans.size(), roots, intra_links,
             cross_links, orphans, duplicate_ids,
             truncated ? "true" : "false");
    out += buf;
    for (size_t i = 0; i < nodes.size(); i++) {
      if (i > 0) {
        out += ",";
      }
      JsonWriter::AppendEscaped(&out, nodes[i]);
    }
    out += "],\"links\":{";
    bool first = true;
    for (const auto& [key, link] : links) {
      if (!first) {
        out += ",";
      }
      first = false;
      JsonWriter::AppendEscaped(&out, key);
      snprintf(buf, sizeof(buf),
               ":{\"count\":%" PRIu64
               ",\"hop_p50_us\":%.1f,\"hop_p99_us\":%.1f,\"hop_max_us\":%" PRIu64
               ",\"remote_p50_us\":%.1f,\"remote_p99_us\":%.1f}",
               link.count, link.hop_latency.Percentile(50),
               link.hop_latency.Percentile(99), link.hop_latency.Max(),
               link.child_latency.Percentile(50),
               link.child_latency.Percentile(99));
      out += buf;
    }
    out += "}}";
    printf("%s\n", out.c_str());
  } else {
    printf("stitch: %zu files, %zu spans, %zu nodes\n",
           opts.stitch_paths.size(), spans.size(), nodes.size());
    printf("roots %" PRIu64 ", intra-node links %" PRIu64
           ", cross-node links %" PRIu64 ", orphans %" PRIu64 "\n",
           roots, intra_links, cross_links, orphans);
    if (duplicate_ids > 0) {
      printf("warning: %" PRIu64
             " duplicate span ids (mixed traces from separate runs?)\n",
             duplicate_ids);
    }
    if (!links.empty()) {
      printf("%-52s %8s %10s %10s %10s\n", "cross-node link", "count",
             "hop_p50", "hop_p99", "remote_p50");
      for (const auto& [key, link] : links) {
        printf("%-52s %8" PRIu64 " %10.0f %10.0f %10.0f\n", key.c_str(),
               link.count, link.hop_latency.Percentile(50),
               link.hop_latency.Percentile(99),
               link.child_latency.Percentile(50));
      }
    }
  }
  return truncated && !opts.allow_truncated ? 2 : 0;
}

int Run(const Options& opts) {
  Env* env = Env::Default();
  std::unique_ptr<TraceReader> reader;
  Status s = TraceReader::Open(env, opts.trace_path, &reader);
  if (!s.ok()) {
    fprintf(stderr, "cannot open trace: %s\n", s.ToString().c_str());
    return 1;
  }

  std::map<SpanType, TypeStats> by_type;
  std::map<std::string, ReplayFile> files;
  ReplayStats replay_stats;
  std::string scratch;

  SpanRecord rec;
  while (reader->Next(&rec)) {
    if (rec.type >= SpanType::kMaxSpanType) {
      continue;  // newer producer; count nothing we cannot name
    }
    TypeStats& ts = by_type[rec.type];
    ts.count++;
    ts.latency.Add(rec.duration_micros);
    if (rec.flags & kSpanFlagError) {
      ts.errors++;
    }
    if (IsIoType(rec.type)) {
      ts.bytes += rec.b;
    }
    if (opts.replay && rec.type == SpanType::kIoRead) {
      ReplayRead(rec, env, opts, &files, &scratch, &replay_stats);
    }
  }

  const ReplayStats* replay = opts.replay ? &replay_stats : nullptr;
  if (opts.json) {
    PrintJson(by_type, *reader, opts, replay);
  } else {
    PrintText(by_type, *reader, opts, replay);
  }

  if (reader->truncated() && !opts.allow_truncated) {
    fprintf(stderr, "trace ends in damage: %s\n",
            reader->parse_status().ToString().c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace shield

int main(int argc, char** argv) {
  shield::Options opts;
  if (!shield::ParseArgs(argc, argv, &opts)) {
    shield::Usage();
    return 1;
  }
  return opts.stitch ? shield::RunStitch(opts) : shield::Run(opts);
}
