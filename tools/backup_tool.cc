// backup_tool: operator CLI for SHIELD encrypted backups.
//
//   backup_tool seed    --db=PATH [--keys=N] [--server=SERVER_ID]
//                       [--passkey=KEY] [--plain]
//       Creates a fresh DB at PATH and fills it with N (default 500)
//       synthetic key/value pairs, then flushes. Exists so CI and
//       smoke scripts can build a backup source without a separate
//       driver binary.
//
//   backup_tool create  --db=PATH --backup=DIR [--target=SERVER_ID]
//                       [--server=SERVER_ID] [--hmac-key=KEY]
//                       [--passkey=KEY] [--no-flush] [--plain]
//       Opens the DB (kShield with a LocalKds unless the directory was
//       created plaintext — see --plain) and writes an encrypted
//       backup of the current state into DIR. With --passkey the DB's
//       secure DEK cache is used, so a DB created by another process
//       with the same passkey opens without reaching a KDS.
//
//   backup_tool verify  --backup=DIR [--hmac-key=KEY]
//       Checks the backup manifest's MAC and every file's HMAC without
//       touching any database. Exit 0 only if the whole backup is
//       intact.
//
//   backup_tool restore --backup=DIR --db=PATH [--server=SERVER_ID]
//                       [--hmac-key=KEY] [--plain]
//       Verifies DIR, materializes it into PATH (which must not
//       already contain a DB), then opens the restored DB and runs
//       DB::VerifyIntegrity as an end-to-end proof that the restored
//       files decrypt and verify. An encrypted restore needs a KDS
//       that can resolve the backup's DEK ids (the in-process test
//       suite covers that path); --plain restores exercise the full
//       cycle stand-alone.
//
//   backup_tool dump    --db=PATH --dump=DIR [--begin=KEY] [--end=KEY]
//                       [--target=SERVER_ID] [--server=SERVER_ID]
//                       [--hmac-key=KEY] [--passkey=KEY] [--plain]
//       Exports the live data in [begin, end] (whole DB by default) as
//       a set of freshly built SSTs plus a MAC'd DUMP_MANIFEST. With
//       --target every dump file's DEK is re-wrapped for that server
//       identity, so the dump stays restorable after the source's own
//       keys are revoked.
//
//   backup_tool verify-dump --dump=DIR [--hmac-key=KEY]
//       Checks the dump manifest's MAC and every file's HMAC without
//       touching any database.
//
//   backup_tool restore-dump --dump=DIR --db=PATH [--server=SERVER_ID]
//                       [--hmac-key=KEY] [--plain]
//       Verifies DIR, then ingests every dump file into the DB at PATH
//       (created if missing) and runs DB::VerifyIntegrity. As with
//       `restore`, an encrypted restore needs a KDS that can resolve
//       the dump's DEK ids; use `cycle` for a stand-alone encrypted
//       round-trip.
//
//   backup_tool cycle   --db=SCRATCH [--keys=N] [--server=SERVER_ID]
//                       [--target=SERVER_ID] [--hmac-key=KEY]
//       End-to-end encrypted migration proof in one process (one
//       shared in-memory KDS): seeds an encrypted source DB under
//       SCRATCH/source, dumps it re-wrapped for the target identity,
//       REVOKES every DEK the source directory references, restores
//       the dump into SCRATCH/restored under the target identity, and
//       verifies integrity plus every key's value. Exit 0 only if the
//       data survived with the source's keys gone.
//
// Exit codes: 0 success; 1 usage error; 2 operation failed.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "shield/file_crypto.h"

namespace shield {
namespace {

struct ToolOptions {
  std::string command;
  std::string db_path;
  std::string backup_dir;
  std::string dump_dir;
  std::string begin_key;
  std::string end_key;
  bool has_begin = false;
  bool has_end = false;
  std::string server_id = "backup-tool";
  std::string target_server_id;
  std::string hmac_key = "shield-backup";
  std::string passkey;  // non-empty: use the secure DEK cache
  uint64_t num_keys = 500;
  bool flush = true;
  bool plain = false;  // open without SHIELD encryption
};

void Usage() {
  fprintf(stderr,
          "usage:\n"
          "  backup_tool seed    --db=PATH [--keys=N] [--server=ID]\n"
          "                      [--passkey=KEY] [--plain]\n"
          "  backup_tool create  --db=PATH --backup=DIR [--target=ID]\n"
          "                      [--server=ID] [--hmac-key=KEY] [--no-flush]\n"
          "                      [--passkey=KEY] [--plain]\n"
          "  backup_tool verify  --backup=DIR [--hmac-key=KEY]\n"
          "  backup_tool restore --backup=DIR --db=PATH [--server=ID]\n"
          "                      [--hmac-key=KEY] [--plain]\n"
          "  backup_tool dump    --db=PATH --dump=DIR [--begin=KEY]\n"
          "                      [--end=KEY] [--target=ID] [--server=ID]\n"
          "                      [--hmac-key=KEY] [--passkey=KEY] [--plain]\n"
          "  backup_tool verify-dump  --dump=DIR [--hmac-key=KEY]\n"
          "  backup_tool restore-dump --dump=DIR --db=PATH [--server=ID]\n"
          "                      [--hmac-key=KEY] [--plain]\n"
          "  backup_tool cycle   --db=SCRATCH [--keys=N] [--server=ID]\n"
          "                      [--target=ID] [--hmac-key=KEY]\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = strlen(name);
  if (strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Options DbOptions(const ToolOptions& t) {
  Options o;
  o.create_if_missing = false;
  if (!t.plain) {
    o.encryption.mode = EncryptionMode::kShield;
    o.encryption.kds = std::make_shared<LocalKds>();
    o.encryption.server_id = t.server_id;
    if (!t.passkey.empty()) {
      o.encryption.use_secure_dek_cache = true;
      o.encryption.passkey = t.passkey;
    }
  }
  return o;
}

int RunSeed(const ToolOptions& t) {
  Options o = DbOptions(t);
  o.create_if_missing = true;
  DB* db = nullptr;
  Status s = DB::Open(o, t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open %s: %s\n", t.db_path.c_str(),
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  WriteOptions wopts;
  char key[32];
  char value[64];
  for (uint64_t i = 0; s.ok() && i < t.num_keys; i++) {
    snprintf(key, sizeof(key), "key-%08llu",
             static_cast<unsigned long long>(i));
    snprintf(value, sizeof(value), "value-%08llu-seeded-by-backup-tool",
             static_cast<unsigned long long>(i));
    s = db->Put(wopts, key, value);
  }
  if (s.ok()) {
    s = db->Flush();
  }
  if (!s.ok()) {
    fprintf(stderr, "seed: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("seeded %s with %llu keys\n", t.db_path.c_str(),
         static_cast<unsigned long long>(t.num_keys));
  return 0;
}

int RunCreate(const ToolOptions& t) {
  DB* db = nullptr;
  Status s = DB::Open(DbOptions(t), t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open %s: %s\n", t.db_path.c_str(),
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  BackupOptions bopts;
  bopts.target_server_id = t.target_server_id;
  bopts.hmac_key = t.hmac_key;
  bopts.flush_before_backup = t.flush;
  s = db->CreateBackup(t.backup_dir, bopts);
  if (!s.ok()) {
    fprintf(stderr, "backup: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("backup created in %s\n", t.backup_dir.c_str());
  return 0;
}

int RunVerify(const ToolOptions& t) {
  Options o;
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  Status s = DB::VerifyBackup(o, t.backup_dir, ropts);
  if (!s.ok()) {
    fprintf(stderr, "verify: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("backup %s verified\n", t.backup_dir.c_str());
  return 0;
}

int RunRestore(const ToolOptions& t) {
  Options o;
  o.env = Env::Default();
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  Status s = DB::RestoreBackup(o, t.backup_dir, t.db_path, ropts);
  if (!s.ok()) {
    fprintf(stderr, "restore: %s\n", s.ToString().c_str());
    return 2;
  }
  // End-to-end proof: the restored directory must open and pass a full
  // integrity walk under the restoring server's identity.
  DB* db = nullptr;
  s = DB::Open(DbOptions(t), t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "restored DB failed to open: %s\n",
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  s = db->VerifyIntegrity();
  if (!s.ok()) {
    fprintf(stderr, "restored DB failed integrity check: %s\n",
            s.ToString().c_str());
    return 2;
  }
  printf("restored %s into %s (integrity verified)\n",
         t.backup_dir.c_str(), t.db_path.c_str());
  return 0;
}

int RunDump(const ToolOptions& t) {
  DB* db = nullptr;
  Status s = DB::Open(DbOptions(t), t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open %s: %s\n", t.db_path.c_str(),
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  DumpOptions dopts;
  dopts.target_server_id = t.target_server_id;
  dopts.hmac_key = t.hmac_key;
  const Slice begin(t.begin_key);
  const Slice end(t.end_key);
  s = db->DumpRange(t.dump_dir, t.has_begin ? &begin : nullptr,
                    t.has_end ? &end : nullptr, dopts);
  if (!s.ok()) {
    fprintf(stderr, "dump: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("dump created in %s\n", t.dump_dir.c_str());
  return 0;
}

int RunVerifyDump(const ToolOptions& t) {
  Options o;
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  Status s = DB::VerifyDump(o, t.dump_dir, ropts);
  if (!s.ok()) {
    fprintf(stderr, "verify-dump: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("dump %s verified\n", t.dump_dir.c_str());
  return 0;
}

int RunRestoreDump(const ToolOptions& t) {
  Options o = DbOptions(t);
  o.create_if_missing = true;
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  Status s = DB::RestoreDump(o, t.dump_dir, t.db_path, ropts);
  if (!s.ok()) {
    fprintf(stderr, "restore-dump: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("restored dump %s into %s (integrity verified)\n",
         t.dump_dir.c_str(), t.db_path.c_str());
  return 0;
}

// One-process encrypted migration round-trip (the in-memory KDS is
// shared across both identities): source DB -> dump re-wrapped for the
// target -> revoke every DEK the source directory references -> restore
// under the target identity -> verify integrity and every value.
int RunCycle(const ToolOptions& t) {
  Env* env = Env::Default();
  auto kds = std::make_shared<LocalKds>();
  const std::string source_dir = t.db_path + "/source";
  const std::string dump_dir = t.db_path + "/dump";
  const std::string restored_dir = t.db_path + "/restored";
  const std::string target = t.target_server_id.empty()
                                 ? t.server_id + "-migrated"
                                 : t.target_server_id;
  Status s = env->CreateDirIfMissing(t.db_path);
  if (!s.ok()) {
    fprintf(stderr, "mkdir %s: %s\n", t.db_path.c_str(),
            s.ToString().c_str());
    return 2;
  }

  Options src_opts;
  src_opts.create_if_missing = true;
  src_opts.encryption.mode = EncryptionMode::kShield;
  src_opts.encryption.kds = kds;
  src_opts.encryption.server_id = t.server_id;

  char key[32];
  char value[64];
  {
    DB* db = nullptr;
    s = DB::Open(src_opts, source_dir, &db);
    if (!s.ok()) {
      fprintf(stderr, "open source: %s\n", s.ToString().c_str());
      return 2;
    }
    std::unique_ptr<DB> owned(db);
    WriteOptions wopts;
    for (uint64_t i = 0; s.ok() && i < t.num_keys; i++) {
      snprintf(key, sizeof(key), "key-%08llu",
               static_cast<unsigned long long>(i));
      snprintf(value, sizeof(value), "value-%08llu-cycled-by-backup-tool",
               static_cast<unsigned long long>(i));
      s = db->Put(wopts, key, value);
    }
    if (s.ok()) {
      s = db->Flush();
    }
    if (s.ok()) {
      DumpOptions dopts;
      dopts.target_server_id = target;
      dopts.hmac_key = t.hmac_key;
      s = db->DumpRange(dump_dir, nullptr, nullptr, dopts);
    }
    if (!s.ok()) {
      fprintf(stderr, "seed+dump: %s\n", s.ToString().c_str());
      return 2;
    }
  }

  // Revoke the source identity: delete every DEK referenced by a file
  // in the source directory. The dump's re-wrapped ids are fresh ids
  // provisioned to the target and survive this.
  std::vector<std::string> children;
  s = env->GetChildren(source_dir, &children);
  if (!s.ok()) {
    fprintf(stderr, "list source: %s\n", s.ToString().c_str());
    return 2;
  }
  uint64_t revoked = 0;
  for (const auto& name : children) {
    ShieldFileHeader header;
    if (ReadShieldFileHeader(env, source_dir + "/" + name, &header).ok()) {
      if (kds->DeleteDek(t.server_id, header.dek_id).ok()) {
        revoked++;
      }
    }
  }
  printf("revoked %llu source DEKs\n",
         static_cast<unsigned long long>(revoked));

  Options dst_opts = src_opts;
  dst_opts.encryption.server_id = target;
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  s = DB::RestoreDump(dst_opts, dump_dir, restored_dir, ropts);
  if (!s.ok()) {
    fprintf(stderr, "restore-dump: %s\n", s.ToString().c_str());
    return 2;
  }

  DB* db = nullptr;
  dst_opts.create_if_missing = false;
  s = DB::Open(dst_opts, restored_dir, &db);
  if (!s.ok()) {
    fprintf(stderr, "open restored: %s\n", s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  ReadOptions ropt;
  std::string got;
  for (uint64_t i = 0; i < t.num_keys; i++) {
    snprintf(key, sizeof(key), "key-%08llu",
             static_cast<unsigned long long>(i));
    snprintf(value, sizeof(value), "value-%08llu-cycled-by-backup-tool",
             static_cast<unsigned long long>(i));
    s = db->Get(ropt, key, &got);
    if (!s.ok() || got != value) {
      fprintf(stderr, "restored value mismatch at %s: %s\n", key,
              s.ToString().c_str());
      return 2;
    }
  }
  printf("cycle ok: %llu keys migrated %s -> %s with source DEKs revoked\n",
         static_cast<unsigned long long>(t.num_keys), t.server_id.c_str(),
         target.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  ToolOptions t;
  t.command = argv[1];
  for (int i = 2; i < argc; i++) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--db", &t.db_path) ||
        ParseFlag(arg, "--backup", &t.backup_dir) ||
        ParseFlag(arg, "--dump", &t.dump_dir) ||
        ParseFlag(arg, "--server", &t.server_id) ||
        ParseFlag(arg, "--target", &t.target_server_id) ||
        ParseFlag(arg, "--hmac-key", &t.hmac_key) ||
        ParseFlag(arg, "--passkey", &t.passkey)) {
      continue;
    }
    if (ParseFlag(arg, "--begin", &t.begin_key)) {
      t.has_begin = true;
      continue;
    }
    if (ParseFlag(arg, "--end", &t.end_key)) {
      t.has_end = true;
      continue;
    }
    std::string keys;
    if (ParseFlag(arg, "--keys", &keys)) {
      t.num_keys = strtoull(keys.c_str(), nullptr, 10);
      continue;
    }
    if (strcmp(arg, "--no-flush") == 0) {
      t.flush = false;
    } else if (strcmp(arg, "--plain") == 0) {
      t.plain = true;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
      return 1;
    }
  }
  if (t.command == "seed") {
    if (t.db_path.empty()) {
      Usage();
      return 1;
    }
    return RunSeed(t);
  }
  if (t.command == "create") {
    if (t.db_path.empty() || t.backup_dir.empty()) {
      Usage();
      return 1;
    }
    return RunCreate(t);
  }
  if (t.command == "verify") {
    if (t.backup_dir.empty()) {
      Usage();
      return 1;
    }
    return RunVerify(t);
  }
  if (t.command == "restore") {
    if (t.backup_dir.empty() || t.db_path.empty()) {
      Usage();
      return 1;
    }
    return RunRestore(t);
  }
  if (t.command == "dump") {
    if (t.db_path.empty() || t.dump_dir.empty()) {
      Usage();
      return 1;
    }
    return RunDump(t);
  }
  if (t.command == "verify-dump") {
    if (t.dump_dir.empty()) {
      Usage();
      return 1;
    }
    return RunVerifyDump(t);
  }
  if (t.command == "restore-dump") {
    if (t.dump_dir.empty() || t.db_path.empty()) {
      Usage();
      return 1;
    }
    return RunRestoreDump(t);
  }
  if (t.command == "cycle") {
    if (t.db_path.empty()) {
      Usage();
      return 1;
    }
    return RunCycle(t);
  }
  Usage();
  return 1;
}

}  // namespace
}  // namespace shield

int main(int argc, char** argv) { return shield::Run(argc, argv); }
