// backup_tool: operator CLI for SHIELD encrypted backups.
//
//   backup_tool seed    --db=PATH [--keys=N] [--server=SERVER_ID]
//                       [--passkey=KEY] [--plain]
//       Creates a fresh DB at PATH and fills it with N (default 500)
//       synthetic key/value pairs, then flushes. Exists so CI and
//       smoke scripts can build a backup source without a separate
//       driver binary.
//
//   backup_tool create  --db=PATH --backup=DIR [--target=SERVER_ID]
//                       [--server=SERVER_ID] [--hmac-key=KEY]
//                       [--passkey=KEY] [--no-flush] [--plain]
//       Opens the DB (kShield with a LocalKds unless the directory was
//       created plaintext — see --plain) and writes an encrypted
//       backup of the current state into DIR. With --passkey the DB's
//       secure DEK cache is used, so a DB created by another process
//       with the same passkey opens without reaching a KDS.
//
//   backup_tool verify  --backup=DIR [--hmac-key=KEY]
//       Checks the backup manifest's MAC and every file's HMAC without
//       touching any database. Exit 0 only if the whole backup is
//       intact.
//
//   backup_tool restore --backup=DIR --db=PATH [--server=SERVER_ID]
//                       [--hmac-key=KEY] [--plain]
//       Verifies DIR, materializes it into PATH (which must not
//       already contain a DB), then opens the restored DB and runs
//       DB::VerifyIntegrity as an end-to-end proof that the restored
//       files decrypt and verify. An encrypted restore needs a KDS
//       that can resolve the backup's DEK ids (the in-process test
//       suite covers that path); --plain restores exercise the full
//       cycle stand-alone.
//
// Exit codes: 0 success; 1 usage error; 2 operation failed.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "env/env.h"
#include "kds/local_kds.h"
#include "lsm/db.h"

namespace shield {
namespace {

struct ToolOptions {
  std::string command;
  std::string db_path;
  std::string backup_dir;
  std::string server_id = "backup-tool";
  std::string target_server_id;
  std::string hmac_key = "shield-backup";
  std::string passkey;  // non-empty: use the secure DEK cache
  uint64_t num_keys = 500;
  bool flush = true;
  bool plain = false;  // open without SHIELD encryption
};

void Usage() {
  fprintf(stderr,
          "usage:\n"
          "  backup_tool seed    --db=PATH [--keys=N] [--server=ID]\n"
          "                      [--passkey=KEY] [--plain]\n"
          "  backup_tool create  --db=PATH --backup=DIR [--target=ID]\n"
          "                      [--server=ID] [--hmac-key=KEY] [--no-flush]\n"
          "                      [--passkey=KEY] [--plain]\n"
          "  backup_tool verify  --backup=DIR [--hmac-key=KEY]\n"
          "  backup_tool restore --backup=DIR --db=PATH [--server=ID]\n"
          "                      [--hmac-key=KEY] [--plain]\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = strlen(name);
  if (strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Options DbOptions(const ToolOptions& t) {
  Options o;
  o.create_if_missing = false;
  if (!t.plain) {
    o.encryption.mode = EncryptionMode::kShield;
    o.encryption.kds = std::make_shared<LocalKds>();
    o.encryption.server_id = t.server_id;
    if (!t.passkey.empty()) {
      o.encryption.use_secure_dek_cache = true;
      o.encryption.passkey = t.passkey;
    }
  }
  return o;
}

int RunSeed(const ToolOptions& t) {
  Options o = DbOptions(t);
  o.create_if_missing = true;
  DB* db = nullptr;
  Status s = DB::Open(o, t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open %s: %s\n", t.db_path.c_str(),
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  WriteOptions wopts;
  char key[32];
  char value[64];
  for (uint64_t i = 0; s.ok() && i < t.num_keys; i++) {
    snprintf(key, sizeof(key), "key-%08llu",
             static_cast<unsigned long long>(i));
    snprintf(value, sizeof(value), "value-%08llu-seeded-by-backup-tool",
             static_cast<unsigned long long>(i));
    s = db->Put(wopts, key, value);
  }
  if (s.ok()) {
    s = db->Flush();
  }
  if (!s.ok()) {
    fprintf(stderr, "seed: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("seeded %s with %llu keys\n", t.db_path.c_str(),
         static_cast<unsigned long long>(t.num_keys));
  return 0;
}

int RunCreate(const ToolOptions& t) {
  DB* db = nullptr;
  Status s = DB::Open(DbOptions(t), t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open %s: %s\n", t.db_path.c_str(),
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  BackupOptions bopts;
  bopts.target_server_id = t.target_server_id;
  bopts.hmac_key = t.hmac_key;
  bopts.flush_before_backup = t.flush;
  s = db->CreateBackup(t.backup_dir, bopts);
  if (!s.ok()) {
    fprintf(stderr, "backup: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("backup created in %s\n", t.backup_dir.c_str());
  return 0;
}

int RunVerify(const ToolOptions& t) {
  Options o;
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  Status s = DB::VerifyBackup(o, t.backup_dir, ropts);
  if (!s.ok()) {
    fprintf(stderr, "verify: %s\n", s.ToString().c_str());
    return 2;
  }
  printf("backup %s verified\n", t.backup_dir.c_str());
  return 0;
}

int RunRestore(const ToolOptions& t) {
  Options o;
  o.env = Env::Default();
  RestoreOptions ropts;
  ropts.hmac_key = t.hmac_key;
  Status s = DB::RestoreBackup(o, t.backup_dir, t.db_path, ropts);
  if (!s.ok()) {
    fprintf(stderr, "restore: %s\n", s.ToString().c_str());
    return 2;
  }
  // End-to-end proof: the restored directory must open and pass a full
  // integrity walk under the restoring server's identity.
  DB* db = nullptr;
  s = DB::Open(DbOptions(t), t.db_path, &db);
  if (!s.ok()) {
    fprintf(stderr, "restored DB failed to open: %s\n",
            s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<DB> owned(db);
  s = db->VerifyIntegrity();
  if (!s.ok()) {
    fprintf(stderr, "restored DB failed integrity check: %s\n",
            s.ToString().c_str());
    return 2;
  }
  printf("restored %s into %s (integrity verified)\n",
         t.backup_dir.c_str(), t.db_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  ToolOptions t;
  t.command = argv[1];
  for (int i = 2; i < argc; i++) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--db", &t.db_path) ||
        ParseFlag(arg, "--backup", &t.backup_dir) ||
        ParseFlag(arg, "--server", &t.server_id) ||
        ParseFlag(arg, "--target", &t.target_server_id) ||
        ParseFlag(arg, "--hmac-key", &t.hmac_key) ||
        ParseFlag(arg, "--passkey", &t.passkey)) {
      continue;
    }
    std::string keys;
    if (ParseFlag(arg, "--keys", &keys)) {
      t.num_keys = strtoull(keys.c_str(), nullptr, 10);
      continue;
    }
    if (strcmp(arg, "--no-flush") == 0) {
      t.flush = false;
    } else if (strcmp(arg, "--plain") == 0) {
      t.plain = true;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
      return 1;
    }
  }
  if (t.command == "seed") {
    if (t.db_path.empty()) {
      Usage();
      return 1;
    }
    return RunSeed(t);
  }
  if (t.command == "create") {
    if (t.db_path.empty() || t.backup_dir.empty()) {
      Usage();
      return 1;
    }
    return RunCreate(t);
  }
  if (t.command == "verify") {
    if (t.backup_dir.empty()) {
      Usage();
      return 1;
    }
    return RunVerify(t);
  }
  if (t.command == "restore") {
    if (t.backup_dir.empty() || t.db_path.empty()) {
      Usage();
      return 1;
    }
    return RunRestore(t);
  }
  Usage();
  return 1;
}

}  // namespace
}  // namespace shield

int main(int argc, char** argv) { return shield::Run(argc, argv); }
