// shield_monitor — aggregated cluster health from per-node outputs.
//
// Scrapes one or more inputs and merges them into a single cluster
// view, keyed by (node, detector):
//
//   - sim journals (JSON lines): `health_transition` events, e.g. the
//     file written by `sim_runner --journal=PATH`. Gives the
//     transition history and, absent gauges, the last-known level.
//   - Prometheus text files carrying `shield_health_level` gauges,
//     e.g. `sim_runner --metrics-dir=DIR` exports (one <node>.prom per
//     node). Gives the current level. A directory argument is scanned
//     for *.prom files; a file ending in .prom is parsed as metrics,
//     anything else as a journal.
//
//   shield_monitor /tmp/run/journal.json /tmp/run/metrics
//   shield_monitor --json /tmp/run/metrics/writer.prom
//
// Exit code is the cluster health: 0 when every detector is ok, 1
// when the worst level is warn, 2 when any detector is critical.
// Usage and unreadable-input errors exit 64 so health-gating scripts
// can tell "cluster is critical" from "monitor misused".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "env/env.h"
#include "util/event_logger.h"

namespace shield {

constexpr int kExitUsage = 64;

void Usage() {
  std::fprintf(
      stderr,
      "usage: shield_monitor [--json] INPUT...\n"
      "  INPUT  a sim journal (JSON lines with health_transition\n"
      "         events), a Prometheus *.prom file with\n"
      "         shield_health_level gauges, or a directory scanned\n"
      "         for *.prom files\n"
      "  --json print one JSON object instead of the table\n"
      "exit: 0 all ok, 1 worst level warn, 2 any critical, 64 usage\n");
}

struct Transition {
  uint64_t epoch = 0;
  std::string from;
  std::string to;
  std::string phase;
};

struct DetectorState {
  // Current gauge level when a metrics file covered this detector;
  // otherwise the `to` level of the last journaled transition.
  int level = 0;
  bool have_gauge = false;
  std::vector<Transition> transitions;
};

int LevelFromName(const std::string& name) {
  if (name == "warn") {
    return 1;
  }
  if (name == "critical") {
    return 2;
  }
  return 0;
}

const char* LevelName(int level) {
  switch (level) {
    case 1:
      return "warn";
    case 2:
      return "critical";
    default:
      return "ok";
  }
}

// Minimal field extraction for the flat, machine-written JSON lines in
// sim journals: values there are controlled identifiers (node names,
// detector names, ok/warn/critical) and never contain escapes, so a
// find-to-closing-quote scan is exact.
bool JsonStringField(const std::string& line, const char* key,
                     std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const size_t start = pos + needle.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  out->assign(line, start, end - start);
  return true;
}

bool JsonUintField(const std::string& line, const char* key, uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(start, &end, 10);
  if (end == start) {
    return false;
  }
  *out = v;
  return true;
}

using ClusterState = std::map<std::pair<std::string, std::string>,
                              DetectorState>;

void ParseJournal(const std::string& text, ClusterState* cluster) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("\"event\":\"health_transition\"") == std::string::npos) {
      continue;
    }
    Transition t;
    std::string node;
    std::string detector;
    if (!JsonStringField(line, "node", &node) ||
        !JsonStringField(line, "detector", &detector) ||
        !JsonStringField(line, "from", &t.from) ||
        !JsonStringField(line, "to", &t.to)) {
      continue;
    }
    JsonUintField(line, "epoch", &t.epoch);
    JsonStringField(line, "phase", &t.phase);
    DetectorState& d = (*cluster)[{node, detector}];
    if (!d.have_gauge) {
      d.level = LevelFromName(t.to);
    }
    d.transitions.push_back(std::move(t));
  }
}

// Pulls one label value out of a Prometheus label set; label values in
// our exports are identifiers, never escaped.
bool PromLabel(const std::string& line, const char* label,
               std::string* out) {
  const std::string needle = std::string(label) + "=\"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const size_t start = pos + needle.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  out->assign(line, start, end - start);
  return true;
}

void ParseMetrics(const std::string& text, ClusterState* cluster) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.compare(0, 20, "shield_health_level{") != 0) {
      continue;
    }
    std::string node;
    std::string detector;
    const size_t close = line.find("} ");
    if (close == std::string::npos || !PromLabel(line, "node", &node) ||
        !PromLabel(line, "detector", &detector)) {
      continue;
    }
    const int level = std::atoi(line.c_str() + close + 2);
    DetectorState& d = (*cluster)[{node, detector}];
    d.have_gauge = true;
    d.level = level;
  }
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int LoadInput(Env* env, const std::string& path, ClusterState* cluster) {
  std::vector<std::string> children;
  if (env->GetChildren(path, &children).ok()) {
    // Directory: scrape every per-node metrics export inside it.
    std::sort(children.begin(), children.end());
    int loaded = 0;
    for (const std::string& c : children) {
      if (!EndsWith(c, ".prom")) {
        continue;
      }
      const int n = LoadInput(env, path + "/" + c, cluster);
      if (n < 0) {
        return n;
      }
      loaded += n;
    }
    if (loaded == 0) {
      std::fprintf(stderr, "shield_monitor: no *.prom files in %s\n",
                   path.c_str());
      return -1;
    }
    return loaded;
  }
  std::string text;
  Status s = ReadFileToString(env, path, &text);
  if (!s.ok()) {
    std::fprintf(stderr, "shield_monitor: cannot read %s: %s\n",
                 path.c_str(), s.ToString().c_str());
    return -1;
  }
  if (EndsWith(path, ".prom")) {
    ParseMetrics(text, cluster);
  } else {
    ParseJournal(text, cluster);
  }
  return 1;
}

std::string TransitionsJson(const std::vector<Transition>& ts) {
  std::string out = "[";
  for (size_t i = 0; i < ts.size(); i++) {
    if (i > 0) {
      out += ",";
    }
    JsonWriter w;
    w.Add("epoch", ts[i].epoch)
        .Add("from", ts[i].from)
        .Add("to", ts[i].to)
        .Add("phase", ts[i].phase);
    out += w.Finish();
  }
  out += "]";
  return out;
}

int Run(bool json, const std::vector<std::string>& inputs) {
  Env* env = Env::Default();
  ClusterState cluster;
  for (const std::string& in : inputs) {
    if (LoadInput(env, in, &cluster) < 0) {
      return kExitUsage;
    }
  }

  int worst = 0;
  size_t transitions = 0;
  std::map<std::string, int> node_worst;
  for (const auto& [key, d] : cluster) {
    worst = std::max(worst, d.level);
    int& nw = node_worst[key.first];
    nw = std::max(nw, d.level);
    transitions += d.transitions.size();
  }

  if (json) {
    // Nested output is assembled by hand (JsonWriter is flat):
    // {"cluster":…,"nodes":N,"detectors":N,"transitions":N,
    //  "detail":[{"node":…,"detector":…,"level":…,"transitions":[…]}]}
    std::string out = "{\"cluster\":\"";
    out += LevelName(worst);
    out += "\",\"nodes\":" + std::to_string(node_worst.size());
    out += ",\"detectors\":" + std::to_string(cluster.size());
    out += ",\"transitions\":" + std::to_string(transitions);
    out += ",\"detail\":[";
    bool first = true;
    for (const auto& [key, d] : cluster) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "{\"node\":";
      JsonWriter::AppendEscaped(&out, key.first);
      out += ",\"detector\":";
      JsonWriter::AppendEscaped(&out, key.second);
      out += ",\"level\":\"";
      out += LevelName(d.level);
      out += "\",\"transitions\":";
      out += TransitionsJson(d.transitions);
      out += "}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("%-12s %-16s %-9s %-11s %s\n", "node", "detector", "level",
                "transitions", "last");
    for (const auto& [key, d] : cluster) {
      std::string last = "-";
      if (!d.transitions.empty()) {
        const Transition& t = d.transitions.back();
        last = "epoch " + std::to_string(t.epoch) + " " + t.from + "->" +
               t.to;
        if (!t.phase.empty()) {
          last += " (" + t.phase + ")";
        }
      }
      std::printf("%-12s %-16s %-9s %-11zu %s\n", key.first.c_str(),
                  key.second.c_str(), LevelName(d.level),
                  d.transitions.size(), last.c_str());
    }
    std::printf("cluster: %s  nodes=%zu detectors=%zu transitions=%zu\n",
                LevelName(worst), node_worst.size(), cluster.size(),
                transitions);
  }
  return worst;
}

}  // namespace shield

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      shield::Usage();
      return shield::kExitUsage;
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    shield::Usage();
    return shield::kExitUsage;
  }
  return shield::Run(json, inputs);
}
